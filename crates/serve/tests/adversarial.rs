//! Adversarial integration suite for the race-detection service.
//!
//! Every scenario from the robustness envelope, against a real server on
//! a real socket: fuzzed-malformed frames, a slowloris client, mid-stream
//! disconnects, overload, flood-under-backpressure, and graceful drain —
//! asserting typed errors, load shedding, deadline reaping, unaffected
//! healthy clients, and report equivalence with in-process replay. A
//! panic in any server thread fails the test through
//! `Server::shutdown`'s joins.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use scord_core::wire::{self, FrameType};
use scord_core::{
    Detector, DetectorConfig, FaultInjector, FaultKind, FaultPlan, FuzzConfig, RaceKind,
    ScordDetector, Trace,
};
use scord_serve::{detect_remote, Client, ErrorCode, Outcome, ServeConfig, Server};

const DETECTOR_MEM: u64 = 1 << 20;

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        queue_capacity: 4,
        read_slice: Duration::from_millis(20),
        progress_deadline: Duration::from_millis(700),
        write_timeout: Duration::from_secs(2),
        max_connections: 32,
        detector_mem_bytes: DETECTOR_MEM,
        ..ServeConfig::default()
    }
}

fn fuzzed(seed: u64, events: u32) -> Trace {
    FuzzConfig {
        events,
        ..FuzzConfig::default()
    }
    .generate(seed)
}

/// The reference result: in-process replay on an identical detector.
fn replay_races(trace: &Trace) -> Vec<(u32, RaceKind)> {
    let mut det = ScordDetector::new(DetectorConfig::paper_default(DETECTOR_MEM));
    trace
        .replay(&mut det)
        .expect("fuzzed traces replay cleanly");
    sorted(det.races().unique_races().collect())
}

fn sorted(mut races: Vec<(u32, RaceKind)>) -> Vec<(u32, RaceKind)> {
    races.sort_by_key(|&(pc, kind)| (pc, kind as u8));
    races
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, cond: F) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn server_reports_match_in_process_replay() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();
    for seed in 0..8u64 {
        let trace = fuzzed(seed, 600);
        let outcome = detect_remote(addr, &trace, 64).expect("healthy stream");
        let Outcome::Done(done) = outcome else {
            panic!("expected Done, got {outcome:?}");
        };
        assert!(!done.partial);
        assert_eq!(
            sorted(done.races),
            replay_races(&trace),
            "server-side detection must equal in-process replay for seed {seed}"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn clean_traces_report_nothing_and_racey_ones_report_incrementally() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();
    let clean = FuzzConfig {
        events: 500,
        race_pct: 0,
        ..FuzzConfig::default()
    }
    .generate(77);
    let Outcome::Done(done) = detect_remote(addr, &clean, 64).expect("clean stream") else {
        panic!("expected Done");
    };
    assert!(
        done.races.is_empty(),
        "race_pct=0 traces are provably clean"
    );

    // A racey stream must yield at least one incremental Report frame
    // before its Done (the "incremental race reports" contract).
    let racey = fuzzed(3, 800);
    assert!(
        !replay_races(&racey).is_empty(),
        "seed 3 must contain races for this scenario"
    );
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    client.send_trace(&racey, 32).expect("send");
    let outcome = client.finish().expect("racey stream");
    let Outcome::Done(done) = outcome else {
        panic!("expected Done");
    };
    assert_eq!(sorted(done.races), replay_races(&racey));
    assert!(
        !client.reports().is_empty(),
        "incremental reports must precede Done on a racey stream"
    );
    let _ = server.shutdown();
}

#[test]
fn malformed_streams_get_typed_errors_and_healthy_clients_keep_working() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    // 1. Garbage magic.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"GOODBYE!").expect("write");
    let outcome = read_outcome_of(raw).expect("typed response");
    assert_server_error(&outcome, ErrorCode::Malformed);

    // 2. Version skew.
    let mut raw = TcpStream::connect(addr).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(&wire::MAGIC);
    header.extend_from_slice(&9u16.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes());
    raw.write_all(&header).expect("write");
    let outcome = read_outcome_of(raw).expect("typed response");
    assert_server_error(&outcome, ErrorCode::Malformed);

    // 3. CRC corruption on an otherwise valid stream.
    let trace = fuzzed(11, 300);
    let mut chunks = wire::trace_to_frames(&trace, 50);
    let target = chunks.len() / 2;
    let mid = chunks[target].len() / 2;
    chunks[target][mid] ^= 0x40;
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(10))
        .expect("timeout");
    for chunk in &chunks[1..] {
        // skip the header; Client::connect sent one
        if client.send_bytes(chunk).is_err() {
            break; // server may quarantine before we finish writing
        }
    }
    match client.read_outcome().expect("typed outcome") {
        Outcome::ServerError(info) => {
            assert!(
                matches!(info.code, Some(ErrorCode::Malformed | ErrorCode::BadEvent)),
                "CRC/encoding corruption must be typed, got {info:?}"
            );
        }
        other => panic!("corrupted stream must be quarantined, got {other:?}"),
    }

    // 4. Valid framing, impossible event (reserved bits set).
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(10))
        .expect("timeout");
    let bad_word = (6u64 | (1 << 60)).to_le_bytes(); // KernelBoundary + junk
    let mut frame = Vec::new();
    wire::encode_frame(FrameType::Events, &bad_word, &mut frame);
    client.send_bytes(&frame).expect("send");
    let outcome = client.read_outcome().expect("typed outcome");
    match &outcome {
        Outcome::ServerError(info) => assert_eq!(info.code, Some(ErrorCode::BadEvent), "{info:?}"),
        other => panic!("expected bad-event error, got {other:?}"),
    }

    // Throughout all of that, a healthy client is unaffected.
    let healthy = fuzzed(1, 400);
    let Outcome::Done(done) = detect_remote(addr, &healthy, 64).expect("healthy") else {
        panic!("expected Done");
    };
    assert_eq!(sorted(done.races), replay_races(&healthy));

    let stats = server.shutdown();
    assert!(stats.quarantined >= 4, "stats: {stats:?}");
    assert_eq!(stats.completed, 1);
}

#[test]
fn fuzzed_transport_faults_never_panic_and_always_resolve_typed() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();
    for (i, kind) in [
        FaultKind::FrameTruncate,
        FaultKind::FrameBitFlip,
        FaultKind::FrameDuplicate,
        FaultKind::FrameReorder,
    ]
    .into_iter()
    .enumerate()
    {
        for seed in 0..4u64 {
            let trace = fuzzed(100 + seed, 300);
            let chunks = wire::trace_to_frames(&trace, 32);
            let plan = FaultPlan::single(kind, 250_000, seed * 31 + i as u64);
            let mut corruptor = wire::FrameCorruptor::new(FaultInjector::new(plan));
            // Corrupt only the frames; header corruption is covered by
            // the malformed-stream scenarios.
            let sent = corruptor.corrupt(&chunks[1..]);
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Duration::from_secs(10))
                .expect("timeout");
            let mut write_failed = false;
            for chunk in &sent {
                if client.send_bytes(chunk).is_err() {
                    write_failed = true;
                    break;
                }
            }
            if write_failed {
                continue; // quarantined mid-write: already a typed close
            }
            let mut fin = Vec::new();
            wire::encode_frame(FrameType::Finish, &[], &mut fin);
            let _ = client.send_bytes(&fin);
            match client.read_outcome() {
                Ok(Outcome::Done(_) | Outcome::ServerError(_)) => {}
                Ok(Outcome::Busy) => panic!("no overload in this scenario"),
                // Socket errors mean the server closed on us mid-write —
                // a legal quarantine outcome for a corrupted stream.
                Err(_) => {}
            }
        }
    }
    // Server is still alive and exact for a healthy client.
    let healthy = fuzzed(2, 400);
    let Outcome::Done(done) = detect_remote(addr, &healthy, 64).expect("healthy") else {
        panic!("expected Done");
    };
    assert_eq!(sorted(done.races), replay_races(&healthy));
    let _ = server.shutdown(); // joins assert zero panics
}

#[test]
fn slowloris_is_reaped_with_deadline_error() {
    let mut cfg = quick_cfg();
    cfg.progress_deadline = Duration::from_millis(300);
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(10))
        .expect("timeout");
    // A few bytes of a frame, then silence: never a complete frame.
    let mut frame = Vec::new();
    wire::encode_frame(
        FrameType::Events,
        &wire::encode_events(fuzzed(0, 50).events()),
        &mut frame,
    );
    client.send_bytes(&frame[..6]).expect("partial frame");
    match client.read_outcome().expect("reap must be typed") {
        Outcome::ServerError(info) => {
            assert_eq!(info.code, Some(ErrorCode::DeadlineExceeded), "{info:?}");
        }
        other => panic!("slowloris must be reaped with a typed error, got {other:?}"),
    }
    let stats = server.shutdown();
    assert!(stats.reaped_deadline >= 1, "stats: {stats:?}");
}

#[test]
fn mid_stream_disconnect_is_counted_and_harmless() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();
    {
        let mut client = Client::connect(addr).expect("connect");
        client
            .send_events(fuzzed(5, 200).events())
            .expect("partial stream");
        // Drop without Finish: mid-stream disconnect.
    }
    wait_for("disconnect to be noticed", Duration::from_secs(5), || {
        server.stats().disconnected >= 1
    });
    // The process keeps serving.
    let healthy = fuzzed(6, 300);
    let Outcome::Done(done) = detect_remote(addr, &healthy, 64).expect("healthy") else {
        panic!("expected Done");
    };
    assert_eq!(sorted(done.races), replay_races(&healthy));
    let _ = server.shutdown();
}

#[test]
fn overload_is_shed_with_busy_and_recovers() {
    let mut cfg = quick_cfg();
    cfg.max_connections = 2;
    cfg.progress_deadline = Duration::from_secs(30); // idle holders stay live
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    // Two idle holders pin the watermark.
    let hold_a = Client::connect(addr).expect("connect");
    let hold_b = Client::connect(addr).expect("connect");
    wait_for("holders accepted", Duration::from_secs(5), || {
        server.stats().accepted >= 2
    });
    // Sustained overload: every further client gets a typed Busy.
    for _ in 0..5 {
        let mut probe = Client::connect(addr).expect("connect");
        probe
            .set_read_timeout(Duration::from_secs(5))
            .expect("timeout");
        match probe.read_outcome().expect("busy frame") {
            Outcome::Busy => {}
            other => panic!("expected Busy during overload, got {other:?}"),
        }
    }
    assert!(server.stats().shed_busy >= 5);
    // Release the watermark; the server recovers and serves again.
    drop(hold_a);
    drop(hold_b);
    wait_for("holders released", Duration::from_secs(5), || {
        server.stats().disconnected >= 2
    });
    let healthy = fuzzed(7, 300);
    let Outcome::Done(done) = detect_remote(addr, &healthy, 64).expect("recovered") else {
        panic!("expected Done");
    };
    assert_eq!(sorted(done.races), replay_races(&healthy));
    let _ = server.shutdown();
}

#[test]
fn connect_burst_is_admitted_without_per_accept_backoff() {
    // A burst of simultaneous connects must be drained from the kernel's
    // accept backlog in one acceptor wakeup, not one connection per
    // backoff period: an acceptor that slept its 5 ms idle backoff once
    // per accept would need >= 100 * 5 ms = 500 ms to admit this burst,
    // so the 1 s ceiling (generous for CI noise) still rules out most of
    // that regression and the accepted-count assertion rules out drops.
    let mut cfg = quick_cfg();
    cfg.max_connections = 128; // whole burst admitted, nothing shed
    cfg.progress_deadline = Duration::from_secs(30); // holders stay live
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    // Let the acceptor go idle so its adaptive backoff reaches the cap —
    // the worst starting point for a burst.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    let holders: Vec<TcpStream> = (0..100)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    wait_for("burst admitted", Duration::from_secs(5), || {
        server.stats().accepted >= 100
    });
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "burst admission took {elapsed:?} — the acceptor is backing off \
         between accepts instead of draining the backlog"
    );
    let stats = server.stats();
    assert_eq!(stats.accepted, 100, "stats: {stats:?}");
    assert_eq!(stats.shed_busy, 0, "nothing shed under the watermark");
    drop(holders);
    let _ = server.shutdown();
}

#[test]
fn flood_through_tiny_queues_is_correct_under_backpressure() {
    let mut cfg = quick_cfg();
    cfg.queue_capacity = 1; // worst-case backpressure
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    let trace = fuzzed(9, 4_000);
    // Tiny frames maximize queue churn: 4000 events = 500 pushes through
    // a capacity-1 queue.
    let Outcome::Done(done) = detect_remote(addr, &trace, 8).expect("flood") else {
        panic!("expected Done");
    };
    assert_eq!(
        sorted(done.races),
        replay_races(&trace),
        "backpressure must never drop or reorder events"
    );
    let _ = server.shutdown();
}

#[test]
fn graceful_drain_flushes_partial_reports() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();
    let trace = fuzzed(4, 1_000);
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    client.send_trace(&trace, 64).expect("send");
    // No Finish: the stream is in flight when the drain starts. Wait for
    // the server to have seen it, then shut down from another thread —
    // storing the flag is exactly what a SIGTERM watcher does.
    wait_for("stream accepted", Duration::from_secs(5), || {
        server.stats().accepted >= 1
    });
    std::thread::sleep(Duration::from_millis(150)); // let events flow
    let flag = server.shutdown_flag();
    let shutter = std::thread::spawn(move || server.shutdown());
    flag.store(true, Ordering::SeqCst);
    let outcome = client
        .read_outcome()
        .expect("drain must answer in-flight streams");
    let Outcome::Done(done) = outcome else {
        panic!("expected partial Done on drain, got {outcome:?}");
    };
    assert!(done.partial, "drain reports must be marked partial");
    // The partial result is a prefix-truth: every race it reports exists
    // in the full in-process replay.
    let full: std::collections::HashSet<_> = replay_races(&trace).into_iter().collect();
    for race in &done.races {
        assert!(
            full.contains(race),
            "drain reported a race replay never finds: {race:?}"
        );
    }
    let stats = shutter.join().expect("shutdown thread");
    assert!(stats.drained_partial >= 1, "stats: {stats:?}");
}

// ---- helpers -------------------------------------------------------------

fn read_outcome_of(stream: TcpStream) -> Result<Outcome, String> {
    use std::io::Read;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut asm = wire::FrameAssembler::headerless();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = asm.next_frame().map_err(|e| e.to_string())? {
            return Ok(match frame.ftype {
                FrameType::Busy => Outcome::Busy,
                FrameType::Error => Outcome::ServerError(
                    scord_serve::proto::decode_error(&frame.payload).map_err(|e| e.to_string())?,
                ),
                FrameType::Done => Outcome::Done(
                    scord_serve::proto::decode_done(&frame.payload).map_err(|e| e.to_string())?,
                ),
                other => return Err(format!("unexpected frame {other:?}")),
            });
        }
        let n = stream.read(&mut buf).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("closed without a final frame".to_string());
        }
        asm.push(&buf[..n]);
    }
}

fn assert_server_error(outcome: &Outcome, want: ErrorCode) {
    match outcome {
        Outcome::ServerError(info) => {
            assert_eq!(info.code, Some(want), "got {info:?}");
        }
        other => panic!("expected typed {want} error, got {other:?}"),
    }
}

#[test]
fn slowloris_at_scale_reaps_only_the_stalled_few() {
    // Deadline reaping must be O(expired), not O(connections): with 512
    // idle sessions parked (header only — no unfinished trace, so exempt
    // from the deadline), four mid-frame slowloris connections must be
    // reaped on schedule, the idle swarm must survive untouched and stay
    // serviceable. A per-connection scan (or a deadline that ignores the
    // idle exemption) fails this by reaping the swarm or by drowning the
    // timer path.
    let cfg = ServeConfig {
        max_connections: 600,
        progress_deadline: Duration::from_millis(500),
        ..quick_cfg()
    };
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();

    let mut idle: Vec<Client> = (0..512)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    wait_for(
        "the idle swarm to be admitted",
        Duration::from_secs(10),
        || server.stats().accepted >= 512,
    );

    let mut stalled: Vec<Client> = (0..4)
        .map(|i| {
            let mut c = Client::connect(addr).unwrap_or_else(|e| panic!("slowloris {i}: {e}"));
            c.set_read_timeout(Duration::from_secs(10))
                .expect("timeout");
            // Six bytes of a frame header, then silence: an unfinished
            // frame, so the progress deadline applies.
            c.send_bytes(&[0x40, 0x00, 0x00, 0x00, 0x01, 0x00])
                .expect("partial frame");
            c
        })
        .collect();

    let t0 = Instant::now();
    for c in &mut stalled {
        match c.read_outcome().expect("typed reap") {
            Outcome::ServerError(info) => {
                assert_eq!(info.code, Some(ErrorCode::DeadlineExceeded), "got {info:?}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let reap_wall = t0.elapsed();
    assert!(
        reap_wall < Duration::from_secs(3),
        "reaps must arrive on deadline schedule despite 512 parked \
         connections, took {reap_wall:?}"
    );
    assert_eq!(
        server.stats().reaped_deadline,
        4,
        "exactly the four stalled connections are reaped"
    );

    // The swarm is not just alive — it is still serviceable: a parked
    // session can start and complete a trace after the reaping.
    let survivor = idle.last_mut().expect("swarm non-empty");
    survivor
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    let trace = fuzzed(9, 300);
    survivor.send_trace(&trace, 32).expect("send on survivor");
    let Outcome::Done(done) = survivor.finish().expect("survivor completes") else {
        panic!("survivor must complete");
    };
    assert!(!done.partial);
    assert_eq!(sorted(done.races), replay_races(&trace));

    drop(idle);
    drop(stalled);
    let stats = server.shutdown();
    assert_eq!(stats.reaped_deadline, 4);
    assert_eq!(stats.quarantined, 0, "idle is not an offense");
    assert!(stats.accepted >= 516);
}
