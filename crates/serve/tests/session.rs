//! Integration suite for the persistent session protocol: many traces
//! per connection, stream-scoped frames, out-of-order finishes, and the
//! quarantine boundary (one poisoned session never touches a healthy
//! parallel one). Companion to `tests/adversarial.rs`, which pins the
//! transport-robustness envelope the sessions inherit.

use std::time::Duration;

use scord_core::{Detector, DetectorConfig, FuzzConfig, RaceKind, ScordDetector, Trace};
use scord_serve::{detect_session, Client, ErrorCode, Outcome, ServeConfig, Server, SessionEnd};

const DETECTOR_MEM: u64 = 1 << 20;

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        queue_capacity: 4,
        read_slice: Duration::from_millis(20),
        progress_deadline: Duration::from_millis(700),
        write_timeout: Duration::from_secs(2),
        max_connections: 32,
        detector_mem_bytes: DETECTOR_MEM,
        ..ServeConfig::default()
    }
}

fn fuzzed(seed: u64, events: u32) -> Trace {
    FuzzConfig {
        events,
        ..FuzzConfig::default()
    }
    .generate(seed)
}

fn replay_races(trace: &Trace) -> Vec<(u32, RaceKind)> {
    let mut det = ScordDetector::new(DetectorConfig::paper_default(DETECTOR_MEM));
    trace
        .replay(&mut det)
        .expect("fuzzed traces replay cleanly");
    sorted(det.races().unique_races().collect())
}

fn sorted(mut races: Vec<(u32, RaceKind)>) -> Vec<(u32, RaceKind)> {
    races.sort_by_key(|&(pc, kind)| (pc, kind as u8));
    races
}

fn expect_done(outcome: Outcome) -> scord_serve::Done {
    match outcome {
        Outcome::Done(done) => done,
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn multi_trace_session_matches_in_process_replay() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    let traces: Vec<Trace> = (0..6u64).map(|seed| fuzzed(seed, 500)).collect();
    let outcomes = detect_session(addr, &traces, 48).expect("healthy session");
    assert_eq!(outcomes.len(), traces.len());
    for (i, (outcome, trace)) in outcomes.into_iter().zip(&traces).enumerate() {
        let done = expect_done(outcome);
        assert!(!done.partial, "stream {i} must complete fully");
        assert_eq!(
            sorted(done.races),
            replay_races(trace),
            "session stream {i} must equal in-process replay"
        );
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.accepted, 1,
        "six traces must ride one accepted connection"
    );
    assert_eq!(stats.completed, 6, "one completion counted per stream");
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.disconnected, 0);
}

#[test]
fn interleaved_streams_finish_out_of_order() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    let traces: Vec<Trace> = [11u64, 12, 13].iter().map(|&s| fuzzed(s, 400)).collect();
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");

    // Interleave: round-robin one batch per stream until all are sent,
    // so all three streams are open at once on one connection.
    let batches: Vec<Vec<&[scord_core::TraceEvent]>> = traces
        .iter()
        .map(|t| t.events().chunks(40).collect())
        .collect();
    let rounds = batches.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        for (stream, chunks) in batches.iter().enumerate() {
            if let Some(batch) = chunks.get(round) {
                client
                    .send_stream_events(stream as u32, batch)
                    .expect("send interleaved batch");
            }
        }
    }

    // Finish out of order: 2, 0, 1. Each must get its own stream's
    // result regardless of arrival order.
    for &stream in &[2u32, 0, 1] {
        let done = expect_done(client.finish_stream(stream).expect("finish"));
        assert!(!done.partial);
        assert_eq!(
            sorted(done.races),
            replay_races(&traces[stream as usize]),
            "stream {stream} must be detected in isolation despite interleaving"
        );
    }

    let end = client.end_session().expect("clean end");
    assert_eq!(
        end,
        SessionEnd::Closed(Vec::new()),
        "no streams left open at session end"
    );

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn empty_and_reused_stream_ids() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    // An open-and-finish with no events is a valid empty stream.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    let done = expect_done(client.finish_stream(0).expect("empty stream"));
    assert!(!done.partial);
    assert_eq!(done.total, 0);
    assert!(done.races.is_empty());

    // Reusing a finished id violates the strictly-increasing rule and
    // quarantines the session with a typed Malformed error.
    client
        .send_stream_events(0, fuzzed(1, 16).events())
        .expect("write reused id");
    let outcome = client.read_outcome().expect("typed error");
    let Outcome::ServerError(info) = outcome else {
        panic!("expected ServerError for reused stream id, got {outcome:?}");
    };
    assert_eq!(info.code, Some(ErrorCode::Malformed));
    drop(client);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.quarantined, 1);
}

#[test]
fn mid_session_malformed_frame_quarantines_only_that_session() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    // Session A: one healthy stream, then garbage mid-session.
    let mut poisoned = Client::connect(addr).expect("connect A");
    poisoned
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    let trace_a = fuzzed(21, 300);
    poisoned
        .send_stream_trace(0, &trace_a, 32)
        .expect("healthy first stream");
    let done = expect_done(poisoned.finish_stream(0).expect("first stream completes"));
    assert_eq!(sorted(done.races), replay_races(&trace_a));

    // Session B runs in parallel on its own connection and must be
    // completely unaffected by A's poisoning.
    let healthy = std::thread::spawn(move || {
        let traces: Vec<Trace> = (30..34u64).map(|s| fuzzed(s, 300)).collect();
        let outcomes = detect_session(addr, &traces, 32).expect("healthy session");
        for (outcome, trace) in outcomes.into_iter().zip(&traces) {
            let done = match outcome {
                Outcome::Done(done) => done,
                other => panic!("healthy session hit {other:?}"),
            };
            assert_eq!(sorted(done.races), replay_races(trace));
        }
    });

    // Garbage bytes (wrong magic) mid-session: typed Malformed error,
    // that connection only.
    poisoned
        .send_bytes(b"NOPE this is not a frame")
        .expect("write garbage");
    let outcome = poisoned.read_outcome().expect("typed error");
    let Outcome::ServerError(info) = outcome else {
        panic!("expected ServerError after garbage, got {outcome:?}");
    };
    assert_eq!(info.code, Some(ErrorCode::Malformed));
    drop(poisoned);

    healthy.join().expect("healthy session must complete");

    let stats = server.shutdown();
    assert_eq!(stats.quarantined, 1, "only the poisoned session");
    assert_eq!(
        stats.completed,
        1 + 4,
        "A's first stream plus all four of B's streams"
    );
}

#[test]
fn session_streams_report_incrementally() {
    let server = Server::start(quick_cfg()).expect("bind");
    let addr = server.local_addr();

    let racey = fuzzed(3, 800);
    assert!(
        !replay_races(&racey).is_empty(),
        "seed 3 must contain races for this scenario"
    );
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    client.send_stream_trace(7, &racey, 32).expect("send");
    let done = expect_done(client.finish_stream(7).expect("finish"));
    assert!(
        !client.stream_reports(7).is_empty(),
        "a racey session stream must emit incremental StreamReport frames"
    );
    let last = *client.stream_reports(7).last().expect("non-empty");
    assert!(last.unique as usize <= done.races.len());
    client.end_session().expect("clean end");

    server.shutdown();
}
