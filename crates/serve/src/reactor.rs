//! Readiness-based I/O primitives, dependency-free.
//!
//! The service's event loop needs four things the standard library does
//! not expose: a readiness selector (`epoll` on Linux, `poll(2)` as the
//! portable fallback), a cross-thread waker (`eventfd` on Linux, a
//! self-pipe elsewhere), a timer wheel for progress deadlines, and the
//! process fd limit for sizing connection sweeps. All of them are built
//! here on hand-rolled `extern "C"` declarations against the platform C
//! library — the same idiom [`crate::signal`] uses for `signal(2)` — so
//! the crate stays free of external dependencies.
//!
//! Design notes:
//!
//! - **Level-triggered, not edge-triggered.** The event loop drains reads
//!   until `WouldBlock` anyway, and level-triggered `epoll` cannot lose a
//!   wakeup when a handler defers work (e.g. when ingest is paused for
//!   backpressure and `EPOLLIN` interest is dropped instead).
//! - **Tokens, not pointers.** Registrations carry an opaque `u64` token
//!   (the event loop packs a slab slot + generation into it); the
//!   selector never dereferences anything on behalf of the caller, so a
//!   stale event for a recycled slot is detected by a generation mismatch
//!   rather than corrupting memory.
//! - **The poll fallback compiles everywhere Unix** — including Linux —
//!   so its unit tests run on the machines we actually test on, not just
//!   on the platforms that need it.
//! - **The timer wheel is lazy.** Entries past the horizon park in the
//!   last slot and re-insert themselves when the cursor reaches them, so
//!   a sweep of the wheel costs O(expired + horizon re-inserts), never
//!   O(registered timers). That property is what makes deadline reaping
//!   of a 10k-connection idle swarm cheap — and the adversarial suite's
//!   slowloris-at-scale test holds us to it.
//!
//! On non-Unix targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; the server surfaces that from
//! `start()` instead of failing to compile.

use std::io;
use std::time::{Duration, Instant};

/// Raw file descriptor alias (`i32` everywhere we run).
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw file descriptor alias (`i32` everywhere we run).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Extracts the raw fd from a listener (Unix) or a placeholder elsewhere.
#[must_use]
pub fn listener_fd(l: &std::net::TcpListener) -> RawFd {
    #[cfg(unix)]
    {
        std::os::unix::io::AsRawFd::as_raw_fd(l)
    }
    #[cfg(not(unix))]
    {
        let _ = l;
        -1
    }
}

/// Extracts the raw fd from a stream (Unix) or a placeholder elsewhere.
#[must_use]
pub fn stream_fd(s: &std::net::TcpStream) -> RawFd {
    #[cfg(unix)]
    {
        std::os::unix::io::AsRawFd::as_raw_fd(s)
    }
    #[cfg(not(unix))]
    {
        let _ = s;
        -1
    }
}

/// Which readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both classes.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Selector::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer hang-up: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition; the owner should read to collect the
    /// error / EOF rather than trusting this flag alone.
    pub error: bool,
}

// ---- C library shims -----------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_ulong, c_void};

    // `epoll_event` is packed on x86_64 (12 bytes) and naturally aligned
    // (16 bytes) on other architectures — getting this wrong corrupts
    // every second event in the kernel-filled array.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_NONBLOCK: c_int = 0x800;
    pub const EFD_CLOEXEC: c_int = 0x8_0000;

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    pub const F_SETFD: c_int = 2;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0x800;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;

        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    }
}

/// The soft `RLIMIT_NOFILE` fd limit for this process, when knowable.
///
/// Connection sweeps use this to clamp their top idle tier instead of
/// dying on `EMFILE` halfway through a benchmark.
#[must_use]
pub fn fd_limit() -> Option<u64> {
    #[cfg(unix)]
    {
        let mut lim = sys::RLimit { cur: 0, max: 0 };
        // SAFETY: `getrlimit` writes the two-u64 struct we hand it and
        // nothing else.
        let rc = unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) };
        if rc == 0 {
            return Some(lim.cur);
        }
        None
    }
    #[cfg(not(unix))]
    {
        None
    }
}

#[cfg(unix)]
fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on an fd we own; F_GETFL/F_SETFL/F_SETFD take an int
    // argument and only touch that descriptor's flags.
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

fn timeout_ms(timeout: Duration) -> i32 {
    // Round up so a 100µs deadline does not busy-spin as a 0ms poll.
    let ms = timeout.as_millis().saturating_add(u128::from(
        !timeout.subsec_nanos().is_multiple_of(1_000_000),
    ));
    i32::try_from(ms.min(i32::MAX as u128)).expect("clamped to i32::MAX")
}

// ---- selectors -----------------------------------------------------------

/// Readiness selector: `epoll` where available, `poll(2)` elsewhere.
///
/// One instance is owned by one event-loop thread; it is not `Sync` and
/// never needs to be ([`Waker`] is the cross-thread entry point).
pub enum Selector {
    /// Linux `epoll` backend.
    #[cfg(target_os = "linux")]
    Epoll(EpollSelector),
    /// Portable `poll(2)` backend.
    #[cfg(unix)]
    Poll(PollSelector),
    /// Placeholder so the type exists off-Unix; constructors never
    /// produce it successfully.
    #[cfg(not(unix))]
    Unsupported,
}

impl Selector {
    /// Opens the best selector for this platform.
    ///
    /// # Errors
    ///
    /// The underlying syscall error, or `Unsupported` off-Unix.
    #[allow(clippy::needless_return)] // cfg-gated early returns
    pub fn new() -> io::Result<Selector> {
        #[cfg(target_os = "linux")]
        {
            return Ok(Selector::Epoll(EpollSelector::new()?));
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            return Ok(Selector::Poll(PollSelector::new()));
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness selectors require a Unix platform",
            ))
        }
    }

    /// Opens the portable `poll(2)` backend explicitly (used by tests to
    /// exercise the fallback on Linux).
    ///
    /// # Errors
    ///
    /// `Unsupported` off-Unix.
    pub fn portable() -> io::Result<Selector> {
        #[cfg(unix)]
        {
            Ok(Selector::Poll(PollSelector::new()))
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness selectors require a Unix platform",
            ))
        }
    }

    /// Short name for logs and benchmark rows.
    #[must_use]
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll(_) => "epoll",
            #[cfg(unix)]
            Selector::Poll(_) => "poll",
            #[cfg(not(unix))]
            Selector::Unsupported => "unsupported",
        }
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The underlying syscall error.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll(s) => s.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            #[cfg(unix)]
            Selector::Poll(s) => s.register(fd, token, interest),
            #[cfg(not(unix))]
            Selector::Unsupported => unsupported(),
        }
    }

    /// Changes the interest set (and/or token) of a registered fd.
    ///
    /// # Errors
    ///
    /// The underlying syscall error.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll(s) => s.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            #[cfg(unix)]
            Selector::Poll(s) => s.reregister(fd, token, interest),
            #[cfg(not(unix))]
            Selector::Unsupported => unsupported(),
        }
    }

    /// Removes a registration. Must be called before the fd is closed.
    ///
    /// # Errors
    ///
    /// The underlying syscall error.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll(s) => s.ctl(
                sys::EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    readable: false,
                    writable: false,
                },
            ),
            #[cfg(unix)]
            Selector::Poll(s) => s.deregister(fd),
            #[cfg(not(unix))]
            Selector::Unsupported => unsupported(),
        }
    }

    /// Blocks until readiness or `timeout`, filling `events` (cleared
    /// first). A signal interruption returns an empty set, not an error.
    ///
    /// # Errors
    ///
    /// The underlying syscall error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll(s) => s.wait(events, timeout),
            #[cfg(unix)]
            Selector::Poll(s) => s.wait(events, timeout),
            #[cfg(not(unix))]
            Selector::Unsupported => unsupported(),
        }
    }
}

#[cfg(not(unix))]
fn unsupported() -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "readiness selectors require a Unix platform",
    ))
}

/// Upper bound on events drained per `wait` call; readiness is
/// level-triggered, so anything beyond the bound is re-reported next
/// sweep rather than lost.
const MAX_EVENTS: usize = 1024;

/// Linux `epoll` selector.
#[cfg(target_os = "linux")]
pub struct EpollSelector {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollSelector {
    fn new() -> io::Result<EpollSelector> {
        // SAFETY: plain syscall; the returned fd is owned by this struct
        // and closed in Drop.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollSelector {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut mask = sys::EPOLLRDHUP;
        if interest.readable {
            mask |= sys::EPOLLIN;
        }
        if interest.writable {
            mask |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token,
        };
        let evp = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        // SAFETY: `epfd` and `fd` are live descriptors; the event struct
        // outlives the call (epoll copies it).
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, evp) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        // SAFETY: `buf` is MAX_EVENTS structs the kernel fills; `n` caps
        // how many we read back.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                MAX_EVENTS as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before touching
            // fields.
            let raw = *raw;
            let mask = raw.events;
            events.push(Event {
                token: raw.data,
                readable: mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                error: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollSelector {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we created.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Portable `poll(2)` selector: a registration table re-materialised into
/// a `pollfd` array per wait. O(n) per sweep — the fallback, not the fast
/// path.
#[cfg(unix)]
pub struct PollSelector {
    entries: Vec<(RawFd, u64, Interest)>,
    buf: Vec<sys::PollFd>,
}

#[cfg(unix)]
impl PollSelector {
    fn new() -> PollSelector {
        PollSelector {
            entries: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|(f, _, _)| *f == fd)
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let at = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[at] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let at = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(at);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        self.buf.clear();
        for &(fd, _, interest) in &self.entries {
            let mut mask = 0i16;
            if interest.readable {
                mask |= sys::POLLIN;
            }
            if interest.writable {
                mask |= sys::POLLOUT;
            }
            self.buf.push(sys::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        // SAFETY: `buf` is `entries.len()` pollfd structs; poll writes
        // only their `revents` fields.
        let n = unsafe {
            sys::poll(
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pfd, &(_, token, _)) in self.buf.iter().zip(&self.entries) {
            let got = pfd.revents;
            if got == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: got & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: got & sys::POLLOUT != 0,
                error: got & (sys::POLLERR | sys::POLLHUP) != 0,
            });
            if events.len() == MAX_EVENTS {
                break;
            }
        }
        Ok(())
    }
}

// ---- waker ---------------------------------------------------------------

/// Cross-thread wakeup for a [`Selector`]: shard workers and `shutdown()`
/// call [`Waker::wake`]; the event loop registers [`Waker::fd`] for
/// readability and calls [`Waker::drain`] when it fires.
///
/// `eventfd` on Linux, a nonblocking self-pipe elsewhere; both ends are
/// `CLOEXEC` and the write never blocks (a full pipe already guarantees a
/// pending wakeup).
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
    is_eventfd: bool,
}

// SAFETY: wake() only ever issues a write(2) on an fd that lives as long
// as the Waker; concurrent writes to an eventfd/pipe are atomic at these
// sizes.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Opens a waker.
    ///
    /// # Errors
    ///
    /// The underlying syscall error, or `Unsupported` off-Unix.
    pub fn new() -> io::Result<Waker> {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: plain syscall; fd owned here, closed in Drop.
            let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
            if fd >= 0 {
                return Ok(Waker {
                    read_fd: fd,
                    write_fd: fd,
                    is_eventfd: true,
                });
            }
            // Ancient kernel without eventfd: fall through to the pipe.
        }
        #[cfg(unix)]
        {
            let mut fds = [0 as RawFd; 2];
            // SAFETY: pipe() fills exactly two fds on success.
            if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if let Err(e) = set_nonblocking_cloexec(fd) {
                    // SAFETY: closing the fds we just opened.
                    unsafe {
                        sys::close(fds[0]);
                        sys::close(fds[1]);
                    }
                    return Err(e);
                }
            }
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
                is_eventfd: false,
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "wakers require a Unix platform",
            ))
        }
    }

    /// The fd to register for readability.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the selector. Callable from any thread, never blocks.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let buf: [u8; 8] = 1u64.to_ne_bytes();
            let len = if self.is_eventfd { 8 } else { 1 };
            // SAFETY: writing <=8 bytes from a stack buffer to an fd we
            // own; EAGAIN (already-pending wakeup) is success for our
            // purposes.
            unsafe {
                sys::write(self.write_fd, buf.as_ptr().cast(), len);
            }
        }
    }

    /// Consumes pending wakeups so level-triggered readiness stops firing.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reading into a stack buffer from a nonblocking
                // fd we own.
                let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
                if self.is_eventfd || n <= 0 {
                    // eventfd resets on one read; the pipe drains until
                    // EAGAIN/EOF.
                    break;
                }
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: closing fds we opened; the pair is distinct unless
        // eventfd-backed.
        unsafe {
            sys::close(self.read_fd);
            if !self.is_eventfd {
                sys::close(self.write_fd);
            }
        }
    }
}

// ---- timer wheel ---------------------------------------------------------

/// Hashed timer wheel with lazy re-insertion.
///
/// `insert` hashes a deadline to a slot (deadlines past the horizon park
/// in the furthest slot); `advance` sweeps only the slots the cursor
/// passes, firing expired entries and re-inserting unexpired ones. There
/// is no `cancel`: the event loop re-validates fired tokens against the
/// connection's authoritative deadline, so stale entries cost one
/// comparison, not a search. A connection with no deadline simply never
/// inserts — the wheel for an idle swarm is empty.
pub struct TimerWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    granularity: Duration,
    cursor: usize,
    cursor_time: Instant,
    len: usize,
}

impl TimerWheel {
    /// Number of slots; with granularity clamped to ≥1ms this gives a
    /// horizon of at least 256ms before lazy re-insertion kicks in.
    const SLOTS: usize = 256;

    /// Builds a wheel whose granularity suits `deadline` (deadline/32,
    /// clamped to 1ms..250ms).
    #[must_use]
    pub fn for_deadline(deadline: Duration, now: Instant) -> TimerWheel {
        let gran = (deadline / 32)
            .max(Duration::from_millis(1))
            .min(Duration::from_millis(250));
        TimerWheel::new(gran, now)
    }

    /// Builds a wheel with an explicit granularity.
    #[must_use]
    pub fn new(granularity: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..TimerWheel::SLOTS).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_micros(100)),
            cursor: 0,
            cursor_time: now,
            len: 0,
        }
    }

    /// Number of armed entries (stale ones included until swept).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sleep budget until the next armed slot could fire, if any entry is
    /// armed. The event loop takes `min(read_slice, next_tick)` as its
    /// wait timeout.
    #[must_use]
    pub fn next_tick(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        for ahead in 0..TimerWheel::SLOTS {
            let at = (self.cursor + ahead) % TimerWheel::SLOTS;
            if !self.slots[at].is_empty() {
                // The slot at distance `ahead` drains after `ahead` cursor
                // steps (insert never targets the cursor slot itself).
                let fire_at = self.cursor_time + self.granularity * (ahead.max(1) as u32);
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        None
    }

    /// Arms `token` to fire at `deadline`.
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        let ticks = deadline
            .saturating_duration_since(self.cursor_time)
            .as_nanos()
            .div_ceil(self.granularity.as_nanos().max(1));
        // Past-due entries land in the next slot; far-future ones park at
        // the horizon and re-insert when swept.
        let ahead = (ticks.max(1) as usize).min(TimerWheel::SLOTS - 1);
        let at = (self.cursor + ahead) % TimerWheel::SLOTS;
        self.slots[at].push((token, deadline));
        self.len += 1;
    }

    /// Sweeps slots the cursor has passed, appending expired tokens to
    /// `fired` and re-inserting unexpired (horizon-parked) entries.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<u64>) {
        let mut reinsert: Vec<(u64, Instant)> = Vec::new();
        while self.cursor_time + self.granularity <= now {
            self.cursor_time += self.granularity;
            self.cursor = (self.cursor + 1) % TimerWheel::SLOTS;
            for (token, deadline) in self.slots[self.cursor].drain(..) {
                self.len -= 1;
                if deadline <= now {
                    fired.push(token);
                } else {
                    reinsert.push((token, deadline));
                }
            }
        }
        for (token, deadline) in reinsert {
            self.insert(token, deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn fd_limit_is_knowable_on_unix() {
        #[cfg(unix)]
        assert!(fd_limit().expect("getrlimit works") > 0);
        #[cfg(not(unix))]
        assert!(fd_limit().is_none());
    }

    #[cfg(unix)]
    fn exercise_selector(mut sel: Selector) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        sel.register(stream_fd(&server), 42, Interest::READABLE)
            .expect("register");
        let mut events = Vec::new();

        // Nothing pending: a short wait returns empty.
        sel.wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "spurious events: {events:?}");

        client.write_all(b"ping").expect("write");
        sel.wait(&mut events, Duration::from_millis(2000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).expect("read"), 4);

        // Toggle to write interest: a healthy socket is instantly
        // writable.
        sel.reregister(stream_fd(&server), 43, Interest::WRITABLE)
            .expect("reregister");
        sel.wait(&mut events, Duration::from_millis(2000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 43 && e.writable));

        // Peer hang-up surfaces as readable (EOF) under read interest.
        sel.reregister(stream_fd(&server), 44, Interest::READABLE)
            .expect("reregister");
        drop(client);
        sel.wait(&mut events, Duration::from_millis(2000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 44 && e.readable));

        sel.deregister(stream_fd(&server)).expect("deregister");
        sel.wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "events after deregister: {events:?}");
    }

    #[cfg(unix)]
    #[test]
    fn default_selector_reports_readiness() {
        exercise_selector(Selector::new().expect("selector"));
    }

    #[cfg(unix)]
    #[test]
    fn portable_selector_reports_readiness() {
        exercise_selector(Selector::portable().expect("selector"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn default_selector_is_epoll_on_linux() {
        assert_eq!(Selector::new().expect("selector").backend(), "epoll");
    }

    #[cfg(unix)]
    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let mut sel = Selector::new().expect("selector");
        let waker = std::sync::Arc::new(Waker::new().expect("waker"));
        sel.register(waker.fd(), 7, Interest::READABLE)
            .expect("register");
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
            remote.wake(); // coalesces, must not block
        });
        let mut events = Vec::new();
        let start = Instant::now();
        sel.wait(&mut events, Duration::from_millis(5000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        assert!(start.elapsed() < Duration::from_millis(4000));
        // Join before draining: `wait` may return between the two wakes,
        // and a wake landing after the drain would re-arm readiness.
        handle.join().expect("join");
        waker.drain();
        // Drained: readiness stops firing.
        sel.wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "waker still ready after drain");
    }

    #[test]
    fn timer_wheel_fires_expired_only() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        wheel.insert(1, t0 + Duration::from_millis(25));
        wheel.insert(2, t0 + Duration::from_millis(250));
        assert_eq!(wheel.len(), 2);

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(12), &mut fired);
        assert!(fired.is_empty());

        wheel.advance(t0 + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.len(), 1);

        fired.clear();
        wheel.advance(t0 + Duration::from_millis(300), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn timer_wheel_reinserts_beyond_horizon() {
        let t0 = Instant::now();
        // 1ms granularity, 256 slots => 256ms horizon; a 2s deadline must
        // survive several laps without firing early.
        let mut wheel = TimerWheel::new(Duration::from_millis(1), t0);
        wheel.insert(9, t0 + Duration::from_secs(2));
        let mut fired = Vec::new();
        for step in 1..=7 {
            wheel.advance(t0 + Duration::from_millis(step * 255), &mut fired);
            assert!(fired.is_empty(), "fired early at step {step}");
            assert_eq!(wheel.len(), 1);
        }
        wheel.advance(t0 + Duration::from_millis(2100), &mut fired);
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn timer_wheel_sweep_cost_tracks_expiry_not_population() {
        // The slowloris-at-scale property, unit-sized: with N armed
        // timers none of which are due, a sweep touches no entries.
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        for i in 0..10_000 {
            wheel.insert(i, t0 + Duration::from_secs(3600));
        }
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(11), &mut fired);
        assert!(fired.is_empty());
        assert_eq!(wheel.len(), 10_000);
        // Past-due entries fire on the very next sweep even when inserted
        // late.
        wheel.insert(99_999, t0);
        wheel.advance(t0 + Duration::from_millis(22), &mut fired);
        assert_eq!(fired, vec![99_999]);
    }

    #[test]
    fn timer_wheel_next_tick_bounds_the_sleep() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        assert!(wheel.next_tick(t0).is_none());
        wheel.insert(1, t0 + Duration::from_millis(35));
        let tick = wheel.next_tick(t0).expect("armed");
        assert!(tick <= Duration::from_millis(40), "tick {tick:?}");
        assert!(tick >= Duration::from_millis(5), "tick {tick:?}");
    }

    #[test]
    fn timeout_ms_rounds_up() {
        assert_eq!(timeout_ms(Duration::from_micros(100)), 1);
        assert_eq!(timeout_ms(Duration::from_millis(3)), 3);
        assert_eq!(timeout_ms(Duration::ZERO), 0);
    }
}
