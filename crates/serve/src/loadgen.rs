//! Load generator: many concurrent healthy clients, measured.
//!
//! Drives fuzzed traces (`scord_core::fuzz`) through the service from
//! several client threads and reports throughput (traces/sec, events/sec)
//! and per-trace latency percentiles (connect → `Done`). The harness's
//! `loadgen` subcommand serializes the report into `BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use scord_core::FuzzConfig;

use crate::client::{detect_remote, Outcome};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Total traces to stream.
    pub streams: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Events per fuzzed trace.
    pub events: u32,
    /// Events per wire frame.
    pub events_per_frame: usize,
    /// Base seed; stream `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7444".to_string(),
            streams: 64,
            concurrency: 8,
            events: 2_000,
            events_per_frame: 256,
            seed: 0x10AD,
        }
    }
}

/// Aggregate measurements from one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Traces that completed with a full `Done`.
    pub completed: u64,
    /// Traces answered `Busy` (shed).
    pub busy: u64,
    /// Traces that failed (server error, socket error, partial report).
    pub failed: u64,
    /// Total events streamed by completed traces.
    pub events: u64,
    /// Total unique races reported across completed traces.
    pub races: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Completed traces per second.
    pub traces_per_sec: f64,
    /// Events per second across completed traces.
    pub events_per_sec: f64,
    /// Median per-trace latency (connect → `Done`), milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile per-trace latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Worst per-trace latency, milliseconds.
    pub max_latency_ms: f64,
}

/// Ceiling-based nearest-rank percentile: the smallest sample such that at
/// least `p` of the distribution is at or below it (`rank = ⌈p·N⌉`,
/// 1-indexed). The previous `round(p·(N-1))` interpolation could pick the
/// sample *below* the true rank — e.g. p99 of 67 samples returned the
/// 66th, under-reporting tail latency by one whole sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

/// Runs the load profile and gathers the report.
///
/// # Panics
///
/// Panics if a client thread panics (nothing in the client path should).
#[must_use]
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let completed = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let events_total = Arc::new(AtomicU64::new(0));
    let races_total = Arc::new(AtomicU64::new(0));
    let concurrency = cfg.concurrency.max(1);
    let t0 = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let cfg = cfg.clone();
                let completed = Arc::clone(&completed);
                let busy = Arc::clone(&busy);
                let failed = Arc::clone(&failed);
                let events_total = Arc::clone(&events_total);
                let races_total = Arc::clone(&races_total);
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    let mut i = worker;
                    while i < cfg.streams {
                        let trace = FuzzConfig {
                            events: cfg.events,
                            ..FuzzConfig::default()
                        }
                        .generate(cfg.seed.wrapping_add(i as u64));
                        let start = Instant::now();
                        match detect_remote(&cfg.addr, &trace, cfg.events_per_frame) {
                            Ok(Outcome::Done(done)) if !done.partial => {
                                lats.push(start.elapsed().as_secs_f64() * 1e3);
                                completed.fetch_add(1, Ordering::Relaxed);
                                events_total.fetch_add(trace.len() as u64, Ordering::Relaxed);
                                races_total.fetch_add(done.races.len() as u64, Ordering::Relaxed);
                            }
                            Ok(Outcome::Busy) => {
                                busy.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) | Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        i += concurrency;
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut sorted = latencies;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = completed.load(Ordering::Relaxed);
    let events = events_total.load(Ordering::Relaxed);
    LoadReport {
        completed,
        busy: busy.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        events,
        races: races_total.load(Ordering::Relaxed),
        wall_seconds: wall,
        traces_per_sec: if wall > 0.0 {
            completed as f64 / wall
        } else {
            0.0
        },
        events_per_sec: if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        },
        p50_latency_ms: percentile(&sorted, 0.50),
        p99_latency_ms: percentile(&sorted, 0.99),
        max_latency_ms: sorted.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        // Nearest-rank is exact on round sizes: p50 of 1..=100 is the 50th
        // sample, not the 51st the old round() formula produced.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_tail_is_never_under_reported() {
        // Regression for the round()-based rank: with 67 samples, p99 must
        // be the maximum (⌈0.99·67⌉ = 67) — round(0.99·66) picked the 66th.
        let xs: Vec<f64> = (1..=67).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.99), 67.0);
        // p99 covers the max for every N below 100: fewer than 100 samples
        // means the top sample alone is more than 1% of the distribution.
        for n in 1..100usize {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            assert_eq!(percentile(&xs, 0.99), n as f64, "N={n}");
        }
    }

    #[test]
    fn percentile_degenerate_sizes() {
        // One sample answers every percentile.
        assert_eq!(percentile(&[7.5], 0.5), 7.5);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
        // Two samples: nearest-rank p50 is the lower one (⌈0.5·2⌉ = 1),
        // p99 and max are the upper.
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, 0.5), 1.0);
        assert_eq!(percentile(&xs, 0.99), 2.0);
        assert_eq!(percentile(&xs, 1.0), 2.0);
        // p = 0 clamps to the first sample rather than underflowing.
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }
}
