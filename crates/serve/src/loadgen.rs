//! Load generator: many concurrent healthy clients, measured.
//!
//! Drives fuzzed traces (`scord_core::fuzz`) through the service from
//! several client threads and reports throughput (traces/sec, events/sec)
//! and per-trace latency percentiles (connect → `Done`). The harness's
//! `loadgen` subcommand serializes the report into `BENCH_serve.json`.
//!
//! Two knobs target the reactor specifically: `idle_connections` opens a
//! swarm of parked sessions the active minority must coexist with (the
//! mostly-idle shape real fleets have), and `traces_per_conn` amortizes
//! connections over the persistent session protocol. The report carries
//! process-wide thread and fd counts sampled at peak — the footprint
//! proxies that distinguish a reactor (threads independent of
//! connections) from thread-per-connection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use scord_core::FuzzConfig;

use crate::client::{detect_remote, Client, Outcome};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Total traces to stream.
    pub streams: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Events per fuzzed trace.
    pub events: u32,
    /// Events per wire frame.
    pub events_per_frame: usize,
    /// Base seed; stream `i` uses `seed + i`.
    pub seed: u64,
    /// Idle sessions opened before the clock starts and held parked (no
    /// frames after the header) for the whole run while the active
    /// minority does the work above. Exercises the mostly-idle fleet
    /// shape; 0 restores the pure active workload.
    pub idle_connections: usize,
    /// Traces carried per connection. 1 = one legacy connection per
    /// trace (the PR 6 workload); >1 = persistent sessions, each
    /// connection streaming this many traces as session streams.
    pub traces_per_conn: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7444".to_string(),
            streams: 64,
            concurrency: 8,
            events: 2_000,
            events_per_frame: 256,
            seed: 0x10AD,
            idle_connections: 0,
            traces_per_conn: 1,
        }
    }
}

/// Aggregate measurements from one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Traces that completed with a full `Done`.
    pub completed: u64,
    /// Traces answered `Busy` (shed).
    pub busy: u64,
    /// Traces that failed (server error, socket error, partial report).
    pub failed: u64,
    /// Total events streamed by completed traces.
    pub events: u64,
    /// Total unique races reported across completed traces.
    pub races: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Completed traces per second.
    pub traces_per_sec: f64,
    /// Events per second across completed traces.
    pub events_per_sec: f64,
    /// Median per-trace latency (connect → `Done`), milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile per-trace latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Worst per-trace latency, milliseconds.
    pub max_latency_ms: f64,
    /// Idle sessions actually opened and held for the run (may be less
    /// than requested if connects failed).
    pub idle_connections: u64,
    /// Process-wide thread count sampled at peak load — the footprint
    /// proxy that separates a reactor from thread-per-connection. 0 when
    /// `/proc` is unavailable.
    pub threads: u64,
    /// Process-wide open-fd count sampled at peak load (server + client
    /// sockets when colocated). 0 when `/proc` is unavailable.
    pub open_fds: u64,
}

/// Process-wide `(threads, open_fds)` from `/proc/self`, the
/// cheap-but-honest RSS proxies the bench records: a reactor's thread
/// count stays flat as connections grow, its fd count tracks them
/// linearly. Both are 0 where `/proc` doesn't exist (non-Linux).
#[must_use]
pub fn process_stats() -> (u64, u64) {
    let threads = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|line| {
                line.strip_prefix("Threads:")
                    .and_then(|rest| rest.trim().parse::<u64>().ok())
            })
        })
        .unwrap_or(0);
    let fds = std::fs::read_dir("/proc/self/fd")
        .map(|entries| entries.count() as u64)
        .unwrap_or(0);
    (threads, fds)
}

/// Ceiling-based nearest-rank percentile: the smallest sample such that at
/// least `p` of the distribution is at or below it (`rank = ⌈p·N⌉`,
/// 1-indexed). The previous `round(p·(N-1))` interpolation could pick the
/// sample *below* the true rank — e.g. p99 of 67 samples returned the
/// 66th, under-reporting tail latency by one whole sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

/// One worker's share of the workload: trace indices `worker`,
/// `worker + concurrency`, …, grouped into sessions of
/// `traces_per_conn` when the session protocol is in use.
struct Tally {
    lats: Vec<f64>,
    completed: u64,
    busy: u64,
    failed: u64,
    events: u64,
    races: u64,
}

fn run_worker(cfg: &LoadConfig, worker: usize, concurrency: usize) -> Tally {
    let mut tally = Tally {
        lats: Vec::new(),
        completed: 0,
        busy: 0,
        failed: 0,
        events: 0,
        races: 0,
    };
    let per_conn = cfg.traces_per_conn.max(1);
    let indices: Vec<usize> = (worker..cfg.streams).step_by(concurrency).collect();
    for group in indices.chunks(per_conn) {
        if per_conn == 1 {
            let i = group[0];
            let trace = FuzzConfig {
                events: cfg.events,
                ..FuzzConfig::default()
            }
            .generate(cfg.seed.wrapping_add(i as u64));
            let start = Instant::now();
            match detect_remote(&cfg.addr, &trace, cfg.events_per_frame) {
                Ok(Outcome::Done(done)) if !done.partial => {
                    tally.lats.push(start.elapsed().as_secs_f64() * 1e3);
                    tally.completed += 1;
                    tally.events += trace.len() as u64;
                    tally.races += done.races.len() as u64;
                }
                Ok(Outcome::Busy) => tally.busy += 1,
                Ok(_) | Err(_) => tally.failed += 1,
            }
            continue;
        }
        // Session mode: one connection per group, one stream per trace.
        let Ok(mut client) = Client::connect(&cfg.addr) else {
            tally.failed += group.len() as u64;
            continue;
        };
        let _ = client.set_read_timeout(std::time::Duration::from_secs(30));
        let mut dead = false;
        for (stream, &i) in group.iter().enumerate() {
            if dead {
                tally.failed += 1;
                continue;
            }
            let trace = FuzzConfig {
                events: cfg.events,
                ..FuzzConfig::default()
            }
            .generate(cfg.seed.wrapping_add(i as u64));
            let start = Instant::now();
            let outcome = client
                .send_stream_trace(stream as u32, &trace, cfg.events_per_frame)
                .and_then(|()| client.finish_stream(stream as u32));
            match outcome {
                Ok(Outcome::Done(done)) if !done.partial => {
                    tally.lats.push(start.elapsed().as_secs_f64() * 1e3);
                    tally.completed += 1;
                    tally.events += trace.len() as u64;
                    tally.races += done.races.len() as u64;
                }
                Ok(Outcome::Busy) => {
                    tally.busy += 1;
                    dead = true;
                }
                Ok(_) | Err(_) => {
                    tally.failed += 1;
                    dead = true;
                }
            }
        }
        if !dead {
            let _ = client.end_session();
        }
    }
    tally
}

/// Runs the load profile and gathers the report.
///
/// # Panics
///
/// Panics if a client thread panics (nothing in the client path should).
#[must_use]
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let concurrency = cfg.concurrency.max(1);

    // Park the idle swarm first: sessions that send nothing after the
    // header and simply coexist with the active minority. Opened before
    // the clock starts so throughput stays comparable across idle
    // counts.
    let idle: Vec<Client> = (0..cfg.idle_connections)
        .filter_map(|_| Client::connect(&cfg.addr).ok())
        .collect();
    let idle_held = idle.len() as u64;

    let peak_threads = Arc::new(AtomicU64::new(0));
    let peak_fds = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let cfg = cfg.clone();
                scope.spawn(move || run_worker(&cfg, worker, concurrency))
            })
            .collect();
        // Sample footprint while every worker thread is alive and the
        // idle swarm is still parked.
        let (threads, fds) = process_stats();
        peak_threads.store(threads, Ordering::Relaxed);
        peak_fds.store(fds, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    drop(idle);

    let mut latencies = Vec::new();
    let (mut completed, mut busy, mut failed) = (0u64, 0u64, 0u64);
    let (mut events_total, mut races_total) = (0u64, 0u64);
    for tally in tallies {
        latencies.extend(tally.lats);
        completed += tally.completed;
        busy += tally.busy;
        failed += tally.failed;
        events_total += tally.events;
        races_total += tally.races;
    }
    let mut sorted = latencies;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let events = events_total;
    LoadReport {
        completed,
        busy,
        failed,
        events,
        races: races_total,
        wall_seconds: wall,
        traces_per_sec: if wall > 0.0 {
            completed as f64 / wall
        } else {
            0.0
        },
        events_per_sec: if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        },
        p50_latency_ms: percentile(&sorted, 0.50),
        p99_latency_ms: percentile(&sorted, 0.99),
        max_latency_ms: sorted.last().copied().unwrap_or(0.0),
        idle_connections: idle_held,
        threads: peak_threads.load(Ordering::Relaxed),
        open_fds: peak_fds.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        // Nearest-rank is exact on round sizes: p50 of 1..=100 is the 50th
        // sample, not the 51st the old round() formula produced.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_tail_is_never_under_reported() {
        // Regression for the round()-based rank: with 67 samples, p99 must
        // be the maximum (⌈0.99·67⌉ = 67) — round(0.99·66) picked the 66th.
        let xs: Vec<f64> = (1..=67).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.99), 67.0);
        // p99 covers the max for every N below 100: fewer than 100 samples
        // means the top sample alone is more than 1% of the distribution.
        for n in 1..100usize {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            assert_eq!(percentile(&xs, 0.99), n as f64, "N={n}");
        }
    }

    #[test]
    fn percentile_degenerate_sizes() {
        // One sample answers every percentile.
        assert_eq!(percentile(&[7.5], 0.5), 7.5);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
        // Two samples: nearest-rank p50 is the lower one (⌈0.5·2⌉ = 1),
        // p99 and max are the upper.
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, 0.5), 1.0);
        assert_eq!(percentile(&xs, 0.99), 2.0);
        assert_eq!(percentile(&xs, 1.0), 2.0);
        // p = 0 clamps to the first sample rather than underflowing.
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }
}
