//! Minimal SIGTERM/SIGINT watcher, dependency-free.
//!
//! The server's graceful drain is driven by an `AtomicBool`
//! ([`crate::Server::shutdown_flag`]); this module flips a process-wide
//! flag from a signal handler so the `serve` subcommand can translate
//! SIGTERM/SIGINT into a drain. The handler body is a single atomic
//! store — async-signal-safe by construction.
//!
//! On non-Unix targets [`install`] is a no-op and the flag only ever
//! changes through [`request_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, SHUTDOWN_REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only performs an atomic
        // store; both registrations are infallible for these signums on
        // Linux (the return value is the previous handler).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that request a shutdown (Unix) or
/// does nothing (elsewhere). Idempotent.
pub fn install() {
    imp::install();
}

/// `true` once a shutdown has been requested by signal or by
/// [`request_shutdown`].
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving SIGTERM (used by tests and by
/// in-process embedders).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag() {
        install();
        // Other tests in the process may already have set the flag, so only
        // the post-request state is asserted.
        request_shutdown();
        assert!(shutdown_requested());
    }
}
