//! # scord-serve
//!
//! Race-detection-as-a-service: a dependency-free TCP server that ingests
//! streaming GPU memory traces in the `scord_core::wire` binary encoding,
//! shards them across per-core `ScordDetector` instances, and returns
//! incremental race reports — built around a robustness envelope rather
//! than a happy path:
//!
//! - **backpressure**, not buffering: bounded per-connection ingest
//!   queues block the socket, never the detector;
//! - **deadlines**: slowloris and stalled clients are reaped with typed
//!   errors;
//! - **shedding**: past the overload watermark new clients get a typed
//!   `Busy`, not a hung connection;
//! - **quarantine**: malformed, truncated or version-skewed streams close
//!   one connection with a typed error and leave the process untouched;
//! - **graceful drain**: SIGTERM/SIGINT (or [`Server::shutdown`]) flushes
//!   partial reports for every in-flight stream before exit.
//!
//! See DESIGN.md § "Race-detection-as-a-service" for the wire format and
//! the full contract; the adversarial integration suite in
//! `tests/adversarial.rs` is the envelope's executable specification.

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod reactor;
mod server;
pub mod signal;

pub use client::{detect_remote, detect_session, Client, ClientError, Outcome, SessionEnd};
pub use loadgen::{LoadConfig, LoadReport};
pub use proto::{Done, ErrorCode, ErrorInfo, Report};
pub use server::{ServeConfig, Server, StatsSnapshot};
