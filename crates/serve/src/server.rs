//! The race-detection service: TCP ingest with backpressure, deadlines,
//! overload shedding, quarantine, and graceful drain.
//!
//! ## Thread model
//!
//! One **acceptor** owns the listener. Each accepted connection gets a
//! cheap blocking **reader** thread (it spends its life in `read(2)` or
//! blocked on its ingest queue — the backpressure edge) and is assigned
//! round-robin to one of N **shard workers** (N ≈ cores), each of which
//! owns the `ScordDetector` instances for its connections. Detectors are
//! single-threaded by construction — a connection's events are only ever
//! applied by its shard — so the hot detection path takes no locks.
//!
//! ## Robustness contract
//!
//! - **Backpressure**: readers push decoded batches into a bounded
//!   per-connection queue ([`scord_pool::BoundedQueue`]) and *block* when
//!   it is full; the socket stops being read, the kernel buffer fills and
//!   TCP flow control stalls the client. The detector is never blocked on
//!   a socket and never sees an unbounded backlog.
//! - **Deadlines**: a connection that completes no frame within
//!   [`ServeConfig::progress_deadline`] is reaped with a typed
//!   `deadline-exceeded` error — a slowloris dribbling bytes never pins a
//!   reader forever.
//! - **Shedding**: past [`ServeConfig::max_connections`] live streams the
//!   acceptor answers with a `Busy` frame and closes — a typed "try
//!   later", not a hung or reset connection.
//! - **Quarantine**: any wire-format violation (bad magic, version skew,
//!   CRC mismatch, bad event encoding) or detector rejection draws a
//!   typed `Error` frame and closes *that* connection; nothing is shared
//!   between streams, so the process and other clients are unaffected.
//! - **Drain**: [`Server::shutdown`] (or SIGTERM via [`crate::signal`])
//!   stops accepting, stops reading, flushes a partial `Done` report for
//!   every in-flight stream, and joins every thread before returning.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scord_core::wire::{self, FrameAssembler, FrameType};
use scord_core::{Detector, DetectorConfig, DetectorError, ScordDetector, TraceEvent};
use scord_pool::{BoundedQueue, Pop};

use crate::proto::{self, Done, ErrorCode, Report};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Detector shard workers. Defaults to available parallelism, capped
    /// at 8 — detection is memory-bound well before that.
    pub shards: usize,
    /// Per-connection ingest queue capacity, in event batches. The
    /// backpressure bound: a connection can have at most this many decoded
    /// batches in flight.
    pub queue_capacity: usize,
    /// Socket read timeout slice — how often an idle reader wakes to check
    /// deadlines and shutdown.
    pub read_slice: Duration,
    /// A connection that completes no frame for this long is reaped.
    pub progress_deadline: Duration,
    /// Ceiling on response writes; a client that stops draining its
    /// responses for this long is dropped (the detector never blocks on a
    /// slow consumer).
    pub write_timeout: Duration,
    /// Overload watermark: live connections beyond this are shed with a
    /// typed `Busy` response.
    pub max_connections: usize,
    /// Per-frame payload ceiling passed to the wire decoder.
    pub max_frame: u32,
    /// Global-memory size handed to [`DetectorConfig::paper_default`] for
    /// each per-stream detector.
    pub detector_mem_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 32,
            read_slice: Duration::from_millis(50),
            progress_deadline: Duration::from_secs(5),
            write_timeout: Duration::from_secs(2),
            max_connections: 64,
            max_frame: wire::DEFAULT_MAX_FRAME,
            detector_mem_bytes: 1 << 20,
        }
    }
}

/// Monotonic counters describing everything the server has done — the
/// adversarial suite asserts on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted into service.
    pub accepted: u64,
    /// Connections shed with `Busy` at the overload watermark.
    pub shed_busy: u64,
    /// Connections reaped by the progress deadline.
    pub reaped_deadline: u64,
    /// Connections quarantined for protocol violations or bad events.
    pub quarantined: u64,
    /// Connections that disconnected mid-stream (EOF before `Finish`).
    pub disconnected: u64,
    /// Streams completed normally (full `Done` sent).
    pub completed: u64,
    /// Streams flushed with a partial `Done` during drain.
    pub drained_partial: u64,
}

#[derive(Debug, Default)]
struct ServerStats {
    accepted: AtomicU64,
    shed_busy: AtomicU64,
    reaped_deadline: AtomicU64,
    quarantined: AtomicU64,
    disconnected: AtomicU64,
    completed: AtomicU64,
    drained_partial: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            reaped_deadline: self.reaped_deadline.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            drained_partial: self.drained_partial.load(Ordering::Relaxed),
        }
    }
}

/// Work handed from a connection reader to its detector shard.
enum WorkItem {
    /// A decoded batch of events.
    Events(Vec<TraceEvent>),
    /// Client finished cleanly; emit the full report.
    Finish,
    /// Server is draining; emit a partial report for whatever arrived.
    Drain,
}

/// State shared between a connection's reader thread and its shard
/// worker. The connection counts against the overload watermark until
/// *both* sides are done with it (the [`Drop`] impl decrements).
struct ConnShared {
    queue: BoundedQueue<WorkItem>,
    /// Set by whichever side kills the connection; the other side backs
    /// off instead of writing to a quarantined stream.
    dead: AtomicBool,
    active: Arc<AtomicUsize>,
}

impl Drop for ConnShared {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Registration message to a shard worker.
struct NewConn {
    shared: Arc<ConnShared>,
    /// The worker's write half of the socket.
    stream: TcpStream,
}

fn apply_event(det: &mut ScordDetector, ev: &TraceEvent) -> Result<(), DetectorError> {
    match *ev {
        TraceEvent::Access(ref a) => det.on_access(a).map(|_| ()),
        TraceEvent::Fence {
            sm,
            warp_slot,
            scope,
        } => det.on_fence(sm, warp_slot, scope),
        TraceEvent::Barrier { sm, block_slot } => det.on_barrier(sm, block_slot),
        TraceEvent::WarpAssigned { sm, warp_slot } => det.on_warp_assigned(sm, warp_slot),
        TraceEvent::KernelBoundary => {
            det.on_kernel_boundary();
            Ok(())
        }
    }
}

/// Best-effort framed write; returns `false` on any error (the caller
/// drops the connection — a response write must never wedge a thread
/// beyond the socket's write timeout).
fn write_frame(stream: &mut TcpStream, ftype: FrameType, payload: &[u8]) -> bool {
    let mut bytes = Vec::with_capacity(payload.len() + wire::FRAME_OVERHEAD);
    wire::encode_frame(ftype, payload, &mut bytes);
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}

fn write_error(stream: &mut TcpStream, code: ErrorCode, message: &str) -> bool {
    write_frame(
        stream,
        FrameType::Error,
        &proto::encode_error(code, message),
    )
}

/// Closes a connection without losing the response we just wrote.
///
/// Closing a socket with unread received bytes makes the kernel send RST,
/// which discards the peer's receive buffer — including the typed `Error`
/// or `Busy` frame the whole quarantine contract hinges on. So: half-close
/// the write side (FIN after our frame), then briefly drain whatever the
/// client had in flight so the final close is clean. Bounded at half a
/// second; a client that keeps flooding past that gets the RST it earned.
fn drain_then_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 8 * 1024];
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// A running race-detection server. Dropping it performs a graceful
/// drain, so tests cannot leak threads.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    inboxes: Vec<Arc<BoundedQueue<NewConn>>>,
}

impl Server {
    /// Binds and starts the acceptor and shard workers.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shards = cfg.shards.max(1);
        let inboxes: Vec<Arc<BoundedQueue<NewConn>>> = (0..shards)
            .map(|_| Arc::new(BoundedQueue::new(cfg.max_connections.max(1))))
            .collect();

        let workers = inboxes
            .iter()
            .map(|inbox| {
                let inbox = Arc::clone(inbox);
                let stats = Arc::clone(&stats);
                let cfg = cfg.clone();
                std::thread::spawn(move || shard_loop(&inbox, &stats, &cfg))
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let readers = Arc::clone(&readers);
            let inboxes = inboxes.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &shutdown, &stats, &readers, &inboxes, &cfg);
            })
        };

        Ok(Server {
            addr,
            shutdown,
            stats,
            acceptor: Some(acceptor),
            workers,
            readers,
            inboxes,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The drain flag; store `true` (e.g. from a signal watcher) to start
    /// a graceful shutdown without holding the server.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful drain: stop accepting, stop reading, flush a partial
    /// `Done` for every in-flight stream, join every thread. Returns the
    /// final counters.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked (the adversarial suite's
    /// "zero panics" assertion rides on this propagating).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.drain();
        self.stats.snapshot()
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            h.join().expect("acceptor thread panicked");
        }
        // Readers observe the flag within one read slice, push `Drain`,
        // and exit. New handles cannot appear: the acceptor is gone.
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("reader registry poisoned"));
        for h in handles {
            h.join().expect("reader thread panicked");
        }
        // With readers gone, closing the inboxes tells workers to finish
        // their backlog (including the Drain markers) and exit.
        for inbox in &self.inboxes {
            inbox.close();
        }
        for h in self.workers.drain(..) {
            h.join().expect("shard worker panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.drain();
        }
    }
}

/// Shortest and longest idle-poll sleeps for the nonblocking acceptor.
/// The backoff doubles from MIN to MAX while no connection arrives and
/// resets to MIN on any accept, so a quiet listener costs a 5 ms poll but
/// a newly busy one is re-polled within 500 µs.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_micros(500);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(5);

#[allow(clippy::needless_pass_by_value)] // threads want owned Arcs
fn accept_loop(
    listener: &TcpListener,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<ServerStats>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    inboxes: &[Arc<BoundedQueue<NewConn>>],
    cfg: &ServeConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut next_id: u64 = 0;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !shutdown.load(Ordering::SeqCst) {
        // Drain the kernel's accept backlog before considering a sleep: a
        // burst of N simultaneous connects must cost N `accept` calls, not
        // N backoff periods. Only back off when an iteration admitted
        // nothing.
        let mut accepted_any = false;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    accepted_any = true;
                    let id = next_id;
                    next_id += 1;
                    admit(stream, id, &active, shutdown, stats, readers, inboxes, cfg);
                }
                // WouldBlock: backlog empty. Other errors (e.g. transient
                // EMFILE) also yield to the backoff rather than spinning.
                Err(_) => break,
            }
        }
        if accepted_any {
            backoff = ACCEPT_BACKOFF_MIN;
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
        }
    }
}

/// Admits one accepted connection: shed if over the watermark, otherwise
/// wire it to a detector shard and spawn its reader thread.
#[allow(clippy::too_many_arguments)] // plumbing shared acceptor state
fn admit(
    mut stream: TcpStream,
    id: u64,
    active: &Arc<AtomicUsize>,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<ServerStats>,
    readers: &Mutex<Vec<JoinHandle<()>>>,
    inboxes: &[Arc<BoundedQueue<NewConn>>],
    cfg: &ServeConfig,
) {
    if active.load(Ordering::SeqCst) >= cfg.max_connections {
        stats.shed_busy.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_write_timeout(Some(cfg.write_timeout));
        if write_frame(&mut stream, FrameType::Busy, &[]) {
            drain_then_close(&mut stream);
        }
        return; // drop: shed
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Some(cfg.read_slice)).is_err()
        || write_half
            .set_write_timeout(Some(cfg.write_timeout))
            .is_err()
    {
        return;
    }
    // Counted active from here; ConnShared::drop decrements.
    active.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::new(ConnShared {
        queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
        dead: AtomicBool::new(false),
        active: Arc::clone(active),
    });
    let inbox = &inboxes[(id % inboxes.len() as u64) as usize];
    if inbox
        .push(NewConn {
            shared: Arc::clone(&shared),
            stream: write_half,
        })
        .is_err()
    {
        return; // shard already shut down; drop the socket
    }
    stats.accepted.fetch_add(1, Ordering::Relaxed);
    let handle = {
        let shutdown = Arc::clone(shutdown);
        let stats = Arc::clone(stats);
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            reader_loop(stream, &shared, &shutdown, &stats, &cfg);
        })
    };
    readers
        .lock()
        .expect("reader registry poisoned")
        .push(handle);
}

/// Classifies a wire error into the protocol error code sent back.
fn quarantine_code(err: &wire::WireError) -> ErrorCode {
    match err {
        wire::WireError::BadEvent { .. } => ErrorCode::BadEvent,
        wire::WireError::Truncated { .. } => ErrorCode::Truncated,
        _ => ErrorCode::Malformed,
    }
}

fn reader_loop(
    mut stream: TcpStream,
    shared: &Arc<ConnShared>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    cfg: &ServeConfig,
) {
    let mut asm = FrameAssembler::new().with_max_frame(cfg.max_frame);
    let mut last_progress = Instant::now();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if shared.dead.load(Ordering::SeqCst) {
            return; // the worker already killed this connection
        }
        if shutdown.load(Ordering::SeqCst) {
            // Drain: stop reading; ask the worker to flush a partial
            // report. If the queue is full this blocks until the worker
            // catches up, which is exactly the drain semantics we want.
            let _ = shared.queue.push(WorkItem::Drain);
            return;
        }
        if last_progress.elapsed() > cfg.progress_deadline {
            shared.dead.store(true, Ordering::SeqCst);
            stats.reaped_deadline.fetch_add(1, Ordering::Relaxed);
            if write_error(
                &mut stream,
                ErrorCode::DeadlineExceeded,
                &format!("no complete frame within {:?}", cfg.progress_deadline),
            ) {
                drain_then_close(&mut stream);
            }
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // EOF. Clean only if it arrives exactly on a frame
                // boundary after `Finish` (in which case we already
                // returned); here it is a mid-stream disconnect.
                shared.dead.store(true, Ordering::SeqCst);
                stats.disconnected.fetch_add(1, Ordering::Relaxed);
                let _ = write_error(
                    &mut stream,
                    ErrorCode::Truncated,
                    "connection closed before Finish",
                );
                return;
            }
            Ok(n) => {
                asm.push(&buf[..n]);
                loop {
                    match asm.next_frame() {
                        Ok(Some(frame)) => {
                            last_progress = Instant::now();
                            match frame.ftype {
                                FrameType::Events => match wire::decode_events(&frame.payload) {
                                    Ok(events) => {
                                        if shared.queue.push(WorkItem::Events(events)).is_err() {
                                            return; // worker is gone
                                        }
                                    }
                                    Err(err) => {
                                        shared.dead.store(true, Ordering::SeqCst);
                                        stats.quarantined.fetch_add(1, Ordering::Relaxed);
                                        if write_error(
                                            &mut stream,
                                            quarantine_code(&err),
                                            &err.to_string(),
                                        ) {
                                            drain_then_close(&mut stream);
                                        }
                                        return;
                                    }
                                },
                                FrameType::Finish => {
                                    let _ = shared.queue.push(WorkItem::Finish);
                                    return;
                                }
                                other => {
                                    shared.dead.store(true, Ordering::SeqCst);
                                    stats.quarantined.fetch_add(1, Ordering::Relaxed);
                                    if write_error(
                                        &mut stream,
                                        ErrorCode::Malformed,
                                        &format!("client sent server-side frame {other:?}"),
                                    ) {
                                        drain_then_close(&mut stream);
                                    }
                                    return;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(err) => {
                            shared.dead.store(true, Ordering::SeqCst);
                            stats.quarantined.fetch_add(1, Ordering::Relaxed);
                            if write_error(&mut stream, quarantine_code(&err), &err.to_string()) {
                                drain_then_close(&mut stream);
                            }
                            return;
                        }
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle slice: loop around to re-check deadline/shutdown.
            }
            Err(_) => {
                shared.dead.store(true, Ordering::SeqCst);
                stats.disconnected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Per-connection state owned by a shard worker.
struct ConnState {
    shared: Arc<ConnShared>,
    stream: TcpStream,
    detector: ScordDetector,
    reported_unique: usize,
}

impl ConnState {
    fn current_done(&self, partial: bool) -> Done {
        let log = self.detector.races();
        Done {
            partial,
            total: log.total_count(),
            races: log.unique_races().collect(),
        }
    }
}

/// What the worker decided about one connection after a queue poll.
enum ConnFate {
    Keep { worked: bool },
    Remove,
}

fn shard_loop(inbox: &BoundedQueue<NewConn>, stats: &ServerStats, cfg: &ServeConfig) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut inbox_closed = false;
    loop {
        // Admit new connections without blocking the detection loop.
        loop {
            match inbox.pop_timeout(Duration::ZERO) {
                Pop::Item(nc) => conns.push(ConnState {
                    shared: nc.shared,
                    stream: nc.stream,
                    detector: ScordDetector::new(DetectorConfig::paper_default(
                        cfg.detector_mem_bytes,
                    )),
                    reported_unique: 0,
                }),
                Pop::TimedOut => break,
                Pop::Closed => {
                    inbox_closed = true;
                    break;
                }
            }
        }
        if inbox_closed && conns.is_empty() {
            return;
        }
        let mut worked = false;
        let mut i = 0;
        while i < conns.len() {
            match service_conn(&mut conns[i], stats) {
                ConnFate::Keep { worked: w } => {
                    worked |= w;
                    i += 1;
                }
                ConnFate::Remove => {
                    let conn = conns.swap_remove(i);
                    // Unblock a reader stuck in push(), then drop state.
                    conn.shared.queue.close();
                }
            }
        }
        if !worked {
            // Idle: nap briefly. Readers wake us implicitly by filling
            // queues; the nap just bounds the polling rate.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Polls one connection's queue and applies at most one work item.
fn service_conn(conn: &mut ConnState, stats: &ServerStats) -> ConnFate {
    if conn.shared.dead.load(Ordering::SeqCst) {
        return ConnFate::Remove;
    }
    match conn.shared.queue.pop_timeout(Duration::ZERO) {
        Pop::Item(WorkItem::Events(events)) => {
            for ev in &events {
                if let Err(err) = apply_event(&mut conn.detector, ev) {
                    conn.shared.dead.store(true, Ordering::SeqCst);
                    stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    let _ = write_error(
                        &mut conn.stream,
                        ErrorCode::BadEvent,
                        &format!("detector rejected event: {err}"),
                    );
                    return ConnFate::Remove;
                }
            }
            // Incremental report whenever the unique count moves.
            let log = conn.detector.races();
            let unique = log.unique_count();
            if unique > conn.reported_unique {
                let report = Report {
                    unique: unique as u32,
                    total: log.total_count(),
                };
                conn.reported_unique = unique;
                if !conn.shared.dead.load(Ordering::SeqCst)
                    && !write_frame(
                        &mut conn.stream,
                        FrameType::Report,
                        &proto::encode_report(&report),
                    )
                {
                    conn.shared.dead.store(true, Ordering::SeqCst);
                    stats.disconnected.fetch_add(1, Ordering::Relaxed);
                    return ConnFate::Remove;
                }
            }
            ConnFate::Keep { worked: true }
        }
        Pop::Item(WorkItem::Finish) => {
            let done = conn.current_done(false);
            if conn.shared.dead.load(Ordering::SeqCst)
                || write_frame(
                    &mut conn.stream,
                    FrameType::Done,
                    &proto::encode_done(&done),
                )
            {
                stats.completed.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.disconnected.fetch_add(1, Ordering::Relaxed);
            }
            conn.shared.dead.store(true, Ordering::SeqCst);
            ConnFate::Remove
        }
        Pop::Item(WorkItem::Drain) => {
            let done = conn.current_done(true);
            if !conn.shared.dead.load(Ordering::SeqCst) {
                let _ = write_frame(
                    &mut conn.stream,
                    FrameType::Done,
                    &proto::encode_done(&done),
                );
            }
            stats.drained_partial.fetch_add(1, Ordering::Relaxed);
            conn.shared.dead.store(true, Ordering::SeqCst);
            ConnFate::Remove
        }
        Pop::TimedOut => ConnFate::Keep { worked: false },
        Pop::Closed => ConnFate::Remove,
    }
}
