//! The race-detection service: TCP ingest with backpressure, deadlines,
//! overload shedding, quarantine, and graceful drain — on a
//! readiness-based reactor.
//!
//! ## Thread model
//!
//! One **event loop** thread owns the listener, every connection socket
//! (nonblocking), the [`crate::reactor::Selector`], and a
//! [`crate::reactor::TimerWheel`] for progress deadlines, write stalls
//! and close-linger timers. It accepts, reads, frames, enforces the
//! session protocol, and writes responses; it never blocks on a socket
//! and never decodes an event. N **shard workers** (N ≈ cores) own the
//! `ScordDetector` instances; each connection is pinned to one shard, so
//! the hot detection path takes no locks. Thread count is `1 + shards`,
//! independent of connection count — ten thousand idle sessions cost fds
//! and a few hundred bytes each, not stacks and context switches.
//!
//! Loop → shard is a condvar-blocking mailbox (idle shards *block*, they
//! do not poll); shard → loop is a mutex inbox plus a
//! [`crate::reactor::Waker`]. Both directions are push-nonblocking, so
//! the two sides can never deadlock; boundedness comes from the
//! per-connection in-flight cap, not from queue capacity.
//!
//! ## Backpressure
//!
//! Each connection may have at most [`ServeConfig::queue_capacity`]
//! event batches in flight to its shard. At the cap the loop stops
//! decoding frames *and* drops read interest: the socket stops being
//! read, the kernel buffer fills, and TCP flow control stalls the
//! client. Shard acks decrement the count and resume ingest. Responses
//! queue in a per-connection outbox flushed under `EPOLLOUT` interest; a
//! client that stops draining responses for
//! [`ServeConfig::write_timeout`] is dropped.
//!
//! ## Sessions
//!
//! A connection is *legacy* (one implicit trace, `Events`…`Finish`) or a
//! *session* (stream-scoped frames, multiple traces per connection),
//! decided by its first frame — see [`crate::proto`] for the rules. Only
//! connections with an unfinished trace are subject to the progress
//! deadline: an idle session (or a connection that has sent nothing but
//! its header) parks for free, which is what makes a mostly-idle swarm
//! cheap, while a half-sent frame is still reaped on schedule.
//!
//! ## Robustness contract (unchanged from the thread-per-connection
//! server; the adversarial suite is the spec)
//!
//! - **Deadlines**: a connection with an unfinished trace that completes
//!   no frame within [`ServeConfig::progress_deadline`] is reaped with a
//!   typed `deadline-exceeded` error, found via the timer wheel in
//!   O(expired), not O(connections).
//! - **Shedding**: past [`ServeConfig::max_connections`] live streams
//!   new clients get a typed `Busy` frame and a clean close.
//! - **Quarantine**: any wire violation or detector rejection draws a
//!   typed `Error` and closes *that* connection (with a short lingering
//!   half-close so the error outruns the RST); other streams share
//!   nothing with it and are unaffected.
//! - **Drain**: [`Server::shutdown`] (or SIGTERM via [`crate::signal`])
//!   stops accepting, stops reading, flushes a partial `Done` for every
//!   in-flight stream, and joins every thread before returning.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scord_core::wire::{self, FrameAssembler, FrameType};
use scord_core::{Detector, DetectorConfig, DetectorError, ScordDetector, TraceEvent};

use crate::proto::{self, Done, ErrorCode, Report};
use crate::reactor::{listener_fd, stream_fd, Interest, RawFd, Selector, TimerWheel, Waker};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Detector shard workers. Defaults to available parallelism, capped
    /// at 8 — detection is memory-bound well before that.
    pub shards: usize,
    /// Per-connection in-flight cap, in event batches: how many decoded
    /// batches may sit between the loop and the shard before the
    /// connection's socket stops being read.
    pub queue_capacity: usize,
    /// Upper bound on the event loop's sleep — how often it re-checks
    /// the shutdown flag even with no I/O and no armed timers.
    pub read_slice: Duration,
    /// A connection with an unfinished trace that completes no frame for
    /// this long is reaped. Idle sessions are exempt.
    pub progress_deadline: Duration,
    /// Ceiling on response-write stalls; a client that stops draining
    /// its responses for this long is dropped (the detector never blocks
    /// on a slow consumer).
    pub write_timeout: Duration,
    /// Overload watermark: live connections beyond this are shed with a
    /// typed `Busy` response.
    pub max_connections: usize,
    /// Per-frame payload ceiling passed to the wire decoder.
    pub max_frame: u32,
    /// Global-memory size handed to [`DetectorConfig::paper_default`]
    /// for each per-stream detector.
    pub detector_mem_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 32,
            read_slice: Duration::from_millis(50),
            progress_deadline: Duration::from_secs(5),
            write_timeout: Duration::from_secs(2),
            max_connections: 64,
            max_frame: wire::DEFAULT_MAX_FRAME,
            detector_mem_bytes: 1 << 20,
        }
    }
}

/// Monotonic counters describing everything the server has done — the
/// adversarial suite asserts on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted into service.
    pub accepted: u64,
    /// Connections shed with `Busy` at the overload watermark.
    pub shed_busy: u64,
    /// Connections reaped by the progress deadline.
    pub reaped_deadline: u64,
    /// Connections quarantined for protocol violations or bad events.
    pub quarantined: u64,
    /// Connections that disconnected mid-stream (EOF before `Finish`).
    pub disconnected: u64,
    /// Streams completed normally (full `Done` sent).
    pub completed: u64,
    /// Streams flushed with a partial `Done` during drain.
    pub drained_partial: u64,
}

#[derive(Debug, Default)]
struct ServerStats {
    accepted: AtomicU64,
    shed_busy: AtomicU64,
    reaped_deadline: AtomicU64,
    quarantined: AtomicU64,
    disconnected: AtomicU64,
    completed: AtomicU64,
    drained_partial: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            reaped_deadline: self.reaped_deadline.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            drained_partial: self.drained_partial.load(Ordering::Relaxed),
        }
    }
}

// ---- loop ↔ shard plumbing -----------------------------------------------

/// Condvar-blocking unbounded mailbox (loop → shard). Unbounded is safe
/// because the loop enforces the per-connection in-flight cap before
/// pushing; blocking pop is the satellite fix for the old 500µs sleep
/// poll — an idle shard costs zero CPU.
struct Mailbox<T> {
    inner: Mutex<(VecDeque<T>, bool)>,
    cv: Condvar,
}

impl<T> Mailbox<T> {
    fn new() -> Mailbox<T> {
        Mailbox {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, item: T) {
        let mut g = self.inner.lock().expect("mailbox poisoned");
        if g.1 {
            return; // closed: drop
        }
        g.0.push_back(item);
        drop(g);
        self.cv.notify_one();
    }

    /// Blocks for the next item; `None` once closed *and* empty (the
    /// backlog is always drained first, so queued `Drain` markers are
    /// honored).
    fn pop_blocking(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("mailbox poisoned");
        loop {
            if let Some(item) = g.0.pop_front() {
                return Some(item);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).expect("mailbox poisoned");
        }
    }

    /// Non-blocking drain of up to `max` more items (ack batching).
    fn drain_into(&self, out: &mut Vec<T>, max: usize) {
        let mut g = self.inner.lock().expect("mailbox poisoned");
        for _ in 0..max {
            match g.0.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
    }

    fn close(&self) {
        let mut g = self.inner.lock().expect("mailbox poisoned");
        g.1 = true;
        drop(g);
        self.cv.notify_all();
    }
}

/// Work handed from the event loop to a detector shard. Event payloads
/// travel undecoded — the loop never spends its cycles in
/// `decode_events`.
enum ShardItem {
    /// An `Events` payload for a legacy (implicit-stream) connection.
    LegacyEvents(Vec<u8>),
    /// Legacy `Finish`: emit the full report and close.
    LegacyFinish,
    /// A `StreamEvents` payload (id already stripped) for a session.
    StreamEvents { stream: u32, bytes: Vec<u8> },
    /// `StreamFinish`: emit this stream's full report; session persists.
    StreamFinish { stream: u32 },
    /// Session-level `Finish` ("bye"): finalize remaining open streams,
    /// then close.
    Bye,
    /// Server drain: flush partial report(s) for whatever is open, then
    /// close.
    Drain,
    /// The loop closed the socket; forget all state, emit nothing.
    Close,
}

struct ShardMsg {
    conn: u64,
    item: ShardItem,
}

/// Message from a shard back to the event loop.
enum LoopMsg {
    /// Append response bytes to the connection's outbox.
    Append { conn: u64, bytes: Vec<u8> },
    /// Final response bytes: flush, then close (optionally via a
    /// lingering half-close so the bytes outrun any RST).
    FinishConn {
        conn: u64,
        bytes: Vec<u8>,
        linger: bool,
    },
    /// In-flight batch acknowledgements `(conn, batches)`.
    Acks(Vec<(u64, u32)>),
}

/// Shard → loop inbox: a mutex'd vector plus the loop's waker. Pushes
/// never block, so a shard can never deadlock against a busy loop.
struct LoopInbox {
    msgs: Mutex<Vec<LoopMsg>>,
    waker: Waker,
}

impl LoopInbox {
    fn send(&self, batch: Vec<LoopMsg>) {
        if batch.is_empty() {
            return;
        }
        self.msgs.lock().expect("inbox poisoned").extend(batch);
        self.waker.wake();
    }

    fn take(&self) -> Vec<LoopMsg> {
        std::mem::take(&mut *self.msgs.lock().expect("inbox poisoned"))
    }
}

// ---- detection shards ----------------------------------------------------

fn apply_event(det: &mut ScordDetector, ev: &TraceEvent) -> Result<(), DetectorError> {
    match *ev {
        TraceEvent::Access(ref a) => det.on_access(a).map(|_| ()),
        TraceEvent::Fence {
            sm,
            warp_slot,
            scope,
        } => det.on_fence(sm, warp_slot, scope),
        TraceEvent::Barrier { sm, block_slot } => det.on_barrier(sm, block_slot),
        TraceEvent::WarpAssigned { sm, warp_slot } => det.on_warp_assigned(sm, warp_slot),
        TraceEvent::KernelBoundary => {
            det.on_kernel_boundary();
            Ok(())
        }
    }
}

fn frame_bytes(ftype: FrameType, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + wire::FRAME_OVERHEAD);
    wire::encode_frame(ftype, payload, &mut bytes);
    bytes
}

fn error_frame(code: ErrorCode, message: &str) -> Vec<u8> {
    frame_bytes(FrameType::Error, &proto::encode_error(code, message))
}

/// Classifies a wire error into the protocol error code sent back.
fn quarantine_code(err: &wire::WireError) -> ErrorCode {
    match err {
        wire::WireError::BadEvent { .. } => ErrorCode::BadEvent,
        wire::WireError::Truncated { .. } => ErrorCode::Truncated,
        _ => ErrorCode::Malformed,
    }
}

/// One detector plus its incremental-report watermark.
struct StreamDet {
    det: ScordDetector,
    reported_unique: usize,
}

impl StreamDet {
    fn new(mem_bytes: u64) -> StreamDet {
        StreamDet {
            det: ScordDetector::new(DetectorConfig::paper_default(mem_bytes)),
            reported_unique: 0,
        }
    }

    fn apply_all(&mut self, events: &[TraceEvent]) -> Result<(), DetectorError> {
        for ev in events {
            apply_event(&mut self.det, ev)?;
        }
        Ok(())
    }

    /// A [`Report`] whenever the unique-race count moved since the last.
    fn report_if_grown(&mut self) -> Option<Report> {
        let log = self.det.races();
        let unique = log.unique_count();
        if unique > self.reported_unique {
            self.reported_unique = unique;
            return Some(Report {
                unique: unique as u32,
                total: log.total_count(),
            });
        }
        None
    }

    fn done(&self, partial: bool) -> Done {
        let log = self.det.races();
        Done {
            partial,
            total: log.total_count(),
            races: log.unique_races().collect(),
        }
    }
}

/// Shard-side per-connection state. `Killed` tombstones a quarantined
/// connection so work already in the mailbox is discarded instead of
/// resurrecting it; the loop's final `Close` removes the tombstone.
enum ShardConn {
    Legacy(Box<StreamDet>),
    Session(Vec<(u32, StreamDet)>),
    Killed,
}

struct ShardCtx<'a> {
    stats: &'a ServerStats,
    mem_bytes: u64,
    out: Vec<LoopMsg>,
    acks: Vec<(u64, u32)>,
}

impl ShardCtx<'_> {
    fn kill(&mut self, conns: &mut HashMap<u64, ShardConn>, conn: u64, code: ErrorCode, msg: &str) {
        conns.insert(conn, ShardConn::Killed);
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        self.out.push(LoopMsg::FinishConn {
            conn,
            bytes: error_frame(code, msg),
            linger: true,
        });
    }
}

fn shard_loop(
    mailbox: &Mailbox<ShardMsg>,
    inbox: &LoopInbox,
    stats: &ServerStats,
    cfg: &ServeConfig,
) {
    let mut conns: HashMap<u64, ShardConn> = HashMap::new();
    let mut batch: Vec<ShardMsg> = Vec::new();
    loop {
        let Some(first) = mailbox.pop_blocking() else {
            return;
        };
        batch.push(first);
        mailbox.drain_into(&mut batch, 255);
        let mut ctx = ShardCtx {
            stats,
            mem_bytes: cfg.detector_mem_bytes,
            out: Vec::new(),
            acks: Vec::new(),
        };
        for msg in batch.drain(..) {
            shard_handle(&mut conns, msg, &mut ctx);
        }
        if !ctx.acks.is_empty() {
            let acks = std::mem::take(&mut ctx.acks);
            ctx.out.push(LoopMsg::Acks(acks));
        }
        inbox.send(ctx.out);
    }
}

fn shard_handle(conns: &mut HashMap<u64, ShardConn>, msg: ShardMsg, ctx: &mut ShardCtx<'_>) {
    let ShardMsg { conn, item } = msg;
    if let ShardItem::Close = item {
        conns.remove(&conn);
        return;
    }
    if matches!(conns.get(&conn), Some(ShardConn::Killed)) {
        return; // quarantined: discard queued work until the loop closes
    }
    match item {
        ShardItem::LegacyEvents(bytes) => {
            ctx.acks.push((conn, 1));
            let ShardConn::Legacy(sd) = conns
                .entry(conn)
                .or_insert_with(|| ShardConn::Legacy(Box::new(StreamDet::new(ctx.mem_bytes))))
            else {
                return; // protocol mixing is quarantined at the loop
            };
            match wire::decode_events(&bytes) {
                Ok(events) => {
                    if let Err(err) = sd.apply_all(&events) {
                        ctx.kill(
                            conns,
                            conn,
                            ErrorCode::BadEvent,
                            &format!("detector rejected event: {err}"),
                        );
                        return;
                    }
                    if let Some(report) = sd.report_if_grown() {
                        ctx.out.push(LoopMsg::Append {
                            conn,
                            bytes: frame_bytes(FrameType::Report, &proto::encode_report(&report)),
                        });
                    }
                }
                Err(err) => ctx.kill(conns, conn, quarantine_code(&err), &err.to_string()),
            }
        }
        ShardItem::LegacyFinish => {
            let sd = match conns.remove(&conn) {
                Some(ShardConn::Legacy(sd)) => sd,
                // Finish with no prior events: an empty trace is a valid
                // (raceless) stream.
                _ => Box::new(StreamDet::new(ctx.mem_bytes)),
            };
            ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
            ctx.out.push(LoopMsg::FinishConn {
                conn,
                bytes: frame_bytes(FrameType::Done, &proto::encode_done(&sd.done(false))),
                linger: false,
            });
        }
        ShardItem::StreamEvents { stream, bytes } => {
            ctx.acks.push((conn, 1));
            let ShardConn::Session(streams) = conns
                .entry(conn)
                .or_insert_with(|| ShardConn::Session(Vec::new()))
            else {
                return;
            };
            let sd = match streams.iter_mut().position(|(id, _)| *id == stream) {
                Some(at) => &mut streams[at].1,
                None => {
                    streams.push((stream, StreamDet::new(ctx.mem_bytes)));
                    &mut streams.last_mut().expect("just pushed").1
                }
            };
            match wire::decode_events(&bytes) {
                Ok(events) => {
                    if let Err(err) = sd.apply_all(&events) {
                        ctx.kill(
                            conns,
                            conn,
                            ErrorCode::BadEvent,
                            &format!("detector rejected event: {err}"),
                        );
                        return;
                    }
                    if let Some(report) = sd.report_if_grown() {
                        ctx.out.push(LoopMsg::Append {
                            conn,
                            bytes: frame_bytes(
                                FrameType::StreamReport,
                                &proto::encode_stream_report(stream, &report),
                            ),
                        });
                    }
                }
                Err(err) => ctx.kill(conns, conn, quarantine_code(&err), &err.to_string()),
            }
        }
        ShardItem::StreamFinish { stream } => {
            let entry = conns
                .entry(conn)
                .or_insert_with(|| ShardConn::Session(Vec::new()));
            let ShardConn::Session(streams) = entry else {
                return;
            };
            let sd = match streams.iter().position(|(id, _)| *id == stream) {
                Some(at) => streams.swap_remove(at).1,
                // Opened and finished with no events: an empty stream.
                None => StreamDet::new(ctx.mem_bytes),
            };
            ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
            ctx.out.push(LoopMsg::Append {
                conn,
                bytes: frame_bytes(
                    FrameType::StreamDone,
                    &proto::encode_stream_done(stream, &sd.done(false)),
                ),
            });
        }
        ShardItem::Bye => {
            let mut streams = match conns.remove(&conn) {
                Some(ShardConn::Session(streams)) => streams,
                _ => Vec::new(),
            };
            streams.sort_by_key(|(id, _)| *id);
            let mut bytes = Vec::new();
            for (stream, sd) in &streams {
                ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
                bytes.extend_from_slice(&frame_bytes(
                    FrameType::StreamDone,
                    &proto::encode_stream_done(*stream, &sd.done(false)),
                ));
            }
            ctx.out.push(LoopMsg::FinishConn {
                conn,
                bytes,
                linger: false,
            });
        }
        ShardItem::Drain => match conns.remove(&conn) {
            Some(ShardConn::Killed) => {}
            Some(ShardConn::Session(mut streams)) => {
                streams.sort_by_key(|(id, _)| *id);
                let mut bytes = Vec::new();
                for (stream, sd) in &streams {
                    ctx.stats.drained_partial.fetch_add(1, Ordering::Relaxed);
                    bytes.extend_from_slice(&frame_bytes(
                        FrameType::StreamDone,
                        &proto::encode_stream_done(*stream, &sd.done(true)),
                    ));
                }
                ctx.out.push(LoopMsg::FinishConn {
                    conn,
                    bytes,
                    linger: false,
                });
            }
            removed => {
                let sd = match removed {
                    Some(ShardConn::Legacy(sd)) => sd,
                    _ => Box::new(StreamDet::new(ctx.mem_bytes)),
                };
                ctx.stats.drained_partial.fetch_add(1, Ordering::Relaxed);
                ctx.out.push(LoopMsg::FinishConn {
                    conn,
                    bytes: frame_bytes(FrameType::Done, &proto::encode_done(&sd.done(true))),
                    linger: false,
                });
            }
        },
        ShardItem::Close => unreachable!("handled above"),
    }
}

// ---- event loop ----------------------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// How long a quarantined/shed connection lingers half-closed so its
/// final frame outruns the RST a hard close would send.
const LINGER: Duration = Duration::from_millis(500);
/// How long the loop stops accepting after a non-`WouldBlock` accept
/// error (e.g. transient `EMFILE`) instead of spinning on a
/// level-triggered listener.
const ACCEPT_PAUSE: Duration = Duration::from_millis(5);
const READ_CHUNK: usize = 64 * 1024;

fn token_of(slot: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | slot as u64
}

/// Connection lifecycle at the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reading and forwarding frames.
    Streaming,
    /// Client's part is done (`Finish` seen) or the server is draining;
    /// reads stop, the shard's final bytes are on their way.
    AwaitFinal,
    /// Final bytes queued: close (or linger) once the outbox flushes.
    Flush { linger: bool },
    /// Write side shut; discard reads until EOF or the timer fires.
    Linger { until: Instant },
}

/// Which protocol dialect the connection speaks (fixed by its first
/// frame; mixing is quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Unknown,
    Legacy { open: bool },
    Session,
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    gen: u32,
    asm: FrameAssembler,
    outbox: Vec<u8>,
    outbox_pos: usize,
    interest: Interest,
    registered: bool,
    inflight: usize,
    shard: usize,
    shard_known: bool,
    phase: Phase,
    mode: Mode,
    open_ids: Vec<u32>,
    next_stream_min: u32,
    last_progress: Instant,
    write_blocked_since: Option<Instant>,
    armed: bool,
    counts_active: bool,
    read_open: bool,
}

impl Conn {
    fn token(&self, slot: usize) -> u64 {
        token_of(slot, self.gen)
    }

    /// Subject to the progress deadline? Only connections the client has
    /// left mid-trace: a half-received frame, an unfinished legacy
    /// stream, or open session streams. Idle sessions and header-only
    /// connections park for free — that exemption is what lets a 10k
    /// idle swarm coexist with a sub-second deadline.
    fn reapable(&self) -> bool {
        if self.phase != Phase::Streaming {
            return false;
        }
        self.asm.pending_bytes() > 0
            || match self.mode {
                Mode::Legacy { open } => open,
                Mode::Session => !self.open_ids.is_empty(),
                Mode::Unknown => false,
            }
    }

    fn has_unflushed(&self) -> bool {
        self.outbox_pos < self.outbox.len()
    }

    /// The interest set this connection's state wants right now.
    fn desired_interest(&self, queue_capacity: usize) -> Interest {
        let readable = self.read_open
            && match self.phase {
                // Backpressure edge: at the in-flight cap the socket
                // stops being read entirely.
                Phase::Streaming => self.inflight < queue_capacity,
                Phase::AwaitFinal | Phase::Flush { .. } => false,
                Phase::Linger { .. } => true,
            };
        Interest {
            readable,
            writable: self.has_unflushed(),
        }
    }

    /// Earliest pending deadline, for the timer wheel.
    fn next_deadline(&self, cfg: &ServeConfig) -> Option<Instant> {
        let mut dl: Option<Instant> = None;
        let mut consider = |t: Instant| match dl {
            Some(cur) if cur <= t => {}
            _ => dl = Some(t),
        };
        if let Phase::Linger { until } = self.phase {
            consider(until);
        }
        if let Some(t) = self.write_blocked_since {
            consider(t + cfg.write_timeout);
        }
        if self.reapable() {
            consider(self.last_progress + cfg.progress_deadline);
        }
        dl
    }
}

/// What `decide` wants done with one client frame.
enum Action {
    /// Hand the item to the shard; `true` counts against the in-flight
    /// cap.
    Forward(ShardItem, bool),
    /// Hand the item to the shard and stop reading — the shard's reply
    /// ends the connection.
    Final(ShardItem),
    /// Protocol violation: quarantine with this code and message.
    Quarantine(ErrorCode, String),
}

/// Enforces the protocol state machine for one frame, updating the
/// connection's mode/stream bookkeeping. Pure with respect to the loop —
/// all I/O consequences are in the returned [`Action`].
fn decide(conn: &mut Conn, ftype: FrameType, payload: Vec<u8>) -> Action {
    match ftype {
        FrameType::Events => {
            if conn.mode == Mode::Session {
                return Action::Quarantine(
                    ErrorCode::Malformed,
                    "legacy Events frame on a session connection".to_string(),
                );
            }
            conn.mode = Mode::Legacy { open: true };
            Action::Forward(ShardItem::LegacyEvents(payload), true)
        }
        FrameType::Finish => {
            if conn.mode == Mode::Session {
                conn.open_ids.clear();
                Action::Final(ShardItem::Bye)
            } else {
                Action::Final(ShardItem::LegacyFinish)
            }
        }
        FrameType::StreamEvents => {
            if matches!(conn.mode, Mode::Legacy { .. }) {
                return Action::Quarantine(
                    ErrorCode::Malformed,
                    "session frame on a legacy connection".to_string(),
                );
            }
            conn.mode = Mode::Session;
            match proto::split_stream_payload(&payload) {
                Ok((stream, rest)) => {
                    let bytes = rest.to_vec();
                    if conn.open_ids.contains(&stream) {
                        Action::Forward(ShardItem::StreamEvents { stream, bytes }, true)
                    } else if stream >= conn.next_stream_min {
                        conn.open_ids.push(stream);
                        conn.next_stream_min = stream.saturating_add(1);
                        Action::Forward(ShardItem::StreamEvents { stream, bytes }, true)
                    } else {
                        Action::Quarantine(
                            ErrorCode::Malformed,
                            format!("stream id {stream} reused (ids must be strictly increasing)"),
                        )
                    }
                }
                Err(err) => Action::Quarantine(quarantine_code(&err), err.to_string()),
            }
        }
        FrameType::StreamFinish => {
            if matches!(conn.mode, Mode::Legacy { .. }) {
                return Action::Quarantine(
                    ErrorCode::Malformed,
                    "session frame on a legacy connection".to_string(),
                );
            }
            conn.mode = Mode::Session;
            match proto::decode_stream_finish(&payload) {
                Ok(stream) => {
                    if let Some(at) = conn.open_ids.iter().position(|id| *id == stream) {
                        conn.open_ids.swap_remove(at);
                        Action::Forward(ShardItem::StreamFinish { stream }, false)
                    } else if stream >= conn.next_stream_min {
                        // Open-and-finish with no events: an empty stream.
                        conn.next_stream_min = stream.saturating_add(1);
                        Action::Forward(ShardItem::StreamFinish { stream }, false)
                    } else {
                        Action::Quarantine(
                            ErrorCode::Malformed,
                            format!("stream id {stream} reused (ids must be strictly increasing)"),
                        )
                    }
                }
                Err(err) => Action::Quarantine(quarantine_code(&err), err.to_string()),
            }
        }
        other => Action::Quarantine(
            ErrorCode::Malformed,
            format!("client sent server-side frame {other:?}"),
        ),
    }
}

struct EventLoop {
    cfg: ServeConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    listener: Option<TcpListener>,
    lfd: RawFd,
    listener_registered: bool,
    listener_pause_until: Option<Instant>,
    selector: Selector,
    wheel: TimerWheel,
    inbox: Arc<LoopInbox>,
    mailboxes: Vec<Arc<Mailbox<ShardMsg>>>,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    active: usize,
    next_shard: usize,
    draining: bool,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn queue_cap(&self) -> usize {
        self.cfg.queue_capacity.max(1)
    }

    fn lookup(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        match self.conns.get(slot) {
            Some(Some(conn)) if conn.gen == gen => Some(slot),
            _ => None,
        }
    }

    fn run(&mut self) {
        let mut events = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        loop {
            let now = Instant::now();
            if let Some(until) = self.listener_pause_until {
                if now >= until {
                    self.listener_pause_until = None;
                    self.register_listener();
                }
            }
            let mut timeout = self.cfg.read_slice;
            if let Some(tick) = self.wheel.next_tick(now) {
                timeout = timeout.min(tick.max(Duration::from_millis(1)));
            }
            if let Some(until) = self.listener_pause_until {
                timeout = timeout.min(until.saturating_duration_since(now));
            }
            self.selector
                .wait(&mut events, timeout)
                .expect("selector wait failed");
            let now = Instant::now();

            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_WAKER => {} // drained in process_inbox
                    TOKEN_LISTENER => {
                        if ev.readable {
                            self.accept_ready(now);
                        }
                    }
                    token => {
                        if let Some(slot) = self.lookup(token) {
                            if ev.writable {
                                self.flush_outbox(slot, now);
                            }
                        }
                        if let Some(slot) = self.lookup(token) {
                            if ev.readable || ev.error {
                                self.on_readable(slot, now);
                            }
                        }
                    }
                }
            }
            events = batch;

            self.process_inbox(now);

            self.wheel.advance(now, &mut fired);
            if !fired.is_empty() {
                let batch = std::mem::take(&mut fired);
                for token in &batch {
                    self.on_timer(*token, now);
                }
                fired = batch;
                fired.clear();
            }

            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain(now);
            }
            if self.draining && self.live == 0 {
                return;
            }
        }
    }

    fn register_listener(&mut self) {
        if self.listener.is_some()
            && !self.listener_registered
            && self
                .selector
                .register(self.lfd, TOKEN_LISTENER, Interest::READABLE)
                .is_ok()
        {
            self.listener_registered = true;
        }
    }

    fn deregister_listener(&mut self) {
        if self.listener_registered {
            let _ = self.selector.deregister(self.lfd);
            self.listener_registered = false;
        }
    }

    // -- accept path -------------------------------------------------------

    fn accept_ready(&mut self, now: Instant) {
        loop {
            if self.draining {
                return;
            }
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream, now),
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE). The listener
                    // is level-triggered, so back off explicitly instead
                    // of spinning.
                    self.deregister_listener();
                    self.listener_pause_until = Some(now + ACCEPT_PAUSE);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = stream_fd(&stream);
        let shed = self.active >= self.cfg.max_connections;
        let (outbox, phase, counts_active) = if shed {
            self.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
            (
                frame_bytes(FrameType::Busy, &[]),
                Phase::Flush { linger: true },
                false,
            )
        } else {
            (Vec::new(), Phase::Streaming, true)
        };

        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens[slot];
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.mailboxes.len();
        let conn = Conn {
            stream,
            fd,
            gen,
            asm: FrameAssembler::new().with_max_frame(self.cfg.max_frame),
            outbox,
            outbox_pos: 0,
            interest: Interest::READABLE,
            registered: false,
            inflight: 0,
            shard,
            shard_known: false,
            phase,
            mode: Mode::Unknown,
            open_ids: Vec::new(),
            next_stream_min: 0,
            last_progress: now,
            write_blocked_since: None,
            armed: false,
            counts_active,
            read_open: true,
        };
        let interest = conn.desired_interest(self.queue_cap());
        let token = conn.token(slot);
        self.conns[slot] = Some(conn);
        if self.selector.register(fd, token, interest).is_err() {
            // Registration failed: give the slot back and drop the socket.
            self.conns[slot] = None;
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.free.push(slot);
            return;
        }
        {
            let conn = self.conns[slot].as_mut().expect("just inserted");
            conn.registered = true;
            conn.interest = interest;
        }
        self.live += 1;
        if counts_active {
            self.active += 1;
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        }
        if shed {
            // Try to get the Busy frame out immediately.
            self.flush_outbox(slot, now);
        }
    }

    // -- read path ---------------------------------------------------------

    fn on_readable(&mut self, slot: usize, now: Instant) {
        loop {
            let cap = self.queue_cap();
            let conn = self.conns[slot].as_mut().expect("live slot");
            let phase = conn.phase;
            match phase {
                Phase::Streaming => {
                    if conn.inflight >= cap || !conn.read_open {
                        break;
                    }
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => {
                            self.disconnect(slot, now);
                            return;
                        }
                        Ok(n) => {
                            let chunk: Vec<u8> = self.scratch[..n].to_vec();
                            let conn = self.conns[slot].as_mut().expect("live slot");
                            conn.asm.push(&chunk);
                            self.pump(slot, now);
                            if self.conns[slot].is_none() {
                                return;
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
                            self.close_conn(slot);
                            return;
                        }
                    }
                }
                Phase::AwaitFinal | Phase::Flush { .. } => {
                    // Reads are ignored but EOF is still tracked so a
                    // lingering close knows the peer is gone.
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => {
                            conn.read_open = false;
                            self.set_interest(slot);
                            return;
                        }
                        Ok(_) => {}
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.read_open = false;
                            self.set_interest(slot);
                            return;
                        }
                    }
                }
                Phase::Linger { .. } => match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        self.close_conn(slot);
                        return;
                    }
                    Ok(_) => {}
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close_conn(slot);
                        return;
                    }
                },
            }
        }
        self.set_interest(slot);
        self.arm(slot, now);
    }

    /// Decodes and dispatches every complete frame the assembler holds,
    /// stopping at the in-flight cap (backpressure) or a phase change.
    fn pump(&mut self, slot: usize, now: Instant) {
        loop {
            let cap = self.queue_cap();
            let conn = self.conns[slot].as_mut().expect("live slot");
            if conn.phase != Phase::Streaming || conn.inflight >= cap {
                break;
            }
            match conn.asm.next_frame() {
                Ok(Some(frame)) => {
                    conn.last_progress = now;
                    match decide(conn, frame.ftype, frame.payload) {
                        Action::Forward(item, counted) => {
                            if counted {
                                conn.inflight += 1;
                            }
                            self.forward(slot, item);
                        }
                        Action::Final(item) => {
                            conn.phase = Phase::AwaitFinal;
                            self.forward(slot, item);
                        }
                        Action::Quarantine(code, msg) => {
                            self.quarantine(slot, code, &msg, now);
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    let code = quarantine_code(&err);
                    let msg = err.to_string();
                    self.quarantine(slot, code, &msg, now);
                    return;
                }
            }
        }
        self.set_interest(slot);
        self.arm(slot, now);
    }

    fn forward(&mut self, slot: usize, item: ShardItem) {
        let conn = self.conns[slot].as_mut().expect("live slot");
        conn.shard_known = true;
        let msg = ShardMsg {
            conn: conn.token(slot),
            item,
        };
        self.mailboxes[conn.shard].push(msg);
    }

    fn quarantine(&mut self, slot: usize, code: ErrorCode, msg: &str, now: Instant) {
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        self.begin_close_frame(slot, error_frame(code, msg), true, now);
    }

    /// Mid-stream EOF or read error: typed `Truncated` best-effort, then
    /// close.
    fn disconnect(&mut self, slot: usize, now: Instant) {
        self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
        {
            let conn = self.conns[slot].as_mut().expect("live slot");
            conn.read_open = false;
        }
        self.begin_close_frame(
            slot,
            error_frame(ErrorCode::Truncated, "connection closed before Finish"),
            false,
            now,
        );
    }

    /// Queues final bytes and moves the connection to `Flush`.
    fn begin_close_frame(&mut self, slot: usize, bytes: Vec<u8>, linger: bool, now: Instant) {
        {
            let conn = self.conns[slot].as_mut().expect("live slot");
            conn.outbox.extend_from_slice(&bytes);
            conn.phase = Phase::Flush { linger };
        }
        self.flush_outbox(slot, now);
    }

    // -- write path --------------------------------------------------------

    fn flush_outbox(&mut self, slot: usize, now: Instant) {
        loop {
            let conn = self.conns[slot].as_mut().expect("live slot");
            if !conn.has_unflushed() {
                break;
            }
            match conn.stream.write(&conn.outbox[conn.outbox_pos..]) {
                Ok(0) => {
                    self.on_write_failure(slot);
                    return;
                }
                Ok(n) => {
                    conn.outbox_pos += n;
                    conn.write_blocked_since = None;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.write_blocked_since.get_or_insert(now);
                    break;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.on_write_failure(slot);
                    return;
                }
            }
        }
        let conn = self.conns[slot].as_mut().expect("live slot");
        if !conn.has_unflushed() {
            conn.outbox.clear();
            conn.outbox_pos = 0;
            conn.write_blocked_since = None;
            if let Phase::Flush { linger } = conn.phase {
                if linger && conn.read_open {
                    // Half-close so the final frame is delivered, then
                    // discard whatever the client still had in flight.
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    conn.phase = Phase::Linger {
                        until: now + LINGER,
                    };
                } else {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        self.set_interest(slot);
        self.arm(slot, now);
    }

    fn on_write_failure(&mut self, slot: usize) {
        let streaming = {
            let conn = self.conns[slot].as_ref().expect("live slot");
            matches!(conn.phase, Phase::Streaming | Phase::AwaitFinal)
        };
        if streaming {
            // The client stopped taking responses mid-stream: that is a
            // disconnect, same as the reader-side EOF.
            self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
        }
        self.close_conn(slot);
    }

    // -- inbox / timers ----------------------------------------------------

    fn process_inbox(&mut self, now: Instant) {
        self.inbox.waker.drain();
        let msgs = self.inbox.take();
        if msgs.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::new();
        let mut resumed: Vec<usize> = Vec::new();
        for msg in msgs {
            match msg {
                LoopMsg::Append { conn, bytes } => {
                    if let Some(slot) = self.lookup(conn) {
                        let c = self.conns[slot].as_mut().expect("live slot");
                        if matches!(c.phase, Phase::Streaming | Phase::AwaitFinal) {
                            c.outbox.extend_from_slice(&bytes);
                            touched.push(slot);
                        }
                    }
                }
                LoopMsg::FinishConn {
                    conn,
                    bytes,
                    linger,
                } => {
                    if let Some(slot) = self.lookup(conn) {
                        let c = self.conns[slot].as_mut().expect("live slot");
                        if matches!(c.phase, Phase::Streaming | Phase::AwaitFinal) {
                            c.outbox.extend_from_slice(&bytes);
                            c.phase = Phase::Flush { linger };
                            touched.push(slot);
                        }
                    }
                }
                LoopMsg::Acks(acks) => {
                    for (conn, n) in acks {
                        if let Some(slot) = self.lookup(conn) {
                            let c = self.conns[slot].as_mut().expect("live slot");
                            let was_paused = c.inflight >= self.cfg.queue_capacity.max(1);
                            c.inflight = c.inflight.saturating_sub(n as usize);
                            if was_paused && c.phase == Phase::Streaming {
                                resumed.push(slot);
                            }
                        }
                    }
                }
            }
        }
        for slot in resumed {
            if self.conns[slot].is_some() {
                // Frames may be waiting in the assembler: decode them
                // before (and regardless of) any new socket readiness.
                self.pump(slot, now);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            if self.conns[slot].is_some() {
                self.flush_outbox(slot, now);
            }
        }
    }

    fn on_timer(&mut self, token: u64, now: Instant) {
        let Some(slot) = self.lookup(token) else {
            return;
        };
        {
            let conn = self.conns[slot].as_mut().expect("live slot");
            conn.armed = false;
        }
        let conn = self.conns[slot].as_ref().expect("live slot");
        if let Phase::Linger { until } = conn.phase {
            if now >= until {
                self.close_conn(slot);
                return;
            }
        }
        if let Some(t) = conn.write_blocked_since {
            if now >= t + self.cfg.write_timeout {
                self.on_write_failure(slot);
                return;
            }
        }
        if conn.reapable()
            && now.saturating_duration_since(conn.last_progress) > self.cfg.progress_deadline
        {
            self.stats.reaped_deadline.fetch_add(1, Ordering::Relaxed);
            let msg = format!("no complete frame within {:?}", self.cfg.progress_deadline);
            self.quarantine_reap(slot, &msg, now);
            return;
        }
        self.arm(slot, now);
    }

    /// Deadline reap: typed error, lingering close. (Not counted as a
    /// quarantine — it has its own counter.)
    fn quarantine_reap(&mut self, slot: usize, msg: &str, now: Instant) {
        self.begin_close_frame(
            slot,
            error_frame(ErrorCode::DeadlineExceeded, msg),
            true,
            now,
        );
    }

    fn set_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if !conn.registered {
            return;
        }
        let want = conn.desired_interest(self.cfg.queue_capacity.max(1));
        if want != conn.interest {
            let token = conn.token(slot);
            let fd = conn.fd;
            conn.interest = want;
            let _ = self.selector.reregister(fd, token, want);
        }
    }

    fn arm(&mut self, slot: usize, now: Instant) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.armed {
            return;
        }
        if let Some(deadline) = conn.next_deadline(&self.cfg) {
            let token = conn.token(slot);
            conn.armed = true;
            let _ = now; // deadlines are absolute; the wheel handles lateness
            self.wheel.insert(token, deadline);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        if conn.registered {
            let _ = self.selector.deregister(conn.fd);
        }
        if conn.counts_active {
            self.active -= 1;
        }
        if conn.shard_known {
            self.mailboxes[conn.shard].push(ShardMsg {
                conn: token_of(slot, conn.gen),
                item: ShardItem::Close,
            });
        }
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        // `conn.stream` drops here, closing the fd.
    }

    // -- drain -------------------------------------------------------------

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.deregister_listener();
        self.listener = None;
        let slots: Vec<usize> = (0..self.conns.len())
            .filter(|&s| self.conns[s].is_some())
            .collect();
        for slot in slots {
            let conn = self.conns[slot].as_mut().expect("live slot");
            if conn.phase != Phase::Streaming {
                continue;
            }
            if conn.mode == Mode::Unknown {
                // Never sent a frame: the loop can answer it directly
                // with an empty partial report — no shard round-trip for
                // an idle swarm.
                self.stats.drained_partial.fetch_add(1, Ordering::Relaxed);
                let done = Done {
                    partial: true,
                    total: 0,
                    races: Vec::new(),
                };
                self.begin_close_frame(
                    slot,
                    frame_bytes(FrameType::Done, &proto::encode_done(&done)),
                    false,
                    now,
                );
            } else {
                conn.phase = Phase::AwaitFinal;
                self.forward(slot, ShardItem::Drain);
                self.set_interest(slot);
            }
        }
    }
}

// ---- server handle -------------------------------------------------------

/// A running race-detection server. Dropping it performs a graceful
/// drain, so tests cannot leak threads.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    inbox: Arc<LoopInbox>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    mailboxes: Vec<Arc<Mailbox<ShardMsg>>>,
}

impl Server {
    /// Binds, builds the reactor, and starts the event loop and shard
    /// workers.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener or creating the
    /// selector/waker (`Unsupported` on non-Unix platforms).
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut selector = Selector::new()?;
        let waker = Waker::new()?;
        let inbox = Arc::new(LoopInbox {
            msgs: Mutex::new(Vec::new()),
            waker,
        });
        let lfd = listener_fd(&listener);
        selector.register(lfd, TOKEN_LISTENER, Interest::READABLE)?;
        selector.register(inbox.waker.fd(), TOKEN_WAKER, Interest::READABLE)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let shards = cfg.shards.max(1);
        let mailboxes: Vec<Arc<Mailbox<ShardMsg>>> =
            (0..shards).map(|_| Arc::new(Mailbox::new())).collect();

        let workers = mailboxes
            .iter()
            .map(|mailbox| {
                let mailbox = Arc::clone(mailbox);
                let inbox = Arc::clone(&inbox);
                let stats = Arc::clone(&stats);
                let cfg = cfg.clone();
                std::thread::spawn(move || shard_loop(&mailbox, &inbox, &stats, &cfg))
            })
            .collect();

        let loop_thread = {
            let wheel = TimerWheel::for_deadline(cfg.progress_deadline, Instant::now());
            let mut event_loop = EventLoop {
                cfg,
                stats: Arc::clone(&stats),
                shutdown: Arc::clone(&shutdown),
                listener: Some(listener),
                lfd,
                listener_registered: true,
                listener_pause_until: None,
                selector,
                wheel,
                inbox: Arc::clone(&inbox),
                mailboxes: mailboxes.clone(),
                conns: Vec::new(),
                gens: Vec::new(),
                free: Vec::new(),
                live: 0,
                active: 0,
                next_shard: 0,
                draining: false,
                scratch: vec![0u8; READ_CHUNK],
            };
            std::thread::spawn(move || event_loop.run())
        };

        Ok(Server {
            addr,
            shutdown,
            stats,
            inbox,
            loop_thread: Some(loop_thread),
            workers,
            mailboxes,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The drain flag; store `true` (e.g. from a signal watcher) to start
    /// a graceful shutdown without holding the server. The loop also
    /// polls it every [`ServeConfig::read_slice`], so a bare store (no
    /// waker) is still honored promptly.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful drain: stop accepting, stop reading, flush a partial
    /// `Done` for every in-flight stream, join every thread. Returns the
    /// final counters.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked (the adversarial suite's
    /// "zero panics" assertion rides on this propagating).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.drain();
        self.stats.snapshot()
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.inbox.waker.wake();
        if let Some(h) = self.loop_thread.take() {
            h.join().expect("event loop panicked");
        }
        // The loop exits only after every connection resolved; closing
        // the mailboxes now lets workers finish their backlog and exit.
        for mailbox in &self.mailboxes {
            mailbox.close();
        }
        for h in self.workers.drain(..) {
            h.join().expect("shard worker panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.loop_thread.is_some() || !self.workers.is_empty() {
            self.drain();
        }
    }
}
