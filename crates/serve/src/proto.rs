//! Service payloads: responses and the persistent-session envelope.
//!
//! `scord_core::wire` defines framing and the client-to-server event
//! encoding; this module defines what travels *back*: incremental
//! [`Report`]s, the final [`Done`] summary, typed [`ErrorInfo`] responses,
//! and the empty `Busy` payload — plus the *session* payloads that carry a
//! `u32` stream id so one connection can multiplex many traces
//! (`StreamEvents`/`StreamFinish` inbound, `StreamReport`/`StreamDone`
//! outbound). Kept in `scord-serve` because only the service and its
//! clients speak these payloads — the core codec stays a pure trace
//! transport.
//!
//! ## Session protocol rules
//!
//! A connection is *legacy* (one implicit trace, `Events`…`Finish`, exactly
//! the PR 6 protocol) or a *session* (stream-scoped frames), decided by its
//! first frame; mixing the two is a protocol violation. Within a session:
//!
//! - a stream is opened by the first `StreamEvents`/`StreamFinish` naming
//!   its id, and ids must be **strictly increasing** in order of opening
//!   (so a finished id can never be silently resurrected);
//! - events for open streams may interleave arbitrarily;
//! - `StreamFinish` closes one stream and draws its `StreamDone`; the
//!   connection persists;
//! - a connection-level `Finish` ends the session: any still-open streams
//!   are finalized (each drawing a `StreamDone`), then the server closes.
//!   Ending a session with `Finish` is what makes the close *clean* — an
//!   EOF without it is counted as a mid-stream disconnect.

use scord_core::{wire, RaceKind, TraceEvent, WireError};

/// Typed protocol error codes carried in `Error` frames. Every way a
/// connection can be quarantined has a distinct code, so clients (and the
/// adversarial suite) can assert on the *reason*, not just the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The stream violated the wire format (bad magic/version/CRC/frame).
    Malformed,
    /// An event payload decoded but named an impossible event (reserved
    /// bits, unknown tag) or the detector rejected it (e.g. SM out of
    /// range for the service's geometry).
    BadEvent,
    /// The connection made no progress within its deadline and was reaped.
    DeadlineExceeded,
    /// The client disconnected mid-frame (truncated stream).
    Truncated,
    /// The server is draining and will not accept further events.
    Draining,
}

impl ErrorCode {
    /// The on-wire code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::BadEvent => 2,
            ErrorCode::DeadlineExceeded => 3,
            ErrorCode::Truncated => 4,
            ErrorCode::Draining => 5,
        }
    }

    /// Decodes an on-wire code.
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadEvent,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::Truncated,
            5 => ErrorCode::Draining,
            _ => return None,
        })
    }

    /// Stable short name for logs and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadEvent => "bad-event",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Truncated => "truncated",
            ErrorCode::Draining => "draining",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An incremental race report: counters only (the full unique list rides
/// in the final [`Done`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Unique `(pc, kind)` races so far.
    pub unique: u32,
    /// Total race records so far.
    pub total: u64,
}

/// The final (or drain-time partial) summary for a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Done {
    /// `true` when the server drained before the client finished; the
    /// report covers only the events ingested so far.
    pub partial: bool,
    /// Total race records.
    pub total: u64,
    /// Every unique `(pc, kind)` race.
    pub races: Vec<(u32, RaceKind)>,
}

/// A decoded `Error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInfo {
    /// The typed reason, when this build knows the code.
    pub code: Option<ErrorCode>,
    /// The raw on-wire code (kept so skew between builds stays debuggable).
    pub raw_code: u16,
    /// Human-readable detail.
    pub message: String,
}

fn kind_code(kind: RaceKind) -> u8 {
    RaceKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("RaceKind::ALL is exhaustive") as u8
}

fn kind_from_code(code: u8) -> Result<RaceKind, WireError> {
    RaceKind::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::BadEvent {
            word: 0,
            reason: "unassigned race-kind code",
        })
}

fn need(payload: &[u8], n: usize) -> Result<(), WireError> {
    if payload.len() < n {
        return Err(WireError::Truncated {
            need: n,
            have: payload.len(),
        });
    }
    Ok(())
}

fn u32_at(payload: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(payload[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_at(payload: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(payload[at..at + 8].try_into().expect("bounds checked"))
}

/// Encodes a [`Report`] payload.
#[must_use]
pub fn encode_report(r: &Report) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&r.unique.to_le_bytes());
    out.extend_from_slice(&r.total.to_le_bytes());
    out
}

/// Decodes a [`Report`] payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload.
pub fn decode_report(payload: &[u8]) -> Result<Report, WireError> {
    need(payload, 12)?;
    Ok(Report {
        unique: u32_at(payload, 0),
        total: u64_at(payload, 4),
    })
}

/// Encodes a [`Done`] payload.
#[must_use]
pub fn encode_done(d: &Done) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + d.races.len() * 5);
    out.push(u8::from(d.partial));
    out.extend_from_slice(&d.total.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(d.races.len())
            .expect("unique race count fits u32")
            .to_le_bytes(),
    );
    for &(pc, kind) in &d.races {
        out.extend_from_slice(&pc.to_le_bytes());
        out.push(kind_code(kind));
    }
    out
}

/// Decodes a [`Done`] payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload, [`WireError::BadEvent`]
/// for an unassigned race-kind code or a non-boolean partial flag.
pub fn decode_done(payload: &[u8]) -> Result<Done, WireError> {
    need(payload, 13)?;
    if payload[0] > 1 {
        return Err(WireError::BadEvent {
            word: 0,
            reason: "partial flag is not 0 or 1",
        });
    }
    let total = u64_at(payload, 1);
    let n = u32_at(payload, 9) as usize;
    need(payload, 13 + n * 5)?;
    let mut races = Vec::with_capacity(n);
    for i in 0..n {
        let at = 13 + i * 5;
        races.push((u32_at(payload, at), kind_from_code(payload[at + 4])?));
    }
    Ok(Done {
        partial: payload[0] == 1,
        total,
        races,
    })
}

// ---- session payloads ----------------------------------------------------

/// Encodes a `StreamEvents` payload: the stream id followed by the packed
/// event words.
#[must_use]
pub fn encode_stream_events(stream: u32, events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + events.len() * 8);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&wire::encode_events(events));
    out
}

/// Splits a stream-scoped payload into its id and the remainder.
///
/// # Errors
///
/// [`WireError::Truncated`] when even the id is missing.
pub fn split_stream_payload(payload: &[u8]) -> Result<(u32, &[u8]), WireError> {
    need(payload, 4)?;
    Ok((u32_at(payload, 0), &payload[4..]))
}

/// Encodes a `StreamFinish` payload.
#[must_use]
pub fn encode_stream_finish(stream: u32) -> Vec<u8> {
    stream.to_le_bytes().to_vec()
}

/// Decodes a `StreamFinish` payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload, [`WireError::BadEvent`] on
/// trailing bytes (the payload is exactly the id).
pub fn decode_stream_finish(payload: &[u8]) -> Result<u32, WireError> {
    need(payload, 4)?;
    if payload.len() > 4 {
        return Err(WireError::BadEvent {
            word: 0,
            reason: "StreamFinish payload is larger than its stream id",
        });
    }
    Ok(u32_at(payload, 0))
}

/// Encodes a `StreamReport` payload.
#[must_use]
pub fn encode_stream_report(stream: u32, r: &Report) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&encode_report(r));
    out
}

/// Decodes a `StreamReport` payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload.
pub fn decode_stream_report(payload: &[u8]) -> Result<(u32, Report), WireError> {
    let (stream, rest) = split_stream_payload(payload)?;
    Ok((stream, decode_report(rest)?))
}

/// Encodes a `StreamDone` payload.
#[must_use]
pub fn encode_stream_done(stream: u32, d: &Done) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + d.races.len() * 5);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&encode_done(d));
    out
}

/// Decodes a `StreamDone` payload.
///
/// # Errors
///
/// See [`decode_done`]; additionally [`WireError::Truncated`] when the id
/// is missing.
pub fn decode_stream_done(payload: &[u8]) -> Result<(u32, Done), WireError> {
    let (stream, rest) = split_stream_payload(payload)?;
    Ok((stream, decode_done(rest)?))
}

/// Encodes an `Error` payload.
#[must_use]
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&code.code().to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an `Error` payload.
///
/// # Errors
///
/// [`WireError::Truncated`] when even the code is missing.
pub fn decode_error(payload: &[u8]) -> Result<ErrorInfo, WireError> {
    need(payload, 2)?;
    let raw = u16::from_le_bytes(payload[..2].try_into().expect("bounds checked"));
    Ok(ErrorInfo {
        code: ErrorCode::from_code(raw),
        raw_code: raw,
        message: String::from_utf8_lossy(&payload[2..]).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let r = Report {
            unique: 17,
            total: 123_456_789_000,
        };
        assert_eq!(decode_report(&encode_report(&r)).expect("roundtrip"), r);
        assert!(decode_report(&[1, 2, 3]).is_err());
    }

    #[test]
    fn done_roundtrip_with_every_race_kind() {
        let d = Done {
            partial: true,
            total: 42,
            races: RaceKind::ALL
                .iter()
                .enumerate()
                .map(|(i, k)| (i as u32 * 10, *k))
                .collect(),
        };
        assert_eq!(decode_done(&encode_done(&d)).expect("roundtrip"), d);
    }

    #[test]
    fn done_rejects_bad_payloads() {
        let mut good = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![(5, RaceKind::NotStrong)],
        });
        good[0] = 2; // bad partial flag
        assert!(decode_done(&good).is_err());
        let mut bad_kind = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![(5, RaceKind::NotStrong)],
        });
        *bad_kind.last_mut().expect("non-empty") = 99;
        assert!(decode_done(&bad_kind).is_err());
        // Advertised count larger than the payload.
        let mut short = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![],
        });
        short[9] = 200;
        assert!(matches!(
            decode_done(&short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn error_roundtrip_and_unknown_codes() {
        let e = decode_error(&encode_error(
            ErrorCode::DeadlineExceeded,
            "no progress in 2s",
        ))
        .expect("roundtrip");
        assert_eq!(e.code, Some(ErrorCode::DeadlineExceeded));
        assert_eq!(e.message, "no progress in 2s");
        let unknown = decode_error(&[0xFF, 0x7F]).expect("unknown code still decodes");
        assert_eq!(unknown.code, None);
        assert_eq!(unknown.raw_code, 0x7FFF);
        assert!(decode_error(&[1]).is_err());
    }

    #[test]
    fn stream_payloads_roundtrip() {
        let events = vec![TraceEvent::KernelBoundary, TraceEvent::KernelBoundary];
        let payload = encode_stream_events(7, &events);
        let (stream, rest) = split_stream_payload(&payload).expect("split");
        assert_eq!(stream, 7);
        assert_eq!(wire::decode_events(rest).expect("events"), events);

        assert_eq!(
            decode_stream_finish(&encode_stream_finish(u32::MAX)).expect("finish"),
            u32::MAX
        );
        let r = Report {
            unique: 3,
            total: 99,
        };
        assert_eq!(
            decode_stream_report(&encode_stream_report(11, &r)).expect("report"),
            (11, r)
        );
        let d = Done {
            partial: false,
            total: 5,
            races: vec![(0xBEEF, RaceKind::NotStrong)],
        };
        assert_eq!(
            decode_stream_done(&encode_stream_done(12, &d)).expect("done"),
            (12, d)
        );
    }

    #[test]
    fn stream_payloads_reject_malformed() {
        assert!(matches!(
            split_stream_payload(&[1, 2, 3]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing junk after a StreamFinish id is a protocol violation,
        // not ignorable padding.
        assert!(decode_stream_finish(&[1, 0, 0, 0, 9]).is_err());
        // A stream report that is only an id has no Report inside.
        assert!(matches!(
            decode_stream_report(&4u32.to_le_bytes()),
            Err(WireError::Truncated { .. })
        ));
        assert!(decode_stream_done(&4u32.to_le_bytes()).is_err());
    }

    #[test]
    fn error_codes_roundtrip_and_are_unique() {
        let all = [
            ErrorCode::Malformed,
            ErrorCode::BadEvent,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Truncated,
            ErrorCode::Draining,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            assert!(seen.insert(c.code()));
            assert_eq!(ErrorCode::from_code(c.code()), Some(c));
        }
        assert_eq!(ErrorCode::from_code(0), None);
    }
}
