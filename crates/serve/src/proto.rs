//! Server-to-client response payloads.
//!
//! `scord_core::wire` defines framing and the client-to-server event
//! encoding; this module defines what travels *back*: incremental
//! [`Report`]s, the final [`Done`] summary, typed [`ErrorInfo`] responses,
//! and the empty `Busy` payload. Kept in `scord-serve` because only the
//! service and its clients speak these payloads — the core codec stays a
//! pure trace transport.

use scord_core::{RaceKind, WireError};

/// Typed protocol error codes carried in `Error` frames. Every way a
/// connection can be quarantined has a distinct code, so clients (and the
/// adversarial suite) can assert on the *reason*, not just the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The stream violated the wire format (bad magic/version/CRC/frame).
    Malformed,
    /// An event payload decoded but named an impossible event (reserved
    /// bits, unknown tag) or the detector rejected it (e.g. SM out of
    /// range for the service's geometry).
    BadEvent,
    /// The connection made no progress within its deadline and was reaped.
    DeadlineExceeded,
    /// The client disconnected mid-frame (truncated stream).
    Truncated,
    /// The server is draining and will not accept further events.
    Draining,
}

impl ErrorCode {
    /// The on-wire code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::BadEvent => 2,
            ErrorCode::DeadlineExceeded => 3,
            ErrorCode::Truncated => 4,
            ErrorCode::Draining => 5,
        }
    }

    /// Decodes an on-wire code.
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadEvent,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::Truncated,
            5 => ErrorCode::Draining,
            _ => return None,
        })
    }

    /// Stable short name for logs and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadEvent => "bad-event",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Truncated => "truncated",
            ErrorCode::Draining => "draining",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An incremental race report: counters only (the full unique list rides
/// in the final [`Done`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Unique `(pc, kind)` races so far.
    pub unique: u32,
    /// Total race records so far.
    pub total: u64,
}

/// The final (or drain-time partial) summary for a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Done {
    /// `true` when the server drained before the client finished; the
    /// report covers only the events ingested so far.
    pub partial: bool,
    /// Total race records.
    pub total: u64,
    /// Every unique `(pc, kind)` race.
    pub races: Vec<(u32, RaceKind)>,
}

/// A decoded `Error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInfo {
    /// The typed reason, when this build knows the code.
    pub code: Option<ErrorCode>,
    /// The raw on-wire code (kept so skew between builds stays debuggable).
    pub raw_code: u16,
    /// Human-readable detail.
    pub message: String,
}

fn kind_code(kind: RaceKind) -> u8 {
    RaceKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("RaceKind::ALL is exhaustive") as u8
}

fn kind_from_code(code: u8) -> Result<RaceKind, WireError> {
    RaceKind::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::BadEvent {
            word: 0,
            reason: "unassigned race-kind code",
        })
}

fn need(payload: &[u8], n: usize) -> Result<(), WireError> {
    if payload.len() < n {
        return Err(WireError::Truncated {
            need: n,
            have: payload.len(),
        });
    }
    Ok(())
}

fn u32_at(payload: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(payload[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_at(payload: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(payload[at..at + 8].try_into().expect("bounds checked"))
}

/// Encodes a [`Report`] payload.
#[must_use]
pub fn encode_report(r: &Report) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&r.unique.to_le_bytes());
    out.extend_from_slice(&r.total.to_le_bytes());
    out
}

/// Decodes a [`Report`] payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload.
pub fn decode_report(payload: &[u8]) -> Result<Report, WireError> {
    need(payload, 12)?;
    Ok(Report {
        unique: u32_at(payload, 0),
        total: u64_at(payload, 4),
    })
}

/// Encodes a [`Done`] payload.
#[must_use]
pub fn encode_done(d: &Done) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + d.races.len() * 5);
    out.push(u8::from(d.partial));
    out.extend_from_slice(&d.total.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(d.races.len())
            .expect("unique race count fits u32")
            .to_le_bytes(),
    );
    for &(pc, kind) in &d.races {
        out.extend_from_slice(&pc.to_le_bytes());
        out.push(kind_code(kind));
    }
    out
}

/// Decodes a [`Done`] payload.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short payload, [`WireError::BadEvent`]
/// for an unassigned race-kind code or a non-boolean partial flag.
pub fn decode_done(payload: &[u8]) -> Result<Done, WireError> {
    need(payload, 13)?;
    if payload[0] > 1 {
        return Err(WireError::BadEvent {
            word: 0,
            reason: "partial flag is not 0 or 1",
        });
    }
    let total = u64_at(payload, 1);
    let n = u32_at(payload, 9) as usize;
    need(payload, 13 + n * 5)?;
    let mut races = Vec::with_capacity(n);
    for i in 0..n {
        let at = 13 + i * 5;
        races.push((u32_at(payload, at), kind_from_code(payload[at + 4])?));
    }
    Ok(Done {
        partial: payload[0] == 1,
        total,
        races,
    })
}

/// Encodes an `Error` payload.
#[must_use]
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&code.code().to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an `Error` payload.
///
/// # Errors
///
/// [`WireError::Truncated`] when even the code is missing.
pub fn decode_error(payload: &[u8]) -> Result<ErrorInfo, WireError> {
    need(payload, 2)?;
    let raw = u16::from_le_bytes(payload[..2].try_into().expect("bounds checked"));
    Ok(ErrorInfo {
        code: ErrorCode::from_code(raw),
        raw_code: raw,
        message: String::from_utf8_lossy(&payload[2..]).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let r = Report {
            unique: 17,
            total: 123_456_789_000,
        };
        assert_eq!(decode_report(&encode_report(&r)).expect("roundtrip"), r);
        assert!(decode_report(&[1, 2, 3]).is_err());
    }

    #[test]
    fn done_roundtrip_with_every_race_kind() {
        let d = Done {
            partial: true,
            total: 42,
            races: RaceKind::ALL
                .iter()
                .enumerate()
                .map(|(i, k)| (i as u32 * 10, *k))
                .collect(),
        };
        assert_eq!(decode_done(&encode_done(&d)).expect("roundtrip"), d);
    }

    #[test]
    fn done_rejects_bad_payloads() {
        let mut good = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![(5, RaceKind::NotStrong)],
        });
        good[0] = 2; // bad partial flag
        assert!(decode_done(&good).is_err());
        let mut bad_kind = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![(5, RaceKind::NotStrong)],
        });
        *bad_kind.last_mut().expect("non-empty") = 99;
        assert!(decode_done(&bad_kind).is_err());
        // Advertised count larger than the payload.
        let mut short = encode_done(&Done {
            partial: false,
            total: 1,
            races: vec![],
        });
        short[9] = 200;
        assert!(matches!(
            decode_done(&short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn error_roundtrip_and_unknown_codes() {
        let e = decode_error(&encode_error(
            ErrorCode::DeadlineExceeded,
            "no progress in 2s",
        ))
        .expect("roundtrip");
        assert_eq!(e.code, Some(ErrorCode::DeadlineExceeded));
        assert_eq!(e.message, "no progress in 2s");
        let unknown = decode_error(&[0xFF, 0x7F]).expect("unknown code still decodes");
        assert_eq!(unknown.code, None);
        assert_eq!(unknown.raw_code, 0x7FFF);
        assert!(decode_error(&[1]).is_err());
    }

    #[test]
    fn error_codes_roundtrip_and_are_unique() {
        let all = [
            ErrorCode::Malformed,
            ErrorCode::BadEvent,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Truncated,
            ErrorCode::Draining,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            assert!(seen.insert(c.code()));
            assert_eq!(ErrorCode::from_code(c.code()), Some(c));
        }
        assert_eq!(ErrorCode::from_code(0), None);
    }
}
