//! Client side of the race-detection service.
//!
//! [`Client`] speaks the `scord_core::wire` stream format over TCP and
//! decodes the typed responses of [`crate::proto`]. It is deliberately
//! low-level (send events, send raw bytes, read an outcome) so the
//! adversarial suite can drive half-open, malformed and slow streams
//! with the same type the load generator uses for healthy ones.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use scord_core::wire::{self, FrameAssembler, FrameType, WireError};
use scord_core::{Trace, TraceEvent};

use crate::proto::{self, Done, ErrorInfo, Report};

/// How the server ended a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The stream was detected to completion (or flushed partially on
    /// drain — check [`Done::partial`]).
    Done(Done),
    /// The server is over its overload watermark; retry later.
    Busy,
    /// The server quarantined the connection with a typed error.
    ServerError(ErrorInfo),
}

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket I/O failed (kind + rendered message; `std::io::Error` is
    /// kept out so the error stays `Clone + Eq` for test assertions).
    Io(std::io::ErrorKind, String),
    /// The server's response stream violated the wire format.
    Wire(WireError),
    /// The server closed the connection without a final frame.
    ConnectionClosed,
    /// The server sent a frame type that makes no sense client-side.
    UnexpectedFrame(FrameType),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(kind, msg) => write!(f, "socket error ({kind:?}): {msg}"),
            ClientError::Wire(err) => write!(f, "response stream violated the wire format: {err}"),
            ClientError::ConnectionClosed => {
                f.write_str("server closed the connection without a final frame")
            }
            ClientError::UnexpectedFrame(t) => write!(f, "unexpected frame from server: {t:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.kind(), e.to_string())
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// How a persistent session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The server closed cleanly after sending a `StreamDone` for every
    /// stream still open, listed here in stream-id order.
    Closed(Vec<(u32, Done)>),
    /// The server is over its overload watermark; retry later.
    Busy,
    /// The server quarantined the connection with a typed error.
    ServerError(ErrorInfo),
}

/// What one session frame from the server meant (internal).
enum SessionFrame {
    /// A `StreamDone` for the given stream id.
    Done(u32, Done),
    /// The session is over (`Error` or `Busy`).
    Terminal(Outcome),
    /// A report was recorded; keep reading.
    Progress,
}

/// A connection to the service. The stream header is sent on connect.
///
/// One `Client` can drive either the legacy one-trace protocol
/// ([`send_events`](Self::send_events) … [`finish`](Self::finish)) or a
/// persistent *session* carrying many traces over one connection
/// ([`send_stream_events`](Self::send_stream_events) …
/// [`finish_stream`](Self::finish_stream) …
/// [`end_session`](Self::end_session)); the server fixes the dialect by
/// the first frame it sees, so don't mix the two.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    asm: FrameAssembler,
    reports: Vec<Report>,
    stream_reports: HashMap<u32, Vec<Report>>,
    pending_dones: HashMap<u32, Done>,
}

impl Client {
    /// Connects and sends the versioned stream header.
    ///
    /// # Errors
    ///
    /// Any socket error from connect or the header write.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            asm: FrameAssembler::headerless(),
            reports: Vec::new(),
            stream_reports: HashMap::new(),
            pending_dones: HashMap::new(),
        };
        let mut header = Vec::with_capacity(wire::HEADER_BYTES);
        wire::encode_header(&mut header);
        client.stream.write_all(&header)?;
        Ok(client)
    }

    /// Bounds how long [`finish`](Self::finish) waits for each response
    /// read (so a wedged server fails a test instead of hanging it).
    ///
    /// # Errors
    ///
    /// Any socket error from setting the timeout.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Sends one `Events` frame.
    ///
    /// # Errors
    ///
    /// Any socket error from the write.
    pub fn send_events(&mut self, events: &[TraceEvent]) -> Result<(), ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(FrameType::Events, &wire::encode_events(events), &mut frame);
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Sends a whole trace as `Events` frames of `events_per_frame`.
    ///
    /// # Errors
    ///
    /// Any socket error from the writes.
    pub fn send_trace(
        &mut self,
        trace: &Trace,
        events_per_frame: usize,
    ) -> Result<(), ClientError> {
        for batch in trace.events().chunks(events_per_frame.max(1)) {
            self.send_events(batch)?;
        }
        Ok(())
    }

    /// Sends raw bytes — the adversarial hook for malformed streams.
    ///
    /// # Errors
    ///
    /// Any socket error from the write.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Incremental reports received so far (populated by
    /// [`finish`](Self::finish) / [`read_outcome`](Self::read_outcome)).
    #[must_use]
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Sends `Finish` and reads responses until the stream's outcome.
    /// Incremental reports remain available via [`reports`](Self::reports).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn finish(&mut self) -> Result<Outcome, ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(FrameType::Finish, &[], &mut frame);
        self.stream.write_all(&frame)?;
        self.read_outcome()
    }

    /// Reads responses until a terminal frame (`Done`, `Error` or `Busy`)
    /// without sending anything — used after raw/adversarial writes.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_outcome(&mut self) -> Result<Outcome, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            while let Some(frame) = self.asm.next_frame()? {
                match frame.ftype {
                    FrameType::Report => self.reports.push(proto::decode_report(&frame.payload)?),
                    FrameType::Done => {
                        return Ok(Outcome::Done(proto::decode_done(&frame.payload)?));
                    }
                    FrameType::Error => {
                        return Ok(Outcome::ServerError(proto::decode_error(&frame.payload)?));
                    }
                    FrameType::Busy => return Ok(Outcome::Busy),
                    other => return Err(ClientError::UnexpectedFrame(other)),
                }
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::ConnectionClosed);
            }
            self.asm.push(&buf[..n]);
        }
    }

    // -- persistent sessions -----------------------------------------------

    /// Sends one `StreamEvents` frame for stream `stream`. Stream ids
    /// must be opened in strictly increasing order (interleaving frames
    /// of already-open streams is fine).
    ///
    /// # Errors
    ///
    /// Any socket error from the write.
    pub fn send_stream_events(
        &mut self,
        stream: u32,
        events: &[TraceEvent],
    ) -> Result<(), ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(
            FrameType::StreamEvents,
            &proto::encode_stream_events(stream, events),
            &mut frame,
        );
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Sends a whole trace on stream `stream` as `StreamEvents` frames
    /// of `events_per_frame`.
    ///
    /// # Errors
    ///
    /// Any socket error from the writes.
    pub fn send_stream_trace(
        &mut self,
        stream: u32,
        trace: &Trace,
        events_per_frame: usize,
    ) -> Result<(), ClientError> {
        for batch in trace.events().chunks(events_per_frame.max(1)) {
            self.send_stream_events(stream, batch)?;
        }
        Ok(())
    }

    /// Incremental reports received so far for one session stream.
    #[must_use]
    pub fn stream_reports(&self, stream: u32) -> &[Report] {
        self.stream_reports.get(&stream).map_or(&[], Vec::as_slice)
    }

    /// Sends `StreamFinish` for `stream` and reads until that stream's
    /// `StreamDone` (or a session-terminal `Error`/`Busy`). `StreamDone`s
    /// for *other* streams that arrive first are buffered and returned by
    /// their own `finish_stream` call, so interleaved streams can finish
    /// in any order. The connection stays open for further streams.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn finish_stream(&mut self, stream: u32) -> Result<Outcome, ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(
            FrameType::StreamFinish,
            &proto::encode_stream_finish(stream),
            &mut frame,
        );
        self.stream.write_all(&frame)?;
        if let Some(done) = self.pending_dones.remove(&stream) {
            return Ok(Outcome::Done(done));
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            while let Some(frame) = self.asm.next_frame()? {
                match Self::classify_session_frame(&mut self.stream_reports, frame)? {
                    SessionFrame::Done(id, done) => {
                        if id == stream {
                            return Ok(Outcome::Done(done));
                        }
                        self.pending_dones.insert(id, done);
                    }
                    SessionFrame::Terminal(outcome) => return Ok(outcome),
                    SessionFrame::Progress => {}
                }
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::ConnectionClosed);
            }
            self.asm.push(&buf[..n]);
        }
    }

    /// Ends the session: sends a connection-level `Finish` and reads until
    /// the server closes. Streams still open are finalized server-side;
    /// their `Done`s (plus any already buffered) are returned in
    /// stream-id order.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]. EOF after `Finish` is the *normal* clean end,
    /// not an error.
    pub fn end_session(&mut self) -> Result<SessionEnd, ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(FrameType::Finish, &[], &mut frame);
        self.stream.write_all(&frame)?;
        let mut dones: Vec<(u32, Done)> = self.pending_dones.drain().collect();
        let mut buf = [0u8; 16 * 1024];
        'read: loop {
            while let Some(frame) = self.asm.next_frame()? {
                match Self::classify_session_frame(&mut self.stream_reports, frame)? {
                    SessionFrame::Done(id, done) => dones.push((id, done)),
                    SessionFrame::Terminal(Outcome::Busy) => return Ok(SessionEnd::Busy),
                    SessionFrame::Terminal(Outcome::ServerError(info)) => {
                        return Ok(SessionEnd::ServerError(info));
                    }
                    SessionFrame::Terminal(Outcome::Done(_)) | SessionFrame::Progress => {}
                }
            }
            match self.stream.read(&mut buf) {
                Ok(0) => break 'read,
                Ok(n) => self.asm.push(&buf[..n]),
                Err(e) => return Err(e.into()),
            }
        }
        dones.sort_by_key(|(id, _)| *id);
        Ok(SessionEnd::Closed(dones))
    }

    /// Decodes one server→client session frame, recording reports.
    fn classify_session_frame(
        stream_reports: &mut HashMap<u32, Vec<Report>>,
        frame: wire::Frame,
    ) -> Result<SessionFrame, ClientError> {
        match frame.ftype {
            FrameType::StreamReport => {
                let (id, report) = proto::decode_stream_report(&frame.payload)?;
                stream_reports.entry(id).or_default().push(report);
                Ok(SessionFrame::Progress)
            }
            FrameType::StreamDone => {
                let (id, done) = proto::decode_stream_done(&frame.payload)?;
                Ok(SessionFrame::Done(id, done))
            }
            FrameType::Error => Ok(SessionFrame::Terminal(Outcome::ServerError(
                proto::decode_error(&frame.payload)?,
            ))),
            FrameType::Busy => Ok(SessionFrame::Terminal(Outcome::Busy)),
            other => Err(ClientError::UnexpectedFrame(other)),
        }
    }
}

/// Convenience: stream `trace` to `addr` and return the outcome.
///
/// # Errors
///
/// See [`ClientError`].
pub fn detect_remote<A: ToSocketAddrs>(
    addr: A,
    trace: &Trace,
    events_per_frame: usize,
) -> Result<Outcome, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Duration::from_secs(30))?;
    client.send_trace(trace, events_per_frame)?;
    client.finish()
}

/// Convenience: stream every trace over **one** persistent session
/// (stream id = index) and return each trace's outcome in order. Stops
/// early on a session-terminal `Busy`/`Error`, returning what resolved
/// so far plus that terminal outcome.
///
/// # Errors
///
/// See [`ClientError`].
pub fn detect_session<A: ToSocketAddrs>(
    addr: A,
    traces: &[Trace],
    events_per_frame: usize,
) -> Result<Vec<Outcome>, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Duration::from_secs(30))?;
    let mut outcomes = Vec::with_capacity(traces.len());
    for (i, trace) in traces.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(u32::MAX);
        client.send_stream_trace(id, trace, events_per_frame)?;
        let outcome = client.finish_stream(id)?;
        let terminal = !matches!(outcome, Outcome::Done(_));
        outcomes.push(outcome);
        if terminal {
            return Ok(outcomes);
        }
    }
    client.end_session()?;
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_error_display_is_informative() {
        let e = ClientError::Io(std::io::ErrorKind::BrokenPipe, "pipe".into());
        assert!(e.to_string().contains("BrokenPipe"));
        assert!(ClientError::ConnectionClosed
            .to_string()
            .contains("final frame"));
        let w: ClientError = WireError::BadFrameType { ftype: 9 }.into();
        assert!(w.to_string().contains("wire format"));
    }
}
