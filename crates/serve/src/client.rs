//! Client side of the race-detection service.
//!
//! [`Client`] speaks the `scord_core::wire` stream format over TCP and
//! decodes the typed responses of [`crate::proto`]. It is deliberately
//! low-level (send events, send raw bytes, read an outcome) so the
//! adversarial suite can drive half-open, malformed and slow streams
//! with the same type the load generator uses for healthy ones.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use scord_core::wire::{self, FrameAssembler, FrameType, WireError};
use scord_core::{Trace, TraceEvent};

use crate::proto::{self, Done, ErrorInfo, Report};

/// How the server ended a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The stream was detected to completion (or flushed partially on
    /// drain — check [`Done::partial`]).
    Done(Done),
    /// The server is over its overload watermark; retry later.
    Busy,
    /// The server quarantined the connection with a typed error.
    ServerError(ErrorInfo),
}

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket I/O failed (kind + rendered message; `std::io::Error` is
    /// kept out so the error stays `Clone + Eq` for test assertions).
    Io(std::io::ErrorKind, String),
    /// The server's response stream violated the wire format.
    Wire(WireError),
    /// The server closed the connection without a final frame.
    ConnectionClosed,
    /// The server sent a frame type that makes no sense client-side.
    UnexpectedFrame(FrameType),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(kind, msg) => write!(f, "socket error ({kind:?}): {msg}"),
            ClientError::Wire(err) => write!(f, "response stream violated the wire format: {err}"),
            ClientError::ConnectionClosed => {
                f.write_str("server closed the connection without a final frame")
            }
            ClientError::UnexpectedFrame(t) => write!(f, "unexpected frame from server: {t:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.kind(), e.to_string())
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connection to the service. The stream header is sent on connect.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    asm: FrameAssembler,
    reports: Vec<Report>,
}

impl Client {
    /// Connects and sends the versioned stream header.
    ///
    /// # Errors
    ///
    /// Any socket error from connect or the header write.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            asm: FrameAssembler::headerless(),
            reports: Vec::new(),
        };
        let mut header = Vec::with_capacity(wire::HEADER_BYTES);
        wire::encode_header(&mut header);
        client.stream.write_all(&header)?;
        Ok(client)
    }

    /// Bounds how long [`finish`](Self::finish) waits for each response
    /// read (so a wedged server fails a test instead of hanging it).
    ///
    /// # Errors
    ///
    /// Any socket error from setting the timeout.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Sends one `Events` frame.
    ///
    /// # Errors
    ///
    /// Any socket error from the write.
    pub fn send_events(&mut self, events: &[TraceEvent]) -> Result<(), ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(FrameType::Events, &wire::encode_events(events), &mut frame);
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Sends a whole trace as `Events` frames of `events_per_frame`.
    ///
    /// # Errors
    ///
    /// Any socket error from the writes.
    pub fn send_trace(
        &mut self,
        trace: &Trace,
        events_per_frame: usize,
    ) -> Result<(), ClientError> {
        for batch in trace.events().chunks(events_per_frame.max(1)) {
            self.send_events(batch)?;
        }
        Ok(())
    }

    /// Sends raw bytes — the adversarial hook for malformed streams.
    ///
    /// # Errors
    ///
    /// Any socket error from the write.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Incremental reports received so far (populated by
    /// [`finish`](Self::finish) / [`read_outcome`](Self::read_outcome)).
    #[must_use]
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Sends `Finish` and reads responses until the stream's outcome.
    /// Incremental reports remain available via [`reports`](Self::reports).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn finish(&mut self) -> Result<Outcome, ClientError> {
        let mut frame = Vec::new();
        wire::encode_frame(FrameType::Finish, &[], &mut frame);
        self.stream.write_all(&frame)?;
        self.read_outcome()
    }

    /// Reads responses until a terminal frame (`Done`, `Error` or `Busy`)
    /// without sending anything — used after raw/adversarial writes.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_outcome(&mut self) -> Result<Outcome, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            while let Some(frame) = self.asm.next_frame()? {
                match frame.ftype {
                    FrameType::Report => self.reports.push(proto::decode_report(&frame.payload)?),
                    FrameType::Done => {
                        return Ok(Outcome::Done(proto::decode_done(&frame.payload)?));
                    }
                    FrameType::Error => {
                        return Ok(Outcome::ServerError(proto::decode_error(&frame.payload)?));
                    }
                    FrameType::Busy => return Ok(Outcome::Busy),
                    other => return Err(ClientError::UnexpectedFrame(other)),
                }
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::ConnectionClosed);
            }
            self.asm.push(&buf[..n]);
        }
    }
}

/// Convenience: stream `trace` to `addr` and return the outcome.
///
/// # Errors
///
/// See [`ClientError`].
pub fn detect_remote<A: ToSocketAddrs>(
    addr: A,
    trace: &Trace,
    events_per_frame: usize,
) -> Result<Outcome, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Duration::from_secs(30))?;
    client.send_trace(trace, events_per_frame)?;
    client.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_error_display_is_informative() {
        let e = ClientError::Io(std::io::ErrorKind::BrokenPipe, "pipe".into());
        assert!(e.to_string().contains("BrokenPipe"));
        assert!(ClientError::ConnectionClosed
            .to_string()
            .contains("final frame"));
        let w: ClientError = WireError::BadFrameType { ftype: 9 }.into();
        assert!(w.to_string().contains("wire format"));
    }
}
