//! Steady-state barriers must not allocate: the pool exists to be called
//! once per simulated cycle, so any per-barrier allocation would show up
//! as millions of allocations per simulated second.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use scord_pool::WorkerPool;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn ten_thousand_barriers_without_allocation_growth() {
    let pool = WorkerPool::new(4);
    let work = AtomicU64::new(0);
    let barrier = |pool: &WorkerPool| {
        pool.run(8, |i| {
            work.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
    };
    // Warm-up: thread spawning, lazy lock/TLS initialisation, and the
    // first condvar parks are allowed to allocate.
    for _ in 0..100 {
        barrier(&pool);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        barrier(&pool);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(work.load(Ordering::Relaxed), 36 * 10_100);
    assert_eq!(
        after - before,
        0,
        "10k barriers grew the allocation count by {}",
        after - before
    );
}
