//! Fixture-tree tests for `scord_pool::topology`: builds fake sysfs
//! layouts on disk and asserts the physical-core-first ordering and every
//! fallback path, without depending on the host's real topology.

use std::path::{Path, PathBuf};

use scord_pool::{set_pin_workers, CpuTopology, WorkerPool};

/// A throwaway fixture directory, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("scord-topo-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Adds `cpuN` with the given topology files (`None` = omit the file).
    fn cpu(&self, n: usize, package: Option<i64>, core: Option<i64>, siblings: Option<&str>) {
        let topo = self.root.join(format!("cpu{n}")).join("topology");
        std::fs::create_dir_all(&topo).expect("create topology dir");
        let write = |file: &str, val: String| {
            std::fs::write(topo.join(file), val).expect("write fixture file");
        };
        if let Some(p) = package {
            write("package_id", format!("{p}\n"));
        }
        if let Some(c) = core {
            write("core_id", format!("{c}\n"));
        }
        if let Some(s) = siblings {
            write("thread_siblings_list", format!("{s}\n"));
        }
    }

    /// Adds a bare `cpuN` directory with no `topology/` subtree at all.
    fn bare_cpu(&self, n: usize) {
        std::fs::create_dir_all(self.root.join(format!("cpu{n}"))).expect("create bare cpu dir");
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn smt_pairs_order_physical_cores_first() {
    // Classic 2-core/4-thread SMT layout with adjacent sibling numbering:
    // cpus 0,1 share core 0; cpus 2,3 share core 1.
    let fx = Fixture::new("smt-pairs");
    fx.cpu(0, Some(0), Some(0), Some("0-1"));
    fx.cpu(1, Some(0), Some(0), Some("0-1"));
    fx.cpu(2, Some(0), Some(1), Some("2-3"));
    fx.cpu(3, Some(0), Some(1), Some("2-3"));
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_cpus(), 4);
    assert_eq!(topo.num_physical_cores(), 2);
    assert_eq!(topo.physical_first_order(), vec![0, 2, 1, 3]);
}

#[test]
fn smt_with_split_numbering_orders_physical_cores_first() {
    // The other common SMT numbering: siblings are (0,4), (1,5), ... —
    // low CPUs are already one-per-core, siblings come after.
    let fx = Fixture::new("smt-split");
    for core in 0..4usize {
        fx.cpu(
            core,
            Some(0),
            Some(core as i64),
            Some(&format!("{core},{}", core + 4)),
        );
        fx.cpu(
            core + 4,
            Some(0),
            Some(core as i64),
            Some(&format!("{core},{}", core + 4)),
        );
    }
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_physical_cores(), 4);
    assert_eq!(topo.physical_first_order(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn multi_package_groups_by_package_then_core() {
    // Two packages, two single-thread cores each; core_ids repeat across
    // packages (they do on real two-socket hosts).
    let fx = Fixture::new("multi-package");
    fx.cpu(0, Some(0), Some(0), Some("0"));
    fx.cpu(1, Some(0), Some(1), Some("1"));
    fx.cpu(2, Some(1), Some(0), Some("2"));
    fx.cpu(3, Some(1), Some(1), Some("3"));
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_physical_cores(), 4, "core ids are per-package");
    assert_eq!(topo.physical_first_order(), vec![0, 1, 2, 3]);
}

#[test]
fn hybrid_p_and_e_cores_interleave_naturally() {
    // Hybrid client part: two SMT P-cores (cpus 0-3) plus two
    // single-thread E-cores (cpus 4,5). Physical-first order hands out
    // one CPU per core — P and E alike — before any SMT sibling.
    let fx = Fixture::new("hybrid");
    fx.cpu(0, Some(0), Some(0), Some("0-1"));
    fx.cpu(1, Some(0), Some(0), Some("0-1"));
    fx.cpu(2, Some(0), Some(4), Some("2-3"));
    fx.cpu(3, Some(0), Some(4), Some("2-3"));
    fx.cpu(4, Some(0), Some(8), Some("4"));
    fx.cpu(5, Some(0), Some(9), Some("5"));
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_cpus(), 6);
    assert_eq!(topo.num_physical_cores(), 4);
    assert_eq!(topo.physical_first_order(), vec![0, 2, 4, 5, 1, 3]);
}

#[test]
fn missing_core_id_falls_back_to_sibling_list() {
    // core_id absent but thread_siblings_list present: the sibling set
    // still identifies the physical core (keyed by its smallest member).
    let fx = Fixture::new("no-core-id");
    fx.cpu(0, Some(0), None, Some("0-1"));
    fx.cpu(1, Some(0), None, Some("0-1"));
    fx.cpu(2, Some(0), None, Some("2-3"));
    fx.cpu(3, Some(0), None, Some("2-3"));
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_physical_cores(), 2);
    assert_eq!(topo.physical_first_order(), vec![0, 2, 1, 3]);
}

#[test]
fn missing_topology_files_treat_each_cpu_as_its_own_core() {
    // No topology/ subtree at all: each CPU is conservatively its own
    // physical core, so pinning still spreads workers out.
    let fx = Fixture::new("bare");
    for n in 0..3 {
        fx.bare_cpu(n);
    }
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("bare cpus still parse");
    assert_eq!(topo.num_cpus(), 3);
    assert_eq!(topo.num_physical_cores(), 3);
    assert_eq!(topo.physical_first_order(), vec![0, 1, 2]);
}

#[test]
fn mixed_known_and_unknown_cpus_keep_known_grouping() {
    let fx = Fixture::new("mixed");
    fx.cpu(0, Some(0), Some(0), Some("0-1"));
    fx.cpu(1, Some(0), Some(0), Some("0-1"));
    fx.bare_cpu(2);
    let topo = CpuTopology::from_sysfs_root(fx.path()).expect("fixture parses");
    assert_eq!(topo.num_physical_cores(), 2);
    // Unknown-topology CPUs sort after real packages (synthetic key).
    assert_eq!(topo.physical_first_order(), vec![0, 2, 1]);
}

#[test]
fn no_cpu_dirs_means_no_topology() {
    let fx = Fixture::new("empty");
    std::fs::write(fx.path().join("online"), "0-7\n").expect("write stray file");
    assert!(
        CpuTopology::from_sysfs_root(fx.path()).is_none(),
        "a root without cpuN dirs must report no topology"
    );
    assert!(
        CpuTopology::from_sysfs_root(&fx.path().join("does-not-exist")).is_none(),
        "a missing root must report no topology"
    );
}

#[test]
fn pool_pins_only_when_enabled_and_stays_correct() {
    // The pinning toggle must not change pool semantics: every index runs
    // exactly once either way, and disabling restores unpinned pools.
    // (Runs against the real host topology; on hosts without sysfs the
    // pinned list is simply empty, which is the documented fallback.)
    set_pin_workers(true);
    let pinned_pool = WorkerPool::new(2);
    set_pin_workers(false);
    let plain_pool = WorkerPool::new(2);
    assert!(
        plain_pool.pinned_cpus().is_empty(),
        "toggle off ⇒ no pin targets"
    );
    for pool in [&pinned_pool, &plain_pool] {
        let mut slots = vec![0u32; 64];
        pool.for_each_mut(&mut slots, |i, s| *s = i as u32 + 1);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, i as u32 + 1);
        }
    }
    if let Some(order) = CpuTopology::detect().map(|t| t.physical_first_order()) {
        if order.len() >= 2 {
            assert_eq!(pinned_pool.pinned_cpus(), &[order[1]]);
        }
    }
}
