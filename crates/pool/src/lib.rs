//! A persistent, barrier-style worker pool.
//!
//! The pool exists for one workload shape: a caller that needs to fan the
//! *same* small closure out over N independent slots, thousands of times a
//! second, with a hard barrier after every fan-out. The GPU simulator's
//! parallel SM stage does this once per simulated cycle; the experiment
//! harness does it once per sweep. Spawning scoped threads per call (what
//! `scord-harness` did before this crate existed) costs tens of
//! microseconds per barrier — more than an entire simulated cycle — so the
//! pool keeps its workers alive across calls and hands them work through a
//! generation counter.
//!
//! Guarantees:
//!
//! - [`WorkerPool::run`] returns only after every task index in
//!   `0..tasks` has been executed exactly once **and** every worker has
//!   quiesced (no worker still holds a reference to the closure).
//! - Task indices are claimed through an atomic cursor, so any worker may
//!   run any index; callers that need determinism must make each task's
//!   effect a pure function of its index (the simulator writes into
//!   per-index slots, which is why parallel results are byte-identical to
//!   serial ones).
//! - A panic inside a task poisons the current barrier (remaining indices
//!   may be skipped), is carried across the barrier, and re-raised on the
//!   caller's thread with the original payload.
//! - Steady-state barriers allocate nothing (asserted by the
//!   `alloc_growth` integration test).
//!
//! The crate also hosts [`BoundedQueue`], the blocking bounded hand-off
//! queue `scord-serve` uses between connection readers and detector shard
//! workers (a different workload shape: long-lived streams rather than
//! per-cycle barriers).

mod queue;
pub mod topology;

pub use queue::{BoundedQueue, Pop};
pub use topology::{parse_cpu_list, pin_current_thread, CpuDesc, CpuTopology};

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Process-wide toggle for topology-aware worker pinning, sampled once by
/// every [`WorkerPool::new`]. Off by default: pinning helps long-lived
/// simulation pools but is wrong for short-lived or oversubscribed pools,
/// so callers opt in (the harness's `--pin` flag and the perf basket's
/// pinned-vs-unpinned A/B do).
static PIN_WORKERS: AtomicBool = AtomicBool::new(false);

/// Enables or disables topology-aware pinning for pools created *after*
/// this call. Existing pools are unaffected.
pub fn set_pin_workers(enabled: bool) {
    PIN_WORKERS.store(enabled, Ordering::SeqCst);
}

/// Current state of the process-wide pinning toggle.
#[must_use]
pub fn pin_workers_enabled() -> bool {
    PIN_WORKERS.load(Ordering::SeqCst)
}

/// Iterations a thread spins on the generation / done counters before it
/// parks on a condvar. High enough that back-to-back per-cycle barriers
/// never park; low enough that an idle pool costs no measurable CPU after
/// a few microseconds.
const SPIN_LIMIT: u32 = 4_096;

/// Yield-based backoff budget used instead of [`SPIN_LIMIT`] when the pool
/// is oversubscribed (more lanes than hardware threads). Spinning there is
/// actively harmful: the value being polled can only change once the OS
/// schedules the thread that writes it, so every spin iteration burns the
/// exact core that thread needs. `yield_now` hands the core over after a
/// couple of polls; parking follows quickly because long waits on an
/// oversubscribed host are the common case, not the exception.
const YIELD_LIMIT: u32 = 64;

/// Type-erased fan-out closure for the current generation. Only valid
/// between a generation bump and the completion of that generation's
/// barrier; `run` blocks until all workers quiesce, so the erased lifetime
/// never actually escapes the borrow it came from.
type ErasedTask = *const (dyn Fn(usize) + Sync);

struct Job {
    f: Option<ErasedTask>,
    tasks: usize,
}

struct Shared {
    /// Written by `run` before the generation bump, read by workers after
    /// observing the bump; the SeqCst generation handshake orders the two.
    job: UnsafeCell<Job>,
    generation: AtomicUsize,
    cursor: AtomicUsize,
    /// Workers that have exhausted the cursor for the current generation.
    done: AtomicUsize,
    /// Set when a task panics: remaining claims return early so the
    /// barrier completes promptly.
    poisoned: AtomicBool,
    /// First panic payload of the generation, re-raised by `run`.
    panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    shutdown: AtomicBool,
    /// Workers currently parked on `work_cv` (Dekker-style handshake with
    /// the generation bump; see `run`).
    parked: AtomicUsize,
    /// Set while the caller is parked on `done_cv`.
    caller_waiting: AtomicBool,
    /// True when the pool's lane count exceeds the host's available
    /// parallelism; switches both wait loops from spin-then-park to
    /// yield-then-park (see [`YIELD_LIMIT`]).
    oversubscribed: bool,
    lock: Mutex<()>,
    work_cv: Condvar,
    done_cv: Condvar,
}

// SAFETY: `job` is only written by the single active caller before a
// generation bump and only read by workers after observing that bump; the
// barrier in `run` prevents overlap between a write and any read.
unsafe impl Sync for Shared {}
// SAFETY: the erased pointer targets a `Sync` closure; `Send`ing the
// `Arc<Shared>` to workers moves only the pointer, never the closure.
unsafe impl Send for Shared {}

impl Shared {
    /// Claims and runs task indices until the cursor is exhausted or the
    /// generation is poisoned.
    fn run_tasks(&self, f: &(dyn Fn(usize) + Sync), tasks: usize) {
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return;
            }
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                return;
            }
            f(i);
        }
    }

    /// One step of busy-wait backoff: spin (plenty of cores) or yield
    /// (oversubscribed). Returns `false` once the budget is exhausted and
    /// the waiter should park on a condvar instead.
    fn backoff(&self, spins: &mut u32) -> bool {
        *spins += 1;
        if self.oversubscribed {
            if *spins >= YIELD_LIMIT {
                return false;
            }
            std::thread::yield_now();
        } else {
            if *spins >= SPIN_LIMIT {
                return false;
            }
            std::hint::spin_loop();
        }
        true
    }

    /// Records a task panic (first payload wins) and poisons the barrier.
    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self
            .panic_box
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::Release);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0usize;
    'generations: loop {
        // Wait for a new generation (or shutdown): spin first, then park.
        let mut spins = 0u32;
        loop {
            let g = shared.generation.load(Ordering::SeqCst);
            if g != seen {
                seen = g;
                break;
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !shared.backoff(&mut spins) {
                let mut guard = shared
                    .lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                shared.parked.fetch_add(1, Ordering::SeqCst);
                loop {
                    if shared.generation.load(Ordering::SeqCst) != seen
                        || shared.shutdown.load(Ordering::SeqCst)
                    {
                        break;
                    }
                    guard = shared
                        .work_cv
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                shared.parked.fetch_sub(1, Ordering::SeqCst);
                spins = 0;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // SAFETY: the generation bump happens-after the job write (both
        // SeqCst), and the caller cannot start the next write until this
        // worker bumps `done` below.
        let (f, tasks) = unsafe {
            let job = &*shared.job.get();
            match job.f {
                Some(f) => (f, job.tasks),
                None => continue 'generations, // shutdown wake with no job
            }
        };
        // SAFETY: `run` keeps the closure alive until `done` reaches the
        // worker count, which happens strictly after this call returns.
        let f = unsafe { &*f };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| shared.run_tasks(f, tasks))) {
            shared.poison(payload);
        }
        shared.done.fetch_add(1, Ordering::SeqCst);
        if shared.caller_waiting.load(Ordering::SeqCst) {
            let _guard = shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shared.done_cv.notify_one();
        }
    }
}

/// A pool of `threads - 1` persistent workers plus the calling thread.
///
/// Construct once, call [`run`](WorkerPool::run) or
/// [`for_each_mut`](WorkerPool::for_each_mut) as many times as needed;
/// workers are joined on drop.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Misuse guard: `run` takes `&self` so owners can call it while
    /// mutably borrowing sibling fields, but overlapping barriers from two
    /// threads would race on the job slot.
    active: AtomicBool,
    /// Logical CPUs the spawned workers were asked to pin to (empty when
    /// pinning was off or no topology was available at construction).
    pinned: Vec<usize>,
}

impl WorkerPool {
    /// Creates a pool with `threads` total lanes of parallelism: the
    /// calling thread plus `threads - 1` spawned workers. `threads <= 1`
    /// spawns nothing and every `run` executes inline.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let shared = Arc::new(Shared {
            job: UnsafeCell::new(Job { f: None, tasks: 0 }),
            generation: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic_box: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            caller_waiting: AtomicBool::new(false),
            oversubscribed: threads > cores,
            lock: Mutex::new(()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = threads.saturating_sub(1);
        // Physical-core-first pin targets, when the process-wide toggle is
        // on and sysfs topology exists. Slot 0 of the order is left to the
        // caller thread (which is never pinned — it outlives the pool);
        // spawned workers take distinct physical cores before any SMT
        // sibling. Oversubscribed pools skip pinning: forcing more lanes
        // than cores onto fixed CPUs only serializes them.
        let pin_order = (pin_workers_enabled() && threads <= cores)
            .then(CpuTopology::detect)
            .flatten()
            .map(|t| t.physical_first_order());
        let mut pinned = Vec::new();
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cpu = pin_order
                    .as_deref()
                    .and_then(|order| topology::worker_cpu(order, i));
                if let Some(c) = cpu {
                    pinned.push(c);
                }
                std::thread::Builder::new()
                    .name(format!("scord-pool-{i}"))
                    .spawn(move || {
                        if let Some(c) = cpu {
                            // Best effort: a cpuset that excludes `c`
                            // leaves the worker unpinned, not broken.
                            let _ = topology::pin_current_thread(c);
                        }
                        worker_loop(shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            active: AtomicBool::new(false),
            pinned,
        }
    }

    /// Logical CPUs the spawned workers were pinned to, physical-core
    /// first; empty when pinning was disabled or no topology was found.
    #[must_use]
    pub fn pinned_cpus(&self) -> &[usize] {
        &self.pinned
    }

    /// Total lanes of parallelism (spawned workers + the caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(i)` for every `i in 0..tasks` across the pool and the
    /// calling thread, returning once all tasks are done and all workers
    /// have quiesced. Panics from tasks are re-raised here with their
    /// original payload.
    pub fn run(&self, tasks: usize, f: impl Fn(usize) + Sync) {
        if self.handles.is_empty() || tasks <= 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        assert!(
            !self.active.swap(true, Ordering::Acquire),
            "WorkerPool::run reentered: barriers must not overlap"
        );
        let s = &*self.shared;
        // Publish the job, then bump the generation (SeqCst) so workers
        // that observe the bump also observe the job.
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: lifetime erasure only; the barrier below outlives every
        // worker's use of the reference.
        let erased: ErasedTask =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedTask>(erased) };
        unsafe {
            *s.job.get() = Job {
                f: Some(erased),
                tasks,
            };
        }
        s.cursor.store(0, Ordering::Relaxed);
        s.done.store(0, Ordering::Relaxed);
        s.poisoned.store(false, Ordering::Relaxed);
        s.generation.fetch_add(1, Ordering::SeqCst);
        // Dekker handshake: either we see a parked worker here, or the
        // parking worker re-checks the generation under the lock and sees
        // the bump.
        if s.parked.load(Ordering::SeqCst) > 0 {
            let _guard = s
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s.work_cv.notify_all();
        }
        // The caller works too; its own panic must still complete the
        // barrier before unwinding, or workers could outlive the closure.
        let caller = catch_unwind(AssertUnwindSafe(|| s.run_tasks(&f, tasks)));
        if caller.is_err() {
            s.poisoned.store(true, Ordering::Release);
        }
        // Barrier: wait for every worker to quiesce.
        let workers = self.handles.len();
        let mut spins = 0u32;
        while s.done.load(Ordering::SeqCst) != workers {
            if !s.backoff(&mut spins) {
                s.caller_waiting.store(true, Ordering::SeqCst);
                let mut guard = s
                    .lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while s.done.load(Ordering::SeqCst) != workers {
                    guard = s
                        .done_cv
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                s.caller_waiting.store(false, Ordering::SeqCst);
                break;
            }
        }
        unsafe {
            (*s.job.get()).f = None;
        }
        self.active.store(false, Ordering::Release);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        let stored = s
            .panic_box
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(payload) = stored {
            resume_unwind(payload);
        }
    }

    /// Fans `f` out over the elements of `items`, giving each invocation
    /// exclusive `&mut` access to its element. Safe because the cursor
    /// hands out each index exactly once and the barrier outlives the
    /// borrow.
    pub fn for_each_mut<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        struct SlicePtr<T>(*mut T);
        // SAFETY: each index is claimed exactly once, so no two threads
        // alias the same element.
        unsafe impl<T: Send> Sync for SlicePtr<T> {}
        impl<T> SlicePtr<T> {
            /// Accessor (rather than direct field use in the closure) so
            /// 2021-edition precise capture moves the whole `Sync`
            /// wrapper, not the bare `*mut T` field.
            unsafe fn element(&self, i: usize) -> *mut T {
                self.0.add(i)
            }
        }
        let base = SlicePtr(items.as_mut_ptr());
        let len = items.len();
        self.run(len, move |i| {
            debug_assert!(i < len);
            // SAFETY: i < len and exclusively claimed.
            let item = unsafe { &mut *base.element(i) };
            f(i, item);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self
                .shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0u32; 257];
        for round in 0..100u32 {
            pool.for_each_mut(&mut slots, |i, slot| *slot = round.wrapping_add(i as u32));
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot, round.wrapping_add(i as u32));
            }
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(10, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 45);
    }

    #[test]
    fn zero_and_one_tasks_are_fine() {
        let pool = WorkerPool::new(3);
        pool.run(0, |_| panic!("no tasks to run"));
        let hits = AtomicU64::new(0);
        pool.run(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn pool_survives_a_panicking_barrier() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("task 13 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("task 13"), "payload preserved, got {msg:?}");
        // The pool must still be usable afterwards.
        let sum = AtomicU64::new(0);
        pool.run(8, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 36);
    }

    #[test]
    fn oversubscribed_pool_still_completes_barriers() {
        // Twice the host's lanes guarantees `oversubscribed` regardless of
        // the machine running the tests, so the yield-then-park backoff is
        // exercised everywhere (on a single-core host every pool test
        // already takes this path).
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let pool = WorkerPool::new(cores * 2 + 1);
        assert!(pool.shared.oversubscribed);
        let mut slots = vec![0u32; 64];
        for round in 1..=50u32 {
            pool.for_each_mut(&mut slots, |i, slot| *slot += round + i as u32);
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, (1..=50).sum::<u32>() + 50 * i as u32);
        }
    }

    #[test]
    fn workers_recover_after_parking() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        pool.run(16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Long enough for every worker to blow through SPIN_LIMIT and park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.run(16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 32);
    }
}
