//! A blocking bounded MPMC queue — the connection-to-worker hand-off
//! primitive for `scord-serve`.
//!
//! The service's backpressure contract is "block the socket, never the
//! detector": connection reader threads [`BoundedQueue::push`] decoded
//! event batches and *block* when the detector shard is behind, which
//! stops the reader from reading, which fills the kernel socket buffer,
//! which stalls the client's `write()` — TCP flow control does the rest.
//! The detector side uses [`BoundedQueue::pop_timeout`] so shard workers
//! wake periodically to notice shutdown and connection deadlines even
//! when idle.
//!
//! Closing the queue ([`BoundedQueue::close`]) releases every blocked
//! producer and consumer; producers get their item back so nothing is
//! silently dropped during drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Result of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue empty (and still open).
    TimedOut,
    /// The queue is closed and fully drained; no more items will ever
    /// arrive.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex + two-Condvar bounded queue. `push` blocks at capacity (the
/// backpressure edge); `pop_timeout` bounds consumer waits so workers can
/// poll for shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue would deadlock
    /// its first producer.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full. Returns
    /// `Err(item)` if the queue is (or becomes, while blocked) closed —
    /// the caller keeps the item and knows the consumer is gone.
    ///
    /// # Errors
    ///
    /// The rejected item, when the queue is closed.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Dequeues an item, waiting up to `timeout` for one to arrive.
    ///
    /// A closed queue still yields its remaining items; [`Pop::Closed`]
    /// means closed *and* drained.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (guard, res) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .expect("queue lock poisoned");
            inner = guard;
            if res.timed_out() {
                return if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.not_full.notify_one();
                    Pop::Item(item)
                } else if inner.closed {
                    Pop::Closed
                } else {
                    Pop::TimedOut
                };
            }
        }
    }

    /// Closes the queue: blocked producers fail with their item returned,
    /// and consumers see [`Pop::Closed`] once the backlog drains.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// `true` once [`close`](Self::close) has been called.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock poisoned").closed
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).expect("open queue");
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(i));
        }
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::TimedOut);
    }

    #[test]
    fn push_blocks_until_a_consumer_frees_a_slot() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).expect("open queue");
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let t0 = Instant::now();
            q2.push(1).expect("open queue");
            t0.elapsed()
        });
        // Give the producer time to block, then free the slot.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(0));
        let blocked_for = producer.join().expect("producer thread");
        assert!(
            blocked_for >= Duration::from_millis(25),
            "producer must have blocked, blocked for {blocked_for:?}"
        );
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
    }

    #[test]
    fn close_releases_blocked_producer_with_its_item() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(7u32).expect("open queue");
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(8));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(producer.join().expect("producer thread"), Err(8));
        // The backlog is still served after close…
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(7));
        // …then Closed, forever.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::<u32>::Closed);
        assert!(q.push(9).is_err());
    }

    #[test]
    fn close_wakes_idle_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(consumer.join().expect("consumer thread"), Pop::Closed);
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(2));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        q.push(p * 1000 + i).expect("open queue");
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 200 {
            match q.pop_timeout(Duration::from_millis(200)) {
                Pop::Item(v) => got.push(v),
                Pop::TimedOut => {}
                Pop::Closed => panic!("queue closed early"),
            }
        }
        for p in producers {
            p.join().expect("producer thread");
        }
        got.sort_unstable();
        let want: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(got, want);
    }
}
