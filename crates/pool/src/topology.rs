//! CPU topology discovery and worker pinning.
//!
//! On hosts with SMT, two pool workers landing on sibling hyperthreads of
//! one physical core share execution ports and L1/L2, so the pool scales
//! as if it had half its lanes. This module parses the kernel's sysfs
//! topology tree (`/sys/devices/system/cpu/cpu*/topology/`) and orders
//! CPUs *physical-core-first*: one CPU per (package, core) pair before any
//! SMT sibling is handed out. [`WorkerPool::new`](crate::WorkerPool::new)
//! uses that order to pin spawned workers when
//! [`set_pin_workers`](crate::set_pin_workers) is enabled.
//!
//! Everything degrades gracefully: no sysfs (non-Linux, sandboxes,
//! stripped containers) means no topology and no pinning; a CPU whose
//! topology files are missing is conservatively treated as its own
//! physical core, which still spreads workers out.
//!
//! The actual pinning call is a dependency-free `sched_setaffinity` shim
//! in the same hand-rolled `extern "C"` idiom as `scord_serve`'s
//! `signal`/`reactor` modules: declared against the platform C library,
//! no libc crate.

use std::collections::BTreeMap;
use std::path::Path;

/// One logical CPU and the physical core/package it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuDesc {
    /// Logical CPU index (the `N` of `cpuN`).
    pub cpu: usize,
    /// `topology/package_id`, or a synthetic value on fallback.
    pub package_id: i64,
    /// `topology/core_id`, or a synthetic unique value on fallback.
    pub core_id: i64,
}

/// The host's logical-CPU → physical-core mapping.
#[derive(Debug, Clone, Default)]
pub struct CpuTopology {
    cpus: Vec<CpuDesc>,
}

impl CpuTopology {
    /// Reads the topology of the running host. `None` when sysfs is
    /// unavailable or exposes no CPUs (non-Linux, restricted containers).
    #[must_use]
    pub fn detect() -> Option<CpuTopology> {
        CpuTopology::from_sysfs_root(Path::new("/sys/devices/system/cpu"))
    }

    /// Parses a sysfs-shaped tree rooted at `root` (the directory holding
    /// `cpu0`, `cpu1`, …). Split out from [`detect`](CpuTopology::detect)
    /// so tests can run against fixture trees.
    ///
    /// Per-CPU fallback chain when `topology/` files are missing or
    /// unparseable: `core_id`+`package_id` → `thread_siblings_list` (the
    /// smallest sibling becomes the core key) → the CPU is its own
    /// physical core. Returns `None` only when no `cpuN` directories
    /// exist at all.
    #[must_use]
    pub fn from_sysfs_root(root: &Path) -> Option<CpuTopology> {
        let entries = std::fs::read_dir(root).ok()?;
        let mut cpus = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(idx) = name
                .to_str()
                .and_then(|n| n.strip_prefix("cpu"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let topo = entry.path().join("topology");
            let read_id = |file: &str| -> Option<i64> {
                std::fs::read_to_string(topo.join(file))
                    .ok()?
                    .trim()
                    .parse()
                    .ok()
            };
            let package_id = read_id("package_id");
            let core_id = read_id("core_id");
            let desc = match (package_id, core_id) {
                (Some(p), Some(c)) => CpuDesc {
                    cpu: idx,
                    package_id: p,
                    core_id: c,
                },
                _ => {
                    let siblings = std::fs::read_to_string(topo.join("thread_siblings_list"))
                        .ok()
                        .map(|s| parse_cpu_list(&s))
                        .filter(|l| !l.is_empty());
                    match siblings {
                        // No core_id, but the sibling set still identifies
                        // the physical core: key it by its smallest member.
                        Some(sib) => CpuDesc {
                            cpu: idx,
                            package_id: package_id.unwrap_or(0),
                            core_id: sib[0] as i64,
                        },
                        // Nothing at all: assume the CPU is its own core
                        // (pinning then still spreads workers out).
                        None => CpuDesc {
                            cpu: idx,
                            package_id: i64::MAX,
                            core_id: idx as i64,
                        },
                    }
                }
            };
            cpus.push(desc);
        }
        if cpus.is_empty() {
            return None;
        }
        cpus.sort_by_key(|d| d.cpu);
        Some(CpuTopology { cpus })
    }

    /// Number of logical CPUs seen.
    #[must_use]
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of distinct physical cores seen.
    #[must_use]
    pub fn num_physical_cores(&self) -> usize {
        let mut keys: Vec<(i64, i64)> = self
            .cpus
            .iter()
            .map(|d| (d.package_id, d.core_id))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Logical CPUs ordered physical-core-first: the first (lowest-index)
    /// sibling of every (package, core) pair, in (package, core) order,
    /// then the second siblings, and so on. Pinning worker `i` to
    /// `order[i % len]` therefore fills distinct physical cores before
    /// doubling up on SMT siblings — on a hybrid P/E part the
    /// single-thread E-cores are simply one-sibling groups and interleave
    /// naturally.
    #[must_use]
    pub fn physical_first_order(&self) -> Vec<usize> {
        let mut groups: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        for d in &self.cpus {
            groups
                .entry((d.package_id, d.core_id))
                .or_default()
                .push(d.cpu);
        }
        for cpus in groups.values_mut() {
            cpus.sort_unstable();
        }
        let mut order = Vec::with_capacity(self.cpus.len());
        let mut rank = 0;
        loop {
            let before = order.len();
            for cpus in groups.values() {
                if let Some(&cpu) = cpus.get(rank) {
                    order.push(cpu);
                }
            }
            if order.len() == before {
                break;
            }
            rank += 1;
        }
        order
    }
}

/// Parses a kernel CPU-list string (`"0-3,8,10-11"`) into CPU indices.
/// Malformed fragments are skipped rather than failing the whole list.
#[must_use]
pub fn parse_cpu_list(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < 4096 {
                    cpus.extend(lo..=hi);
                }
            }
        } else if let Ok(cpu) = part.parse::<usize>() {
            cpus.push(cpu);
        }
    }
    cpus
}

/// The CPU spawned worker `i` should pin to, given a physical-first
/// order. Slot 0 of the order is reserved for the (unpinned) caller
/// thread — the pool's lane 0 — so worker 0 takes `order[1]` and workers
/// wrap around past the end.
#[must_use]
pub fn worker_cpu(order: &[usize], worker: usize) -> Option<usize> {
    if order.len() < 2 {
        return None;
    }
    Some(order[(worker + 1) % order.len()])
}

#[cfg(target_os = "linux")]
mod affinity {
    // Hand-rolled declaration against the platform C library (the
    // `scord_serve::signal` idiom): glibc/musl's `sched_setaffinity`
    // with pid 0 applies to the *calling thread*, which is exactly the
    // per-worker pinning primitive needed here.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Pins the calling thread to a single logical CPU. Returns `false`
    /// (without side effects) if the CPU index is out of the supported
    /// range or the kernel refuses (e.g. cgroup cpuset excludes it).
    pub fn pin_current_thread(cpu: usize) -> bool {
        let mut mask = [0u64; 16]; // 1024 CPUs
        let Some(word) = mask.get_mut(cpu / 64) else {
            return false;
        };
        *word = 1u64 << (cpu % 64);
        // SAFETY: the mask buffer outlives the call and its size is
        // passed explicitly; the kernel only reads it.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    /// No-op off Linux: pinning is an optimization, never a requirement.
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

pub use affinity::pin_current_thread;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cpu_list_handles_ranges_and_singletons() {
        assert_eq!(parse_cpu_list("0-3,8"), vec![0, 1, 2, 3, 8]);
        assert_eq!(parse_cpu_list(" 5 \n"), vec![5]);
        assert_eq!(parse_cpu_list("2-2"), vec![2]);
        assert_eq!(parse_cpu_list(""), Vec::<usize>::new());
        assert_eq!(parse_cpu_list("x,3,bad-4,1-0"), vec![3]);
    }

    #[test]
    fn worker_cpu_reserves_slot_zero_for_caller() {
        let order = [0, 2, 1, 3];
        assert_eq!(worker_cpu(&order, 0), Some(2));
        assert_eq!(worker_cpu(&order, 1), Some(1));
        assert_eq!(worker_cpu(&order, 2), Some(3));
        assert_eq!(worker_cpu(&order, 3), Some(0)); // wraps onto caller's slot
        assert_eq!(worker_cpu(&[7], 0), None, "one CPU: nothing to spread");
        assert_eq!(worker_cpu(&[], 0), None);
    }
}
