//! Host memory-footprint accounting for paper-scale runs.
//!
//! Paper-scale inputs (25.6M-element reductions, 100× R-MAT graphs) are
//! exactly where the metadata store's full-vs-cached scaling stops being a
//! back-of-envelope number and starts mattering, so the harness *measures*
//! it: the process peak RSS from `/proc/self/status` (`VmHWM`) next to the
//! simulated workload, and the detector store's own byte accounting
//! (`Gpu::detector_store_usage`) next to that. No dependencies: the proc
//! file is plain text, and hosts without procfs (or non-Linux) degrade to
//! `None` rather than failing the sweep.

use std::fs;

/// A snapshot of the process's resident-set sizes, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Peak resident set (`VmHWM`) — the high-water mark since process
    /// start, which for a sweep means "the largest workload so far".
    pub peak_rss_bytes: u64,
    /// Current resident set (`VmRSS`).
    pub rss_bytes: u64,
}

/// Reads the current process footprint from `/proc/self/status`, or `None`
/// when the file is missing or does not carry the expected fields (non-Linux
/// hosts, restricted procfs).
#[must_use]
pub fn read() -> Option<Footprint> {
    parse_status(&fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmHWM` / `VmRSS` lines of a `/proc/<pid>/status` document.
/// The kernel emits these in kB; values are returned in bytes.
fn parse_status(text: &str) -> Option<Footprint> {
    let mut peak = None;
    let mut rss = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = parse_kb(rest);
        }
    }
    Some(Footprint {
        peak_rss_bytes: peak?,
        rss_bytes: rss?,
    })
}

/// Parses a `   123456 kB` field into bytes.
fn parse_kb(field: &str) -> Option<u64> {
    let field = field.trim();
    let digits = field.strip_suffix("kB")?.trim();
    digits.parse::<u64>().ok()?.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let doc = "Name:\trun-experiments\nVmPeak:\t  500000 kB\n\
                   VmHWM:\t  123456 kB\nVmRSS:\t   98304 kB\nThreads:\t4\n";
        let f = parse_status(doc).expect("both fields present");
        assert_eq!(f.peak_rss_bytes, 123_456 * 1024);
        assert_eq!(f.rss_bytes, 98_304 * 1024);
    }

    #[test]
    fn missing_fields_or_garbage_degrade_to_none() {
        assert_eq!(parse_status(""), None);
        assert_eq!(parse_status("VmHWM:\t 12 kB\n"), None, "needs VmRSS too");
        assert_eq!(parse_status("VmHWM:\t twelve kB\nVmRSS:\t 1 kB\n"), None);
        assert_eq!(parse_status("VmHWM:\t 12 MB\nVmRSS:\t 1 kB\n"), None);
    }

    #[test]
    fn linux_hosts_read_a_live_footprint() {
        // This repo's CI and dev hosts are Linux; peak ≥ current always.
        if let Some(f) = read() {
            assert!(f.peak_rss_bytes >= f.rss_bytes);
            assert!(f.rss_bytes > 0);
        }
    }
}
