//! Table V — the default hardware configuration.

use scord_sim::GpuConfig;

use crate::render_table;

/// Renders the default configuration as the paper's Table V.
#[must_use]
pub fn to_markdown() -> String {
    let c = GpuConfig::paper_default();
    let d = c.dram;
    let rows = vec![
        vec!["Number of SMs".into(), c.num_sms.to_string()],
        vec!["Threads / warp".into(), c.warp_size.to_string()],
        vec![
            "Max. threads / block".into(),
            c.max_threads_per_block.to_string(),
        ],
        vec!["Registers / SM".into(), c.regs_per_sm.to_string()],
        vec!["Threadblocks / SM".into(), c.blocks_per_sm.to_string()],
        vec!["Max. warps / SM".into(), c.warps_per_sm.to_string()],
        vec![
            "Private L1 cache".into(),
            format!(
                "{} KB, {}-way, {}B blocks, global write-evict",
                c.l1_bytes >> 10,
                c.l1_ways,
                c.line_bytes
            ),
        ],
        vec![
            "Shared L2 cache".into(),
            format!(
                "{:.1} MB, {}-way, {}B blocks, write-back",
                c.l2_bytes as f64 / (1 << 20) as f64,
                c.l2_ways,
                c.line_bytes
            ),
        ],
        vec![
            "GDDR5 timing".into(),
            format!(
                "tRRD={}, tRCD={}, tRAS={}, tRP={}, tRC={}, tCL={}",
                d.t_rrd, d.t_rcd, d.t_ras, d.t_rp, d.t_rc, d.t_cl
            ),
        ],
        vec!["Memory channels".into(), c.channels.to_string()],
    ];
    render_table(&["Parameter", "Value"], &rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn table5_contains_paper_values() {
        let t = super::to_markdown();
        assert!(t.contains("| Number of SMs | 15 |"));
        assert!(t.contains("1.5 MB"));
        assert!(t.contains("tRC=40"));
        assert!(t.contains("| Memory channels | 12 |"));
    }
}
