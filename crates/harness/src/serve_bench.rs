//! Service-level benchmarking: drives the race-detection server
//! (`scord_serve`) with the load generator and records throughput and
//! latency in `BENCH_serve.json` at the repository root.
//!
//! Two subcommands of `run-experiments` live here:
//!
//! * `serve` — a long-lived server on a fixed address; SIGTERM/SIGINT
//!   trigger the graceful drain and the final [`StatsSnapshot`] is printed.
//! * `loadgen` — streams fuzzed traces at a running server from concurrent
//!   client threads, optionally fires the two robustness probes (one
//!   malformed-input stream that must come back as a typed error, one
//!   stalled stream that must be reaped by the progress deadline), prints a
//!   markdown summary and appends the run to `BENCH_serve.json`.
//!
//! The JSON record uses the same `{"schema": N, "runs": [...]}` envelope as
//! `BENCH_sim.json`, appended through the same raw-run extractor, so
//! history is preserved verbatim and a malformed record is a named error
//! rather than a silent clobber.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use scord_serve::proto::ErrorCode;
use scord_serve::{
    signal, Client, LoadConfig, LoadReport, Outcome, ServeConfig, Server, StatsSnapshot,
};

use crate::perf::read_recorded_runs;
use crate::HarnessError;

/// Outcome of the two robustness probes fired by `loadgen --probes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// `Ok(())` when the malformed stream was answered with a typed
    /// `Malformed`/`BadEvent` error; `Err` describes what happened instead.
    pub malformed: Result<(), String>,
    /// `Ok(())` when the stalled stream was reaped with a typed
    /// `DeadlineExceeded` error; `Err` describes what happened instead.
    pub deadline: Result<(), String>,
}

impl ProbeReport {
    /// Both probes behaved.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.malformed.is_ok() && self.deadline.is_ok()
    }
}

/// Runs a server on `addr` until a shutdown is requested (SIGTERM, SIGINT
/// or [`scord_serve::signal::request_shutdown`]), then drains gracefully
/// and returns the final stats.
///
/// `progress_deadline` bounds how long a connection may sit without
/// completing a frame before it is reaped — the CI smoke job shortens it so
/// the deadline probe finishes quickly.
///
/// # Errors
///
/// [`HarnessError`] with an `Io` kind when the listener cannot bind.
pub fn serve(addr: &str, progress_deadline: Duration) -> Result<StatsSnapshot, HarnessError> {
    let cfg = ServeConfig {
        addr: addr.to_string(),
        progress_deadline,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| HarnessError::io(addr.to_string(), &e))?;
    signal::install();
    println!("listening on {}", server.local_addr());
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(server.shutdown())
}

/// Fires the malformed-input probe: a stream whose first frame claims an
/// absurd length must be quarantined with a typed error, not dropped on
/// the floor and not crashing the server.
fn probe_malformed(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(Duration::from_secs(10))
        .map_err(|e| format!("timeout: {e}"))?;
    client
        .send_bytes(&[0xFF; 16])
        .map_err(|e| format!("send: {e}"))?;
    match client.read_outcome() {
        Ok(Outcome::ServerError(info)) if info.code == Some(ErrorCode::Malformed) => Ok(()),
        Ok(other) => Err(format!("expected a typed Malformed error, got {other:?}")),
        Err(e) => Err(format!("expected a typed Malformed error, got {e}")),
    }
}

/// Fires the deadline-reap probe: a stream that sends part of a frame and
/// then stalls must be reaped with `DeadlineExceeded` once the server's
/// progress deadline expires.
fn probe_deadline(addr: &str, wait_ceiling: Duration) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(wait_ceiling)
        .map_err(|e| format!("timeout: {e}"))?;
    // Six bytes of a frame header, then silence.
    client
        .send_bytes(&[0x40, 0x00, 0x00, 0x00, 0x01, 0x00])
        .map_err(|e| format!("send: {e}"))?;
    match client.read_outcome() {
        Ok(Outcome::ServerError(info)) if info.code == Some(ErrorCode::DeadlineExceeded) => Ok(()),
        Ok(other) => Err(format!("expected DeadlineExceeded, got {other:?}")),
        Err(e) => Err(format!("expected DeadlineExceeded, got {e}")),
    }
}

/// Runs the load profile against `cfg.addr` and, when `probes` is set,
/// fires the malformed-input and deadline-reap probes afterwards (after, so
/// the probes cannot eat connection slots while the measured load runs).
///
/// `deadline_hint` is how long the deadline probe is willing to wait for
/// the reap — set it comfortably above the server's progress deadline.
#[must_use]
pub fn loadgen(
    cfg: &LoadConfig,
    probes: bool,
    deadline_hint: Duration,
) -> (LoadReport, Option<ProbeReport>) {
    let report = scord_serve::loadgen::run(cfg);
    let probe_report = probes.then(|| ProbeReport {
        malformed: probe_malformed(&cfg.addr),
        deadline: probe_deadline(&cfg.addr, deadline_hint),
    });
    (report, probe_report)
}

/// Renders a load run (and probe outcomes, if any) as a markdown table.
#[must_use]
pub fn to_markdown(report: &LoadReport, probes: Option<&ProbeReport>) -> String {
    let row = |k: &str, v: String| vec![k.to_string(), v];
    let body = vec![
        row("completed traces", report.completed.to_string()),
        row("busy (shed)", report.busy.to_string()),
        row("failed", report.failed.to_string()),
        row("events streamed", report.events.to_string()),
        row("races reported", report.races.to_string()),
        row("wall seconds", format!("{:.3}", report.wall_seconds)),
        row("traces/sec", format!("{:.1}", report.traces_per_sec)),
        row("events/sec", format!("{:.0}", report.events_per_sec)),
        row("p50 latency (ms)", format!("{:.3}", report.p50_latency_ms)),
        row("p99 latency (ms)", format!("{:.3}", report.p99_latency_ms)),
        row("max latency (ms)", format!("{:.3}", report.max_latency_ms)),
    ];
    let mut out = crate::render_table(&["Metric", "Value"], &body);
    if let Some(p) = probes {
        let verdict = |r: &Result<(), String>| match r {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("FAILED: {e}"),
        };
        let _ = write!(
            out,
            "\nProbes: malformed-input {}; deadline-reap {}.",
            verdict(&p.malformed),
            verdict(&p.deadline)
        );
    }
    out
}

// ---- BENCH_serve.json ----------------------------------------------------

/// Default location of the service benchmark record: `BENCH_serve.json` at
/// the repo root (two levels above this crate's manifest).
#[must_use]
pub fn default_bench_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn render_run(label: &str, report: &LoadReport, probes: Option<&ProbeReport>) -> String {
    let probe_json = |r: &Result<(), String>| match r {
        Ok(()) => "\"ok\"".to_string(),
        Err(e) => format!("\"failed: {}\"", crate::perf::json_escape(e)),
    };
    let probes_field = probes.map_or("null".to_string(), |p| {
        format!(
            "{{\"malformed\": {}, \"deadline\": {}}}",
            probe_json(&p.malformed),
            probe_json(&p.deadline)
        )
    });
    format!(
        "    {{\n      \"label\": \"{}\",\n      \"completed\": {},\n      \
         \"busy\": {},\n      \"failed\": {},\n      \"events\": {},\n      \
         \"races\": {},\n      \"wall_seconds\": {:.6},\n      \
         \"traces_per_sec\": {:.3},\n      \"events_per_sec\": {:.1},\n      \
         \"p50_latency_ms\": {:.3},\n      \"p99_latency_ms\": {:.3},\n      \
         \"max_latency_ms\": {:.3},\n      \"probes\": {}\n    }}",
        crate::perf::json_escape(label),
        report.completed,
        report.busy,
        report.failed,
        report.events,
        report.races,
        report.wall_seconds,
        report.traces_per_sec,
        report.events_per_sec,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.max_latency_ms,
        probes_field,
    )
}

fn render_document(raw_runs: &[String]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"runs\": [\n");
    for (i, r) in raw_runs.iter().enumerate() {
        let indented = if r.starts_with("    ") {
            r.clone()
        } else {
            format!("    {r}")
        };
        let comma = if i + 1 < raw_runs.len() { "," } else { "" };
        let _ = writeln!(out, "{}{comma}", indented.trim_end());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Appends one load run to the `BENCH_serve.json` at `path` (creating it
/// if absent) and returns the number of runs now recorded.
///
/// # Errors
///
/// Typed [`HarnessError`]s: `Io` for filesystem failures, `BenchMalformed`
/// when an existing record does not parse (it is left untouched).
pub fn append_to_bench_json(
    path: &Path,
    label: &str,
    report: &LoadReport,
    probes: Option<&ProbeReport>,
) -> Result<usize, HarnessError> {
    let mut raw = read_recorded_runs(path)?;
    raw.push(render_run(label, report, probes));
    let n = raw.len();
    std::fs::write(path, render_document(&raw))
        .map_err(|e| HarnessError::io(path.display().to_string(), &e))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> LoadReport {
        LoadReport {
            completed: 10,
            busy: 1,
            failed: 0,
            events: 20_000,
            races: 33,
            wall_seconds: 0.5,
            traces_per_sec: 20.0,
            events_per_sec: 40_000.0,
            p50_latency_ms: 3.25,
            p99_latency_ms: 9.5,
            max_latency_ms: 12.0,
        }
    }

    #[test]
    fn record_roundtrips_through_the_shared_extractor() {
        let probes = ProbeReport {
            malformed: Ok(()),
            deadline: Err("still waiting".into()),
        };
        let doc = render_document(&[render_run("smoke", &fake_report(), Some(&probes))]);
        let runs = crate::perf::existing_runs(&doc).expect("document parses");
        assert_eq!(runs.len(), 1);
        assert!(runs[0].contains("\"traces_per_sec\": 20.000"));
        assert!(runs[0].contains("\"p99_latency_ms\": 9.500"));
        assert!(runs[0].contains("\"malformed\": \"ok\""));
        assert!(runs[0].contains("failed: still waiting"));

        let mut raw = runs;
        raw.push(render_run("second", &fake_report(), None));
        let doc2 = render_document(&raw);
        let runs2 = crate::perf::existing_runs(&doc2).expect("still parses");
        assert_eq!(runs2.len(), 2);
        assert!(runs2[1].contains("\"probes\": null"));
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            progress_deadline: Duration::from_millis(400),
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.local_addr().to_string();
        let cfg = LoadConfig {
            addr,
            streams: 6,
            concurrency: 3,
            events: 400,
            ..LoadConfig::default()
        };
        let (report, probes) = loadgen(&cfg, true, Duration::from_secs(5));
        let probes = probes.expect("probes requested");
        assert_eq!(report.completed, 6, "all healthy streams complete");
        assert_eq!(report.failed, 0);
        assert!(report.events > 0 && report.traces_per_sec > 0.0);
        assert!(report.p99_latency_ms >= report.p50_latency_ms);
        assert_eq!(probes.malformed, Ok(()));
        assert_eq!(probes.deadline, Ok(()));
        assert!(probes.all_ok());

        let dir = std::env::temp_dir().join("scord-serve-bench-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_serve.json");
        std::fs::remove_file(&path).ok();
        let n = append_to_bench_json(&path, "unit", &report, Some(&probes)).expect("writes");
        assert_eq!(n, 1);
        let n = append_to_bench_json(&path, "unit2", &report, None).expect("appends");
        assert_eq!(n, 2);
        std::fs::remove_file(&path).ok();

        let stats = server.shutdown();
        assert!(stats.completed >= 6);
        assert!(stats.quarantined >= 1, "malformed probe quarantined");
        assert!(stats.reaped_deadline >= 1, "stalled probe reaped");
    }
}
