//! Service-level benchmarking: drives the race-detection server
//! (`scord_serve`) with the load generator and records throughput and
//! latency in `BENCH_serve.json` at the repository root.
//!
//! Two subcommands of `run-experiments` live here:
//!
//! * `serve` — a long-lived server on a fixed address; SIGTERM/SIGINT
//!   trigger the graceful drain and the final [`StatsSnapshot`] is printed.
//! * `loadgen` — streams fuzzed traces at a running server from concurrent
//!   client threads, optionally fires the two robustness probes (one
//!   malformed-input stream that must come back as a typed error, one
//!   stalled stream that must be reaped by the progress deadline), prints a
//!   markdown summary and appends the run to `BENCH_serve.json`.
//!
//! The JSON record uses the same `{"schema": N, "runs": [...]}` envelope as
//! `BENCH_sim.json`, appended through the same raw-run extractor, so
//! history is preserved verbatim and a malformed record is a named error
//! rather than a silent clobber.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use scord_serve::proto::ErrorCode;
use scord_serve::{
    signal, Client, LoadConfig, LoadReport, Outcome, ServeConfig, Server, StatsSnapshot,
};

use crate::perf::read_recorded_runs;
use crate::HarnessError;

/// Outcome of the two robustness probes fired by `loadgen --probes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// `Ok(())` when the malformed stream was answered with a typed
    /// `Malformed`/`BadEvent` error; `Err` describes what happened instead.
    pub malformed: Result<(), String>,
    /// `Ok(())` when the stalled stream was reaped with a typed
    /// `DeadlineExceeded` error; `Err` describes what happened instead.
    pub deadline: Result<(), String>,
}

impl ProbeReport {
    /// Both probes behaved.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.malformed.is_ok() && self.deadline.is_ok()
    }
}

/// Runs a server on `addr` until a shutdown is requested (SIGTERM, SIGINT
/// or [`scord_serve::signal::request_shutdown`]), then drains gracefully
/// and returns the final stats.
///
/// `progress_deadline` bounds how long a connection may sit without
/// completing a frame before it is reaped — the CI smoke job shortens it so
/// the deadline probe finishes quickly. `max_connections` sets the overload
/// watermark; the smoke job raises it above its idle-swarm size.
///
/// # Errors
///
/// [`HarnessError`] with an `Io` kind when the listener cannot bind.
pub fn serve(
    addr: &str,
    progress_deadline: Duration,
    max_connections: usize,
) -> Result<StatsSnapshot, HarnessError> {
    let cfg = ServeConfig {
        addr: addr.to_string(),
        progress_deadline,
        max_connections,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| HarnessError::io(addr.to_string(), &e))?;
    signal::install();
    println!("listening on {}", server.local_addr());
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(server.shutdown())
}

/// Fires the malformed-input probe: a stream whose first frame claims an
/// absurd length must be quarantined with a typed error, not dropped on
/// the floor and not crashing the server.
fn probe_malformed(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(Duration::from_secs(10))
        .map_err(|e| format!("timeout: {e}"))?;
    client
        .send_bytes(&[0xFF; 16])
        .map_err(|e| format!("send: {e}"))?;
    match client.read_outcome() {
        Ok(Outcome::ServerError(info)) if info.code == Some(ErrorCode::Malformed) => Ok(()),
        Ok(other) => Err(format!("expected a typed Malformed error, got {other:?}")),
        Err(e) => Err(format!("expected a typed Malformed error, got {e}")),
    }
}

/// Fires the deadline-reap probe: a stream that sends part of a frame and
/// then stalls must be reaped with `DeadlineExceeded` once the server's
/// progress deadline expires.
fn probe_deadline(addr: &str, wait_ceiling: Duration) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(wait_ceiling)
        .map_err(|e| format!("timeout: {e}"))?;
    // Six bytes of a frame header, then silence.
    client
        .send_bytes(&[0x40, 0x00, 0x00, 0x00, 0x01, 0x00])
        .map_err(|e| format!("send: {e}"))?;
    match client.read_outcome() {
        Ok(Outcome::ServerError(info)) if info.code == Some(ErrorCode::DeadlineExceeded) => Ok(()),
        Ok(other) => Err(format!("expected DeadlineExceeded, got {other:?}")),
        Err(e) => Err(format!("expected DeadlineExceeded, got {e}")),
    }
}

/// Runs the load profile against `cfg.addr` and, when `probes` is set,
/// fires the malformed-input and deadline-reap probes afterwards (after, so
/// the probes cannot eat connection slots while the measured load runs).
///
/// `deadline_hint` is how long the deadline probe is willing to wait for
/// the reap — set it comfortably above the server's progress deadline.
#[must_use]
pub fn loadgen(
    cfg: &LoadConfig,
    probes: bool,
    deadline_hint: Duration,
) -> (LoadReport, Option<ProbeReport>) {
    let report = scord_serve::loadgen::run(cfg);
    let probe_report = probes.then(|| ProbeReport {
        malformed: probe_malformed(&cfg.addr),
        deadline: probe_deadline(&cfg.addr, deadline_hint),
    });
    (report, probe_report)
}

/// Renders a load run (and probe outcomes, if any) as a markdown table.
#[must_use]
pub fn to_markdown(report: &LoadReport, probes: Option<&ProbeReport>) -> String {
    let row = |k: &str, v: String| vec![k.to_string(), v];
    let body = vec![
        row("completed traces", report.completed.to_string()),
        row("busy (shed)", report.busy.to_string()),
        row("failed", report.failed.to_string()),
        row("events streamed", report.events.to_string()),
        row("races reported", report.races.to_string()),
        row("wall seconds", format!("{:.3}", report.wall_seconds)),
        row("traces/sec", format!("{:.1}", report.traces_per_sec)),
        row("events/sec", format!("{:.0}", report.events_per_sec)),
        row("p50 latency (ms)", format!("{:.3}", report.p50_latency_ms)),
        row("p99 latency (ms)", format!("{:.3}", report.p99_latency_ms)),
        row("max latency (ms)", format!("{:.3}", report.max_latency_ms)),
    ];
    let mut out = crate::render_table(&["Metric", "Value"], &body);
    if let Some(p) = probes {
        let verdict = |r: &Result<(), String>| match r {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("FAILED: {e}"),
        };
        let _ = write!(
            out,
            "\nProbes: malformed-input {}; deadline-reap {}.",
            verdict(&p.malformed),
            verdict(&p.deadline)
        );
    }
    out
}

// ---- BENCH_serve.json ----------------------------------------------------

/// Default location of the service benchmark record: `BENCH_serve.json` at
/// the repo root (two levels above this crate's manifest).
#[must_use]
pub fn default_bench_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn render_run(label: &str, report: &LoadReport, probes: Option<&ProbeReport>) -> String {
    let probe_json = |r: &Result<(), String>| match r {
        Ok(()) => "\"ok\"".to_string(),
        Err(e) => format!("\"failed: {}\"", crate::perf::json_escape(e)),
    };
    let probes_field = probes.map_or("null".to_string(), |p| {
        format!(
            "{{\"malformed\": {}, \"deadline\": {}}}",
            probe_json(&p.malformed),
            probe_json(&p.deadline)
        )
    });
    format!(
        "    {{\n      \"label\": \"{}\",\n      \"thread_model\": \"reactor\",\n      \
         \"completed\": {},\n      \
         \"busy\": {},\n      \"failed\": {},\n      \"events\": {},\n      \
         \"races\": {},\n      \"wall_seconds\": {:.6},\n      \
         \"traces_per_sec\": {:.3},\n      \"events_per_sec\": {:.1},\n      \
         \"p50_latency_ms\": {:.3},\n      \"p99_latency_ms\": {:.3},\n      \
         \"max_latency_ms\": {:.3},\n      \"idle_connections\": {},\n      \
         \"threads\": {},\n      \"open_fds\": {},\n      \"probes\": {}\n    }}",
        crate::perf::json_escape(label),
        report.completed,
        report.busy,
        report.failed,
        report.events,
        report.races,
        report.wall_seconds,
        report.traces_per_sec,
        report.events_per_sec,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.max_latency_ms,
        report.idle_connections,
        report.threads,
        report.open_fds,
        probes_field,
    )
}

fn render_document(raw_runs: &[String]) -> String {
    // Schema 2: runs carry `thread_model`, `idle_connections`, `threads`
    // and `open_fds`. Schema-1 runs (thread-per-connection era) are
    // preserved verbatim — the raw-run extractor is field-agnostic.
    let mut out = String::from("{\n  \"schema\": 2,\n  \"runs\": [\n");
    for (i, r) in raw_runs.iter().enumerate() {
        let indented = if r.starts_with("    ") {
            r.clone()
        } else {
            format!("    {r}")
        };
        let comma = if i + 1 < raw_runs.len() { "," } else { "" };
        let _ = writeln!(out, "{}{comma}", indented.trim_end());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Appends one load run to the `BENCH_serve.json` at `path` (creating it
/// if absent) and returns the number of runs now recorded.
///
/// # Errors
///
/// Typed [`HarnessError`]s: `Io` for filesystem failures, `BenchMalformed`
/// when an existing record does not parse (it is left untouched).
pub fn append_to_bench_json(
    path: &Path,
    label: &str,
    report: &LoadReport,
    probes: Option<&ProbeReport>,
) -> Result<usize, HarnessError> {
    let mut raw = read_recorded_runs(path)?;
    raw.push(render_run(label, report, probes));
    let n = raw.len();
    std::fs::write(path, render_document(&raw))
        .map_err(|e| HarnessError::io(path.display().to_string(), &e))?;
    Ok(n)
}

// ---- connection-count sweep ----------------------------------------------

/// One row of the mostly-idle connection sweep.
#[derive(Debug)]
pub struct SweepRow {
    /// Idle connections requested for this row (before fd clamping).
    pub target: usize,
    /// The measured run; `report.idle_connections` is what was actually
    /// held open, `report.threads`/`report.open_fds` the footprint.
    pub report: LoadReport,
}

/// Caps a sweep target to what the process's fd budget can hold: each
/// in-process connection costs two fds (client end + server end), and a
/// fixed headroom covers the listener, selector, waker, shard plumbing
/// and whatever the test runner already has open.
#[must_use]
pub fn clamp_to_fd_budget(target: usize) -> usize {
    const HEADROOM: u64 = 128;
    match scord_serve::reactor::fd_limit() {
        Some(limit) => {
            let usable = limit.saturating_sub(HEADROOM) / 2;
            target.min(usable as usize)
        }
        None => target,
    }
}

/// Runs the mostly-idle sweep: for each target, an in-process server gets
/// `target` parked sessions (clamped to the fd budget) while `streams`
/// traces of `events` events run through `concurrency` active clients.
/// The interesting columns are `threads` (flat across rows for a reactor)
/// and `open_fds` (linear in connections) — the footprint signature that
/// separates event-driven from thread-per-connection.
///
/// # Errors
///
/// [`HarnessError`] with an `Io` kind when a server cannot bind.
pub fn connection_sweep(
    targets: &[usize],
    streams: usize,
    concurrency: usize,
    events: u32,
) -> Result<Vec<SweepRow>, HarnessError> {
    let mut rows = Vec::with_capacity(targets.len());
    for &target in targets {
        let idle = clamp_to_fd_budget(target);
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: idle + concurrency + 8,
            ..ServeConfig::default()
        })
        .map_err(|e| HarnessError::io("127.0.0.1:0".to_string(), &e))?;
        let cfg = LoadConfig {
            addr: server.local_addr().to_string(),
            streams,
            concurrency,
            events,
            idle_connections: idle,
            ..LoadConfig::default()
        };
        let report = scord_serve::loadgen::run(&cfg);
        server.shutdown();
        rows.push(SweepRow { target, report });
    }
    Ok(rows)
}

/// Renders the sweep as a markdown table.
#[must_use]
pub fn sweep_to_markdown(rows: &[SweepRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.target.to_string(),
                row.report.idle_connections.to_string(),
                row.report.threads.to_string(),
                row.report.open_fds.to_string(),
                row.report.completed.to_string(),
                format!("{:.1}", row.report.traces_per_sec),
                format!("{:.3}", row.report.p99_latency_ms),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "target",
            "idle held",
            "threads",
            "open fds",
            "completed",
            "traces/sec",
            "p99 (ms)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> LoadReport {
        LoadReport {
            completed: 10,
            busy: 1,
            failed: 0,
            events: 20_000,
            races: 33,
            wall_seconds: 0.5,
            traces_per_sec: 20.0,
            events_per_sec: 40_000.0,
            p50_latency_ms: 3.25,
            p99_latency_ms: 9.5,
            max_latency_ms: 12.0,
            idle_connections: 256,
            threads: 4,
            open_fds: 530,
        }
    }

    #[test]
    fn record_roundtrips_through_the_shared_extractor() {
        let probes = ProbeReport {
            malformed: Ok(()),
            deadline: Err("still waiting".into()),
        };
        let doc = render_document(&[render_run("smoke", &fake_report(), Some(&probes))]);
        assert!(doc.contains("\"schema\": 2"));
        let runs = crate::perf::existing_runs(&doc).expect("document parses");
        assert_eq!(runs.len(), 1);
        assert!(runs[0].contains("\"traces_per_sec\": 20.000"));
        assert!(runs[0].contains("\"p99_latency_ms\": 9.500"));
        assert!(runs[0].contains("\"thread_model\": \"reactor\""));
        assert!(runs[0].contains("\"idle_connections\": 256"));
        assert!(runs[0].contains("\"threads\": 4"));
        assert!(runs[0].contains("\"open_fds\": 530"));
        assert!(runs[0].contains("\"malformed\": \"ok\""));
        assert!(runs[0].contains("failed: still waiting"));

        let mut raw = runs;
        raw.push(render_run("second", &fake_report(), None));
        let doc2 = render_document(&raw);
        let runs2 = crate::perf::existing_runs(&doc2).expect("still parses");
        assert_eq!(runs2.len(), 2);
        assert!(runs2[1].contains("\"probes\": null"));
    }

    #[test]
    fn schema1_runs_survive_a_schema2_append_verbatim() {
        let legacy = "{\"label\": \"pr6-serve\", \"completed\": 128, \
                      \"traces_per_sec\": 559.852}";
        let old_doc = format!("{{\n  \"schema\": 1,\n  \"runs\": [\n    {legacy}\n  ]\n}}\n");
        let mut raw = crate::perf::existing_runs(&old_doc).expect("schema-1 parses");
        raw.push(render_run("reactor-row", &fake_report(), None));
        let doc = render_document(&raw);
        assert!(doc.contains("\"schema\": 2"));
        let runs = crate::perf::existing_runs(&doc).expect("schema-2 parses");
        assert_eq!(runs.len(), 2);
        assert!(
            runs[0].contains("\"traces_per_sec\": 559.852"),
            "the thread-per-connection era row must be byte-preserved"
        );
        assert!(runs[1].contains("\"thread_model\": \"reactor\""));
    }

    #[test]
    fn small_connection_sweep_has_flat_thread_count() {
        let rows = connection_sweep(&[8, 64], 8, 4, 200).expect("sweep runs");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.report.completed, 8, "active minority completes");
            assert_eq!(
                row.report.idle_connections, row.target as u64,
                "small targets must not be fd-clamped"
            );
        }
        // The reactor's signature: 8x the idle connections, same threads.
        if rows[0].report.threads > 0 {
            assert_eq!(
                rows[0].report.threads, rows[1].report.threads,
                "thread count must be independent of connection count"
            );
            assert!(
                rows[1].report.open_fds >= rows[0].report.open_fds + 100,
                "fd count tracks connections ({} vs {})",
                rows[0].report.open_fds,
                rows[1].report.open_fds
            );
        }
        let md = sweep_to_markdown(&rows);
        assert!(md.contains("traces/sec"));
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            progress_deadline: Duration::from_millis(400),
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.local_addr().to_string();
        let cfg = LoadConfig {
            addr,
            streams: 6,
            concurrency: 3,
            events: 400,
            ..LoadConfig::default()
        };
        let (report, probes) = loadgen(&cfg, true, Duration::from_secs(5));
        let probes = probes.expect("probes requested");
        assert_eq!(report.completed, 6, "all healthy streams complete");
        assert_eq!(report.failed, 0);
        assert!(report.events > 0 && report.traces_per_sec > 0.0);
        assert!(report.p99_latency_ms >= report.p50_latency_ms);
        assert_eq!(probes.malformed, Ok(()));
        assert_eq!(probes.deadline, Ok(()));
        assert!(probes.all_ok());

        let dir = std::env::temp_dir().join("scord-serve-bench-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_serve.json");
        std::fs::remove_file(&path).ok();
        let n = append_to_bench_json(&path, "unit", &report, Some(&probes)).expect("writes");
        assert_eq!(n, 1);
        let n = append_to_bench_json(&path, "unit2", &report, None).expect("appends");
        assert_eq!(n, 2);
        std::fs::remove_file(&path).ok();

        let stats = server.shutdown();
        assert!(stats.completed >= 6);
        assert!(stats.quarantined >= 1, "malformed probe quarantined");
        assert!(stats.reaped_deadline >= 1, "stalled probe reaped");
    }
}
