//! Figure 10 — attribution of ScoRD's overhead to its three sources.
//!
//! Like the paper, we run ScoRD with each source's *timing* disabled in
//! turn (detection stays functionally identical) and measure the uplift:
//!
//! * **LHD** — stalls when an L1 hit cannot enqueue its detection packet;
//! * **NOC** — the detection header enlarging request packets;
//! * **MD** — metadata reads and writebacks through L2/DRAM.
//!
//! The paper reports average relative contributions of 16.5% / 36.2% /
//! 47.3%; coalesced workloads (RED, R110) are metadata-dominated while
//! irregular graph workloads congest the network.

use scord_core::StoreKind;
use scord_sim::{DetectionMode, OverheadToggles};

use crate::exec::{sweep, Jobs};
use crate::{apps, render_table, run_app, MemoryVariant};

/// One application's overhead attribution.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// ScoRD cycles with all sources on.
    pub full_cycles: u64,
    /// Relative contribution of L1-hit-detection stalls (0..=1).
    pub lhd: f64,
    /// Relative contribution of NoC packet growth.
    pub noc: f64,
    /// Relative contribution of metadata traffic.
    pub md: f64,
}

fn scord_with(toggles: OverheadToggles) -> DetectionMode {
    DetectionMode::On {
        store: StoreKind::Cached { ratio: 16 },
        toggles,
    }
}

/// Runs the attribution experiment, one (application, toggle-variant) cell
/// per job, on up to `jobs` worker threads.
#[must_use]
pub fn run(quick: bool, jobs: Jobs) -> Vec<Row> {
    let apps = apps(quick);
    let all = OverheadToggles::all();
    let variants = [
        all,
        OverheadToggles { lhd: false, ..all },
        OverheadToggles { noc: false, ..all },
        OverheadToggles { md: false, ..all },
    ];
    let cells: Vec<(usize, OverheadToggles)> = (0..apps.len())
        .flat_map(|a| variants.map(|t| (a, t)))
        .collect();
    let cycles = sweep("fig10", jobs, &cells, |_, &(a, toggles)| {
        run_app(
            apps[a].as_ref(),
            scord_with(toggles),
            MemoryVariant::Default,
        )
        .cycles
    });
    apps.iter()
        .zip(cycles.chunks_exact(variants.len()))
        .map(|(app, c)| {
            let full = c[0];
            let uplift = |cycles: u64| (full.saturating_sub(cycles)) as f64;
            let (lhd, noc, md) = (uplift(c[1]), uplift(c[2]), uplift(c[3]));
            let total = (lhd + noc + md).max(1.0);
            Row {
                workload: app.name().to_string(),
                full_cycles: full,
                lhd: lhd / total,
                noc: noc / total,
                md: md / total,
            }
        })
        .collect()
}

/// Average relative contributions `(lhd, noc, md)` across applications.
#[must_use]
pub fn averages(rows: &[Row]) -> (f64, f64, f64) {
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.lhd).sum::<f64>() / n,
        rows.iter().map(|r| r.noc).sum::<f64>() / n,
        rows.iter().map(|r| r.md).sum::<f64>() / n,
    )
}

/// Renders Figure 10 as a table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.1}%", r.lhd * 100.0),
                format!("{:.1}%", r.noc * 100.0),
                format!("{:.1}%", r.md * 100.0),
            ]
        })
        .collect();
    let (lhd, noc, md) = averages(rows);
    body.push(vec![
        "average".into(),
        format!("{:.1}%", lhd * 100.0),
        format!("{:.1}%", noc * 100.0),
        format!("{:.1}%", md * 100.0),
    ]);
    render_table(&["Workload", "LHD", "NOC", "MD"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributions_are_normalized_fractions() {
        let rows = run(true, Jobs::serial());
        for r in &rows {
            assert!(r.lhd >= 0.0 && r.noc >= 0.0 && r.md >= 0.0, "{r:?}");
            let sum = r.lhd + r.noc + r.md;
            assert!(sum <= 1.001, "{}: fractions sum to {sum}", r.workload);
        }
        let (_, _, md) = averages(&rows);
        assert!(md > 0.0, "metadata traffic must contribute somewhere");
    }
}
