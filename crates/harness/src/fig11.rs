//! Figure 11 — ScoRD's overhead under low / default / high memory-system
//! configurations (half/default/double L2 capacity and channel count).
//!
//! Each bar is normalized to the *same* configuration without detection, so
//! the figure isolates how memory-system headroom absorbs the metadata
//! traffic. The paper finds overheads grow as memory resources shrink
//! (except 1DC, whose baseline degrades even faster).

use scord_sim::DetectionMode;

use crate::exec::{sweep, Jobs};
use crate::{apps, render_table, run_app, MemoryVariant};

/// One application's overhead under the three memory configurations.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// ScoRD / no-detection cycles on the constrained memory system.
    pub low: f64,
    /// ScoRD / no-detection cycles on the default memory system.
    pub default: f64,
    /// ScoRD / no-detection cycles on the generous memory system.
    pub high: f64,
}

/// Runs the sensitivity sweep, one (application, memory-variant) cell per
/// job — each cell runs its off + ScoRD pair — on up to `jobs` worker
/// threads.
#[must_use]
pub fn run(quick: bool, jobs: Jobs) -> Vec<Row> {
    let apps = apps(quick);
    let cells: Vec<(usize, MemoryVariant)> = (0..apps.len())
        .flat_map(|a| MemoryVariant::ALL.map(|v| (a, v)))
        .collect();
    let ratios = sweep("fig11", jobs, &cells, |_, &(a, variant)| {
        let off = run_app(apps[a].as_ref(), DetectionMode::Off, variant).cycles;
        let on = run_app(apps[a].as_ref(), DetectionMode::scord(), variant).cycles;
        on as f64 / off as f64
    });
    apps.iter()
        .zip(ratios.chunks_exact(MemoryVariant::ALL.len()))
        .map(|(app, r)| Row {
            workload: app.name().to_string(),
            low: r[0],
            default: r[1],
            high: r[2],
        })
        .collect()
}

/// Renders Figure 11 as a table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.3}", r.low),
                format!("{:.3}", r.default),
                format!("{:.3}", r.high),
            ]
        })
        .collect();
    render_table(&["Workload", "Low memory", "Default", "High memory"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_is_a_valid_overhead() {
        let rows = run(true, Jobs::serial());
        assert_eq!(rows.len(), 7);
        for r in &rows {
            for v in [r.low, r.default, r.high] {
                // Slack for interleaving perturbation on irregular apps.
                assert!((0.9..5.0).contains(&v), "{}: {v:.3}", r.workload);
            }
        }
    }
}
