//! Schedule-space audit: the predictive detector and the bounded
//! interleaving explorer as harness backends.
//!
//! The differential audit ([`crate::diff`]) judges the one schedule each
//! trace captured. This module multiplies what every trace proves:
//!
//! 1. [`scord_core::explore`] replays the trace under a bounded set of
//!    seeded schedule perturbations (deduplicated by fingerprint), using
//!    the exact oracle as the per-interleaving judge — races found only
//!    under a reordered schedule are counted against the single-schedule
//!    dynamic detector's haul;
//! 2. [`scord_core::predict`] reports conflicting pairs ordered only by
//!    non-blocking synchronization as predicted races; every prediction
//!    must come back *confirmed* by a concrete witness schedule or land
//!    in a named false-prediction class of the extended [`Divergence`]
//!    taxonomy. An unconfirmed prediction is a schedule-model defect: the
//!    audit fails loudly with a reproducer minimized through the same
//!    machinery as the diff audit.
//!
//! [`run`] covers the identical fuzzed corpus as `diff` (same seed
//! rotation), [`micros`] the 32 captured microbenchmark traces. Both are
//! deterministic in their seeds for any job count.

use std::collections::{BTreeMap, BTreeSet};

use scor_suite::micro::all_micros;
use scord_core::explore::{explore, ExploreConfig};
use scord_core::predict::{predict, PredictConfig, PredictionClass};
use scord_core::{build_detector, Detector, DetectorConfig, DetectorKind, Trace};

use crate::diff::{self, diff_config, BugReport, Divergence, Key};
use crate::exec::{sweep, Jobs};
use crate::{render_table, HarnessError};

/// One trace's schedule-space audit row.
#[derive(Debug, Clone)]
pub struct ExploreRow {
    /// Trace name (`fuzz-NNN` or the microbenchmark name).
    pub name: String,
    /// Events per interleaving (the trace length).
    pub events: usize,
    /// Reorderable segments the predictor partitioned the trace into.
    pub segments: usize,
    /// Distinct interleavings replayed (captured schedule included).
    pub schedules: usize,
    /// Keys the dynamic (hardware-model) ScoRD detector reported on the
    /// captured schedule.
    pub dynamic_keys: usize,
    /// Oracle keys on the captured schedule (the single-schedule exact
    /// baseline).
    pub baseline_keys: usize,
    /// Oracle keys found across all explored interleavings.
    pub explored_keys: usize,
    /// Explored keys absent from the captured schedule's oracle baseline
    /// — what exploration adds over any single-schedule judge.
    pub schedule_only: usize,
    /// Explored keys the dynamic detector did not report — what the
    /// single-schedule hardware model misses in the schedule space.
    pub beyond_dynamic: usize,
    /// Prediction classes ([`Divergence::PREDICTED`] counts).
    pub counts: BTreeMap<Divergence, usize>,
}

/// Result of a schedule-space audit sweep.
#[derive(Debug, Clone)]
pub struct ExploreSummary {
    /// Root seed.
    pub seed: u64,
    /// Schedule bound per trace.
    pub schedule_bound: u32,
    /// One row per trace.
    pub rows: Vec<ExploreRow>,
    /// Total interleavings replayed by the explorer.
    pub interleavings: usize,
    /// Total events replayed across those interleavings — the
    /// deterministic cost measure (wall-clock per interleaving is printed
    /// by the binary, outside the byte-stable tables).
    pub events_replayed: usize,
    /// Unconfirmed predictions with minimized reproducers (empty on a
    /// passing audit).
    pub bugs: Vec<BugReport>,
}

impl ExploreSummary {
    /// Explored races the captured-schedule oracle baseline missed,
    /// summed over all traces.
    #[must_use]
    pub fn schedule_only_total(&self) -> usize {
        self.rows.iter().map(|r| r.schedule_only).sum()
    }

    /// Explored races the dynamic detector missed, summed over all
    /// traces.
    #[must_use]
    pub fn beyond_dynamic_total(&self) -> usize {
        self.rows.iter().map(|r| r.beyond_dynamic).sum()
    }
}

fn class_divergence(c: PredictionClass) -> Divergence {
    match c {
        PredictionClass::Confirmed => Divergence::PredConfirmed,
        PredictionClass::LockMutex => Divergence::PredLockMutex,
        PredictionClass::AtomicCommute => Divergence::PredAtomicCommute,
        PredictionClass::SyncForced => Divergence::PredSyncForced,
        PredictionClass::Unconfirmed => Divergence::PredUnconfirmed,
    }
}

/// Shrinks a trace that produced an unconfirmed prediction to a minimal
/// one that still produces an unconfirmed prediction for the same
/// `(addr, earlier pc, later pc)` signature.
fn minimized_unconfirmed(
    trace: &Trace,
    base: DetectorConfig,
    seed: u64,
    sig: (u64, u32, u32),
) -> String {
    if trace.len() > diff::MINIMIZE_CAP {
        return trace.to_text();
    }
    let cfg = PredictConfig {
        seed,
        ..PredictConfig::default()
    };
    diff::minimize(trace, |cand| {
        predict(cand, base.geometry, &cfg).is_ok_and(|out| {
            out.predictions.iter().any(|p| {
                p.class == PredictionClass::Unconfirmed && (p.addr, p.earlier_pc, p.later_pc) == sig
            })
        })
    })
    .to_text()
}

/// Audits one trace through both schedule-space backends.
fn audit_one(
    name: String,
    case_index: usize,
    case_seed: u64,
    trace: &Trace,
    base: DetectorConfig,
    bound: u32,
) -> (ExploreRow, Vec<BugReport>) {
    let mut dynamic = build_detector(DetectorKind::Scord, base);
    trace
        .replay(&mut dynamic)
        .unwrap_or_else(|e| panic!("{name}: trace does not replay: {e}"));
    let dynamic_keys: BTreeSet<Key> = dynamic
        .races()
        .records()
        .iter()
        .map(|r| (r.addr, r.pc, r.who.block_slot, r.who.warp_slot))
        .collect();

    let out = explore(
        trace,
        base.geometry,
        &ExploreConfig {
            bound,
            seed: case_seed,
        },
    )
    .unwrap_or_else(|e| panic!("{name}: trace does not replay: {e}"));
    let pred = predict(
        trace,
        base.geometry,
        &PredictConfig {
            seed: case_seed,
            ..PredictConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: trace does not replay: {e}"));

    let mut counts: BTreeMap<Divergence, usize> = BTreeMap::new();
    let mut bugs = Vec::new();
    for p in &pred.predictions {
        *counts.entry(class_divergence(p.class)).or_default() += 1;
        if p.class == PredictionClass::Unconfirmed {
            bugs.push(BugReport {
                case_index,
                case_seed,
                detector: "predictive",
                missed: true,
                key: (
                    p.addr,
                    p.later_pc,
                    p.later_who.block_slot,
                    p.later_who.warp_slot,
                ),
                reproducer: minimized_unconfirmed(
                    trace,
                    base,
                    case_seed,
                    (p.addr, p.earlier_pc, p.later_pc),
                ),
            });
        }
    }

    let row = ExploreRow {
        name,
        events: trace.len(),
        segments: pred.segments,
        schedules: out.schedules_run,
        dynamic_keys: dynamic_keys.len(),
        baseline_keys: out.baseline.len(),
        explored_keys: out.found.len(),
        schedule_only: out.beyond_baseline().len(),
        beyond_dynamic: out
            .found
            .keys()
            .filter(|k| !dynamic_keys.contains(k))
            .count(),
        counts,
    };
    (row, bugs)
}

fn summarize(
    seed: u64,
    schedule_bound: u32,
    audited: Vec<(ExploreRow, Vec<BugReport>)>,
) -> ExploreSummary {
    let mut rows = Vec::new();
    let mut bugs = Vec::new();
    let mut interleavings = 0;
    let mut events_replayed = 0;
    for (row, b) in audited {
        interleavings += row.schedules;
        events_replayed += row.schedules * row.events;
        rows.push(row);
        bugs.extend(b);
    }
    ExploreSummary {
        seed,
        schedule_bound,
        rows,
        interleavings,
        events_replayed,
        bugs,
    }
}

/// Audits `cases` fuzzed traces — the identical corpus [`crate::diff`]
/// uses for `(seed, cases)` — through both schedule-space backends.
///
/// Deterministic in `(seed, cases, schedule_bound)` for any job count.
#[must_use]
pub fn run(seed: u64, cases: usize, schedule_bound: u32, jobs: Jobs) -> ExploreSummary {
    let specs = diff::case_specs(seed, cases);
    let audited = sweep("explore", jobs, &specs, |_, spec| {
        let trace = spec.cfg.generate(spec.seed);
        audit_one(
            format!("fuzz-{:03}", spec.index),
            spec.index,
            spec.seed,
            &trace,
            diff_config(),
            schedule_bound,
        )
    });
    summarize(seed, schedule_bound, audited)
}

/// Audits every captured microbenchmark trace through both
/// schedule-space backends (capture fidelity verified by the shared
/// [`crate::diff`] capture path).
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the microbenchmark whose simulation
/// failed.
pub fn micros(seed: u64, schedule_bound: u32, jobs: Jobs) -> Result<ExploreSummary, HarnessError> {
    let ms = all_micros();
    let audited: Vec<(ExploreRow, Vec<BugReport>)> = sweep("explore-micros", jobs, &ms, |_, m| {
        let cap = diff::capture_micro(m)?;
        Ok(audit_one(
            cap.name.to_string(),
            usize::MAX,
            seed,
            &cap.trace,
            cap.config,
            schedule_bound,
        ))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    Ok(summarize(seed, schedule_bound, audited))
}

/// Renders a schedule-space audit as a markdown table. Byte-identical
/// for any job count.
#[must_use]
pub fn to_markdown(summary: &ExploreSummary) -> String {
    let mut header = vec![
        "trace",
        "events",
        "segs",
        "scheds",
        "dyn",
        "oracle",
        "explored",
        "sched-only",
        "miss-dyn",
    ];
    header.extend(Divergence::PREDICTED.iter().map(|d| d.name()));
    let rows: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.name.clone(),
                r.events.to_string(),
                r.segments.to_string(),
                r.schedules.to_string(),
                r.dynamic_keys.to_string(),
                r.baseline_keys.to_string(),
                r.explored_keys.to_string(),
                r.schedule_only.to_string(),
                r.beyond_dynamic.to_string(),
            ];
            row.extend(
                Divergence::PREDICTED
                    .iter()
                    .map(|d| r.counts.get(d).copied().unwrap_or(0).to_string()),
            );
            row
        })
        .collect();
    let mut out = render_table(&header, &rows);
    out.push_str(&format!(
        "\ninterleavings: {} (bound {} per trace), events replayed: {}, \
         events per interleaving: {:.1}\n",
        summary.interleavings,
        summary.schedule_bound,
        summary.events_replayed,
        summary.events_replayed as f64 / summary.interleavings.max(1) as f64,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_core::{AccessKind, Accessor, AtomKind, MemAccess, TraceEvent};
    use scord_isa::Scope;

    #[test]
    fn fuzz_audit_confirms_every_prediction() {
        let s = run(7, 12, 24, Jobs::serial());
        assert_eq!(s.rows.len(), 12);
        assert!(
            s.bugs.is_empty(),
            "unconfirmed predictions:\n{}",
            s.bugs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        for r in &s.rows {
            assert_eq!(
                r.counts.get(&Divergence::PredUnconfirmed),
                None,
                "{}",
                r.name
            );
        }
    }

    #[test]
    fn explorer_beats_the_single_schedule_detector_on_the_corpus() {
        let s = run(7, 12, 24, Jobs::serial());
        assert!(
            s.schedule_only_total() > 0,
            "exploration must surface at least one race no single-schedule \
             judge saw: {s:?}"
        );
        assert!(
            s.beyond_dynamic_total() > 0,
            "exploration must surface at least one race the dynamic detector \
             missed: {s:?}"
        );
    }

    #[test]
    fn run_is_deterministic_across_job_counts() {
        let a = to_markdown(&run(11, 8, 16, Jobs::serial()));
        let b = to_markdown(&run(11, 8, 16, Jobs::new(4).unwrap()));
        assert_eq!(a, b);
    }

    #[test]
    fn publication_idiom_is_audited_as_schedule_sensitive() {
        // Clean as captured, racy in the schedule space: the explorer must
        // find the payload race and the predictor must confirm it.
        let p = Accessor {
            sm: 0,
            block_slot: 0,
            warp_slot: 0,
        };
        let c = Accessor {
            sm: 1,
            block_slot: 8,
            warp_slot: 0,
        };
        let trace: Trace = vec![
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Store,
                addr: 0x100,
                strong: true,
                pc: 1,
                who: p,
            }),
            TraceEvent::Fence {
                sm: 0,
                warp_slot: 0,
                scope: Scope::Device,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Atomic {
                    kind: AtomKind::Exch,
                    scope: Scope::Device,
                },
                addr: 0x200,
                strong: true,
                pc: 2,
                who: p,
            }),
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Atomic {
                    kind: AtomKind::Other,
                    scope: Scope::Device,
                },
                addr: 0x200,
                strong: true,
                pc: 3,
                who: c,
            }),
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Load,
                addr: 0x100,
                strong: true,
                pc: 4,
                who: c,
            }),
        ]
        .into_iter()
        .collect();
        let (row, bugs) = audit_one("publication".into(), 0, 5, &trace, diff_config(), 64);
        assert!(bugs.is_empty(), "{bugs:?}");
        assert_eq!(row.dynamic_keys, 0, "dynamic detector sees a clean run");
        assert_eq!(row.baseline_keys, 0, "oracle agrees on the captured order");
        assert!(
            row.schedule_only > 0,
            "explorer finds the latent race: {row:?}"
        );
        assert!(row.beyond_dynamic > 0);
        assert_eq!(
            row.counts.get(&Divergence::PredConfirmed),
            Some(&1),
            "the payload prediction is witness-confirmed: {row:?}"
        );
    }
}
