//! Table VI — races caught by the base design (no metadata caching) and by
//! ScoRD (cached metadata), per workload.

use scor_suite::micro::all_micros;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::{apps_racey, render_table, HarnessError};

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name ("Microbenchmarks" for the aggregated micro row).
    pub workload: String,
    /// Unique races the configuration injects.
    pub present: usize,
    /// Unique races the base design (4-byte full metadata) reports.
    pub base: usize,
    /// Unique races ScoRD (cached metadata) reports.
    pub scord: usize,
}

fn detect(app: &dyn scor_suite::Benchmark, mode: DetectionMode) -> Result<usize, HarnessError> {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
    app.run(&mut gpu)
        .map_err(|e| HarnessError::new(app.name(), e))?;
    Ok(gpu.races().expect("detection on").unique_count())
}

/// Runs every racey workload under both detector builds.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the workload whose simulation failed.
pub fn run(quick: bool) -> Result<Vec<Row>, HarnessError> {
    let mut rows = Vec::new();
    for app in apps_racey(quick) {
        rows.push(Row {
            workload: app.name().to_string(),
            present: app.expected_races(),
            base: detect(app.as_ref(), DetectionMode::base_design())?,
            scord: detect(app.as_ref(), DetectionMode::scord())?,
        });
    }
    // Microbenchmarks: one "race present" per racey test, detected when the
    // run reports at least one unique race.
    let mut present = 0;
    let mut base = 0;
    let mut scord = 0;
    for m in all_micros().into_iter().filter(|m| m.racey) {
        present += 1;
        for (mode, counter) in [
            (DetectionMode::base_design(), &mut base),
            (DetectionMode::scord(), &mut scord),
        ] {
            let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
            m.run(&mut gpu).map_err(|e| HarnessError::new(m.name, e))?;
            if gpu.races().expect("detection on").unique_count() > 0 {
                *counter += 1;
            }
        }
    }
    rows.push(Row {
        workload: "Microbenchmarks".into(),
        present,
        base,
        scord,
    });
    let total = |f: fn(&Row) -> usize| rows.iter().map(f).sum::<usize>();
    rows.push(Row {
        workload: "Total".into(),
        present: total(|r| r.present),
        base: total(|r| r.base),
        scord: total(|r| r.scord),
    });
    Ok(rows)
}

/// Renders Table VI.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.present.to_string(),
                r.base.to_string(),
                r.scord.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Workload",
            "Races present",
            "Base design w/o metadata caching",
            "ScoRD",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table6_detects_races_everywhere() {
        let rows = run(true).expect("quick workloads simulate cleanly");
        assert_eq!(rows.len(), 9, "7 apps + micros + total");
        let micro = &rows[7];
        assert_eq!(micro.present, 18);
        assert_eq!(micro.base, 18);
        assert_eq!(micro.scord, 18);
        for r in &rows[..7] {
            assert!(r.base > 0, "{} must detect something", r.workload);
        }
    }
}
