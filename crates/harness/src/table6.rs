//! Table VI — races caught by the base design (no metadata caching) and by
//! ScoRD (cached metadata), per workload.

use scor_suite::micro::{all_micros, Micro};
use scor_suite::Benchmark;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::exec::{sweep, Jobs};
use crate::{apps_racey, render_table, unique_races, HarnessError};

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name ("Microbenchmarks" for the aggregated micro row).
    pub workload: String,
    /// Unique races the configuration injects.
    pub present: usize,
    /// Unique races the base design (4-byte full metadata) reports.
    pub base: usize,
    /// Unique races ScoRD (cached metadata) reports.
    pub scord: usize,
}

/// One independent simulation of the sweep: a workload under one detector
/// build.
enum Cell<'a> {
    App(&'a dyn Benchmark, DetectionMode),
    Micro(&'a Micro, DetectionMode),
}

impl Cell<'_> {
    fn name(&self) -> &str {
        match self {
            Cell::App(app, _) => app.name(),
            Cell::Micro(m, _) => m.name,
        }
    }

    /// Unique races the cell's workload reports under its detector.
    fn detect(&self) -> Result<usize, HarnessError> {
        let mode = match self {
            Cell::App(_, mode) | Cell::Micro(_, mode) => *mode,
        };
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
        match self {
            Cell::App(app, _) => app.run(&mut gpu).map(|_| ()),
            Cell::Micro(m, _) => m.run(&mut gpu).map(|_| ()),
        }
        .map_err(|e| HarnessError::new(self.name(), e))?;
        unique_races(&gpu, self.name())
    }
}

/// Runs every racey workload under both detector builds, one (workload,
/// mode) cell per job, on up to `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the workload whose simulation failed.
pub fn run(quick: bool, jobs: Jobs) -> Result<Vec<Row>, HarnessError> {
    let apps = apps_racey(quick);
    let micros: Vec<Micro> = all_micros().into_iter().filter(|m| m.racey).collect();
    let modes = [DetectionMode::base_design(), DetectionMode::scord()];
    let mut cells: Vec<Cell> = Vec::new();
    for app in &apps {
        cells.extend(modes.map(|mode| Cell::App(app.as_ref(), mode)));
    }
    for m in &micros {
        cells.extend(modes.map(|mode| Cell::Micro(m, mode)));
    }
    let counts: Vec<usize> = sweep("table6", jobs, &cells, |_, cell| cell.detect())
        .into_iter()
        .collect::<Result<_, _>>()?;

    // Fold in cell order: apps come first (base/scord pairs), then the
    // racey micros (one "race present" each, detected when the run reports
    // at least one unique race).
    let mut rows = Vec::new();
    let (app_counts, micro_counts) = counts.split_at(2 * apps.len());
    for (app, pair) in apps.iter().zip(app_counts.chunks_exact(2)) {
        rows.push(Row {
            workload: app.name().to_string(),
            present: app.expected_races(),
            base: pair[0],
            scord: pair[1],
        });
    }
    rows.push(Row {
        workload: "Microbenchmarks".into(),
        present: micros.len(),
        base: micro_counts.chunks_exact(2).filter(|p| p[0] > 0).count(),
        scord: micro_counts.chunks_exact(2).filter(|p| p[1] > 0).count(),
    });
    let total = |f: fn(&Row) -> usize| rows.iter().map(f).sum::<usize>();
    rows.push(Row {
        workload: "Total".into(),
        present: total(|r| r.present),
        base: total(|r| r.base),
        scord: total(|r| r.scord),
    });
    Ok(rows)
}

/// Renders Table VI.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.present.to_string(),
                r.base.to_string(),
                r.scord.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Workload",
            "Races present",
            "Base design w/o metadata caching",
            "ScoRD",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table6_detects_races_everywhere() {
        let rows = run(true, Jobs::serial()).expect("quick workloads simulate cleanly");
        assert_eq!(rows.len(), 9, "7 apps + micros + total");
        let micro = &rows[7];
        assert_eq!(micro.present, 18);
        assert_eq!(micro.base, 18);
        assert_eq!(micro.scord, 18);
        for r in &rows[..7] {
            assert!(r.base > 0, "{} must detect something", r.workload);
        }
    }
}
