//! Figure 9 — DRAM accesses normalized to no race detection, split into
//! metadata and non-metadata traffic.
//!
//! The paper's key observation: the base design's metadata can multiply
//! DRAM traffic, while the software cache touches 1/16th of the unique
//! metadata, cutting both the metadata accesses and the L2 contention they
//! cause.

use scord_sim::DetectionMode;

use crate::exec::{sweep, Jobs};
use crate::{apps, render_table, run_app, MemoryVariant};

/// One application's DRAM-traffic breakdown (all values normalized to the
/// no-detection access count).
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// No-detection DRAM accesses (the normalization denominator).
    pub off_accesses: u64,
    /// Base design: non-metadata fraction.
    pub base_data: f64,
    /// Base design: metadata fraction.
    pub base_md: f64,
    /// ScoRD: non-metadata fraction.
    pub scord_data: f64,
    /// ScoRD: metadata fraction.
    pub scord_md: f64,
}

/// Runs each application and splits its DRAM traffic, one (application,
/// mode) cell per job, on up to `jobs` worker threads.
#[must_use]
pub fn run(quick: bool, jobs: Jobs) -> Vec<Row> {
    let apps = apps(quick);
    let modes = [
        DetectionMode::Off,
        DetectionMode::base_design(),
        DetectionMode::scord(),
    ];
    let cells: Vec<(usize, DetectionMode)> = (0..apps.len())
        .flat_map(|a| modes.map(|m| (a, m)))
        .collect();
    let stats = sweep("fig9", jobs, &cells, |_, &(a, mode)| {
        run_app(apps[a].as_ref(), mode, MemoryVariant::Default)
    });
    apps.iter()
        .zip(stats.chunks_exact(modes.len()))
        .map(|(app, s)| {
            let (off, base, scord) = (&s[0], &s[1], &s[2]);
            let denom = off.dram.total().max(1) as f64;
            Row {
                workload: app.name().to_string(),
                off_accesses: off.dram.total(),
                base_data: base.dram.data() as f64 / denom,
                base_md: base.dram.metadata() as f64 / denom,
                scord_data: scord.dram.data() as f64 / denom,
                scord_md: scord.dram.metadata() as f64 / denom,
            }
        })
        .collect()
}

/// Renders Figure 9 as a table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.off_accesses.to_string(),
                format!("{:.2}", r.base_data),
                format!("{:.2}", r.base_md),
                format!("{:.2}", r.base_data + r.base_md),
                format!("{:.2}", r.scord_data),
                format!("{:.2}", r.scord_md),
                format!("{:.2}", r.scord_data + r.scord_md),
            ]
        })
        .collect();
    render_table(
        &[
            "Workload",
            "No-detection DRAM accesses",
            "Base data",
            "Base metadata",
            "Base total",
            "ScoRD data",
            "ScoRD metadata",
            "ScoRD total",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_traffic_exists_and_caching_reduces_it() {
        let rows = run(true, Jobs::serial());
        let base_md: f64 = rows.iter().map(|r| r.base_md).sum();
        let scord_md: f64 = rows.iter().map(|r| r.scord_md).sum();
        assert!(base_md > 0.0, "base design produces metadata traffic");
        assert!(
            scord_md < base_md,
            "caching reduces metadata DRAM traffic: {scord_md:.2} vs {base_md:.2}"
        );
        for r in &rows {
            assert!(
                r.base_data >= 0.99,
                "{}: data traffic should not shrink under detection ({:.2})",
                r.workload,
                r.base_data
            );
        }
    }
}
