//! # scord-harness
//!
//! Experiment harness regenerating every table and figure of the ScoRD
//! paper's evaluation (§V):
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — microbenchmark suite and detection results |
//! | [`table2`] | Table II — application suite inventory |
//! | [`table5`] | Table V — default hardware configuration |
//! | [`table6`] | Table VI — races caught by base design vs ScoRD |
//! | [`table7`] | Table VII — false positives vs metadata granularity |
//! | [`fig8`] | Figure 8 — execution-cycle overhead |
//! | [`fig9`] | Figure 9 — DRAM accesses, metadata vs data |
//! | [`fig10`] | Figure 10 — overhead attribution (LHD / NOC / MD) |
//! | [`fig11`] | Figure 11 — sensitivity to L2 size and memory bandwidth |
//! | [`table8`] | Table VIII — detector capability comparison |
//! | [`ablations`] | Design-choice ablations (lock-table size, cache ratio, detector throughput) |
//! | [`faults`] | Degradation audit under fault injection (robustness, beyond the paper) |
//! | [`diff`] | Differential race-oracle audit: fuzzed + captured traces vs the exact detector |
//! | [`explore`] | Schedule-space audit: predictive detector + bounded interleaving explorer, oracle-judged |
//! | [`perf`] | In-tree perf basket; appends each run to `BENCH_sim.json` at the repo root |
//! | [`paper_scale`] | Paper-scale tier: full-size inputs, sampled-SM extrapolation, footprint accounting |
//! | [`footprint`] | Host memory-footprint snapshots (`/proc/self/status` peak RSS) |
//! | [`serve_bench`] | Race-detection service: long-lived server, load generator + robustness probes, `BENCH_serve.json` |
//!
//! Every module exposes `run(quick, jobs) -> Vec<Row>` plus a `to_markdown`
//! renderer; the `run-experiments` binary drives them. `quick = true`
//! shrinks the workloads for fast CI runs; `quick = false` uses the suite's
//! default (paper-calibrated) sizes. `jobs` sets the worker-thread budget
//! ([`exec::Jobs`]); every sweep is deterministic in its inputs, so
//! `Jobs::serial()` and `Jobs::new(n)` produce byte-identical tables.

#![warn(missing_docs)]

pub mod ablations;
pub mod diff;
mod error;
pub mod exec;
pub mod explore;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod footprint;
mod markdown;
pub mod paper_scale;
pub mod perf;
pub mod serve_bench;
pub mod table1;
pub mod table2;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
mod workloads;

pub(crate) use error::unique_races;
pub use error::{HarnessError, HarnessErrorKind};
pub use exec::Jobs;
pub use markdown::render_table;
pub use workloads::{apps, apps_racey, gpu_for, run_app, MemoryVariant};
