//! Table I — the microbenchmark suite, with measured detection results.
//!
//! The paper's Table I describes the suite (2 racey + 4 non-racey fence
//! tests, 4 + 5 atomics, 12 + 5 lock/unlock). This experiment additionally
//! runs every microbenchmark under ScoRD and reports how many racey ones
//! were detected and how many non-racey ones produced false positives
//! (expected: all and none, respectively).

use scor_suite::micro::{all_micros, MicroCategory};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::exec::{sweep, Jobs};
use crate::{render_table, unique_races, HarnessError};

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Row {
    /// Synchronization family.
    pub category: MicroCategory,
    /// Racey microbenchmarks in the family.
    pub racey: usize,
    /// Racey microbenchmarks in which ScoRD reported at least one race.
    pub detected: usize,
    /// Non-racey microbenchmarks in the family.
    pub non_racey: usize,
    /// Non-racey microbenchmarks that produced reports (false positives).
    pub false_positives: usize,
}

/// Runs the full microbenchmark suite under ScoRD, one job per
/// microbenchmark, on up to `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the microbenchmark whose simulation
/// failed (deadlock, watchdog timeout, malformed detector event).
pub fn run(jobs: Jobs) -> Result<Vec<Row>, HarnessError> {
    let micros = all_micros();
    let races: Vec<usize> = sweep("table1", jobs, &micros, |_, m| {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        m.run(&mut gpu).map_err(|e| HarnessError::new(m.name, e))?;
        unique_races(&gpu, m.name)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let cats = [
        MicroCategory::Fence,
        MicroCategory::Atomics,
        MicroCategory::Lock,
    ];
    let mut rows: Vec<Row> = cats
        .iter()
        .map(|&category| Row {
            category,
            racey: 0,
            detected: 0,
            non_racey: 0,
            false_positives: 0,
        })
        .collect();
    for (m, races) in micros.iter().zip(races) {
        let row = rows
            .iter_mut()
            .find(|r| r.category == m.category)
            .expect("category row exists");
        if m.racey {
            row.racey += 1;
            if races > 0 {
                row.detected += 1;
            }
        } else {
            row.non_racey += 1;
            if races > 0 {
                row.false_positives += 1;
            }
        }
    }
    Ok(rows)
}

/// Renders the measured Table I.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.name().to_string(),
                r.racey.to_string(),
                r.detected.to_string(),
                r.non_racey.to_string(),
                r.false_positives.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Sync. type",
            "Racey tests",
            "Detected",
            "Non-racey tests",
            "False positives",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_detects_all_racey_with_no_false_positives() {
        let rows = run(Jobs::serial()).expect("micro suite simulates cleanly");
        let (racey, detected, nonracey, fps) = rows.iter().fold((0, 0, 0, 0), |a, r| {
            (
                a.0 + r.racey,
                a.1 + r.detected,
                a.2 + r.non_racey,
                a.3 + r.false_positives,
            )
        });
        assert_eq!(racey, 18, "Table I shape");
        assert_eq!(nonracey, 14);
        assert_eq!(detected, 18, "every racey microbenchmark is caught");
        assert_eq!(fps, 0, "no false positives on non-racey tests");
    }
}
