//! Workload construction and run helpers shared by every experiment.

use scor_suite::apps::{
    Convolution1D, GraphColoring, GraphConnectivity, MatMul, Reduction, Rule110, Uts,
};
use scor_suite::Benchmark;
use scord_sim::{DetectionMode, Gpu, GpuConfig, SimStats};

/// Figure 11's memory-system variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryVariant {
    /// Half the L2 and channels.
    Low,
    /// Table V.
    Default,
    /// Double the L2 and channels.
    High,
}

impl MemoryVariant {
    /// All three variants, in Figure 11's order.
    pub const ALL: [MemoryVariant; 3] = [
        MemoryVariant::Low,
        MemoryVariant::Default,
        MemoryVariant::High,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemoryVariant::Low => "low",
            MemoryVariant::Default => "default",
            MemoryVariant::High => "high",
        }
    }

    /// The corresponding GPU configuration.
    #[must_use]
    pub fn config(self) -> GpuConfig {
        match self {
            MemoryVariant::Low => GpuConfig::low_memory(),
            MemoryVariant::Default => GpuConfig::paper_default(),
            MemoryVariant::High => GpuConfig::high_memory(),
        }
    }
}

/// Builds a GPU for `mode` on the given memory variant.
#[must_use]
pub fn gpu_for(mode: DetectionMode, variant: MemoryVariant) -> Gpu {
    Gpu::new(variant.config().with_detection(mode))
}

fn quick_mm() -> MatMul {
    MatMul {
        m: 16,
        k: 32,
        n: 8,
        k_slices: 2,
        threads_per_block: 64,
        ..MatMul::default()
    }
}

fn quick_red() -> Reduction {
    Reduction {
        elements: 4096,
        blocks: 8,
        threads_per_block: 64,
        ..Reduction::default()
    }
}

fn quick_r110() -> Rule110 {
    Rule110 {
        cells: 2048,
        steps: 4,
        blocks: 8,
        threads_per_block: 64,
        ..Rule110::default()
    }
}

fn quick_gcol() -> GraphColoring {
    GraphColoring {
        vertices: 256,
        edges: 512,
        blocks: 4,
        threads_per_block: 32,
        ..GraphColoring::default()
    }
}

fn quick_gcon() -> GraphConnectivity {
    GraphConnectivity {
        vertices: 256,
        edges: 384,
        blocks: 4,
        threads_per_block: 32,
        ..GraphConnectivity::default()
    }
}

fn quick_1dc() -> Convolution1D {
    Convolution1D {
        elements: 1024,
        ..Convolution1D::default()
    }
}

fn quick_uts() -> Uts {
    Uts {
        roots_per_block: 1,
        max_depth: 7,
        blocks: 4,
        threads_per_block: 32,
        ..Uts::default()
    }
}

/// The seven applications, correctly synchronized.
#[must_use]
pub fn apps(quick: bool) -> Vec<Box<dyn Benchmark>> {
    if quick {
        vec![
            Box::new(quick_mm()),
            Box::new(quick_red()),
            Box::new(quick_r110()),
            Box::new(quick_gcol()),
            Box::new(quick_gcon()),
            Box::new(quick_1dc()),
            Box::new(quick_uts()),
        ]
    } else {
        scor_suite::apps::all_apps()
    }
}

/// The seven applications in their canonical racey configurations.
///
/// The per-application unique-race budgets (Table VI) are calibrated at the
/// *default* sizes; quick configurations detect races too but their unique
/// counts can differ (which instruction observes which is
/// interleaving-dependent).
#[must_use]
pub fn apps_racey(quick: bool) -> Vec<Box<dyn Benchmark>> {
    if quick {
        vec![
            Box::new(MatMul {
                races: MatMul::racey().races,
                ..quick_mm()
            }),
            Box::new(Reduction {
                races: Reduction::racey().races,
                ..quick_red()
            }),
            Box::new(Rule110 {
                races: Rule110::racey().races,
                ..quick_r110()
            }),
            Box::new(GraphColoring {
                races: GraphColoring::racey().races,
                ..quick_gcol()
            }),
            Box::new(GraphConnectivity {
                races: GraphConnectivity::racey().races,
                ..quick_gcon()
            }),
            Box::new(Convolution1D {
                races: Convolution1D::racey().races,
                ..quick_1dc()
            }),
            Box::new(Uts {
                races: Uts::racey().races,
                ..quick_uts()
            }),
        ]
    } else {
        scor_suite::apps::all_apps_racey()
    }
}

/// Runs one benchmark on a fresh GPU, returning its stats and the unique
/// race count.
///
/// # Panics
///
/// Panics if the simulation fails — experiment workloads are expected to be
/// deadlock-free.
#[must_use]
pub fn run_app(app: &dyn Benchmark, mode: DetectionMode, variant: MemoryVariant) -> SimStats {
    let mut gpu = gpu_for(mode, variant);
    let run = app
        .run(&mut gpu)
        .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
    assert!(
        run.output_valid != Some(false),
        "{} produced wrong output",
        app.name()
    );
    run.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_suites_have_seven_apps() {
        assert_eq!(apps(true).len(), 7);
        assert_eq!(apps(false).len(), 7);
        assert_eq!(apps_racey(true).len(), 7);
        let names: Vec<_> = apps(true).iter().map(|a| a.name()).collect();
        assert_eq!(names, ["MM", "RED", "R110", "GCOL", "GCON", "1DC", "UTS"]);
    }

    #[test]
    fn memory_variants_scale() {
        assert!(MemoryVariant::Low.config().l2_bytes < MemoryVariant::High.config().l2_bytes);
        assert_eq!(MemoryVariant::Default.config().l2_bytes, 1536 << 10);
    }

    #[test]
    fn run_app_quick_smoke() {
        let stats = run_app(
            apps(true)[1].as_ref(), // RED
            DetectionMode::Off,
            MemoryVariant::Default,
        );
        assert!(stats.cycles > 0);
        assert_eq!(stats.unique_races, 0);
    }
}
