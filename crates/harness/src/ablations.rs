//! Ablations of ScoRD's design choices (beyond the paper's own tables):
//!
//! * **lock-table size** — the paper picks a 4-entry circular buffer per
//!   warp (§IV); fewer entries evict held locks and lose lockset races;
//! * **metadata-cache ratio** — the paper picks one entry per 16 granules
//!   (12.5% overhead); denser caches trade memory for fewer
//!   aliasing-induced false negatives;
//! * **detector throughput** — how many lane accesses the race-detector
//!   unit retires per cycle; too few and L1 hits stall behind the
//!   detection queue (the LHD overhead).

use scor_suite::micro::{all_micros, Micro, MicroCategory};
use scord_core::{DetectorConfig, ScordDetector, StoreKind};
use scord_sim::{DetectionMode, Gpu, GpuConfig, OverheadToggles};

use crate::exec::{sweep, Jobs};
use crate::{apps, apps_racey, render_table, unique_races, HarnessError, MemoryVariant};

/// Lock-table-size ablation: detection coverage over the 12 racey
/// lock/unlock microbenchmarks.
#[derive(Debug, Clone)]
pub struct LockTableRow {
    /// Entries per warp lock table.
    pub entries: usize,
    /// Racey lock microbenchmarks detected (out of 12).
    pub detected: usize,
    /// False positives across the non-racey lock microbenchmarks.
    pub false_positives: usize,
}

/// Sweeps the per-warp lock-table capacity, one (capacity, microbenchmark)
/// cell per job, on up to `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the microbenchmark whose simulation
/// failed.
pub fn lock_table(entries: &[usize], jobs: Jobs) -> Result<Vec<LockTableRow>, HarnessError> {
    let micros: Vec<Micro> = all_micros()
        .into_iter()
        .filter(|m| m.category == MicroCategory::Lock)
        .collect();
    let cells: Vec<(usize, &Micro)> = entries
        .iter()
        .flat_map(|&n| micros.iter().map(move |m| (n, m)))
        .collect();
    let races: Vec<usize> = sweep("ablation:lock_table", jobs, &cells, |_, &(n, m)| {
        let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
        let mut gpu = Gpu::with_detector_factory(cfg, |dc| {
            Box::new(ScordDetector::new(DetectorConfig {
                lock_table_entries: n,
                ..dc
            }))
        });
        m.run(&mut gpu).map_err(|e| HarnessError::new(m.name, e))?;
        unique_races(&gpu, m.name)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    Ok(entries
        .iter()
        .zip(races.chunks_exact(micros.len()))
        .map(|(&n, races)| {
            let hit = |racey: bool| {
                micros
                    .iter()
                    .zip(races)
                    .filter(|(m, &r)| m.racey == racey && r > 0)
                    .count()
            };
            LockTableRow {
                entries: n,
                detected: hit(true),
                false_positives: hit(false),
            }
        })
        .collect())
}

/// Metadata-cache-ratio ablation: races caught vs memory overhead.
#[derive(Debug, Clone)]
pub struct CacheRatioRow {
    /// Granules per cached metadata entry (1 = the full base design).
    pub ratio: u64,
    /// Metadata overhead as a percentage of device memory.
    pub overhead_pct: f64,
    /// Unique races reported across the racey applications.
    pub races: usize,
    /// Unique races the applications inject.
    pub present: usize,
}

/// Sweeps the software cache's aliasing ratio over the racey applications,
/// one (ratio, application) cell per job, on up to `jobs` worker threads.
#[must_use]
pub fn cache_ratio(quick: bool, ratios: &[u64], jobs: Jobs) -> Vec<CacheRatioRow> {
    let store_for = |ratio: u64| {
        if ratio == 1 {
            StoreKind::Full { granularity: 4 }
        } else {
            StoreKind::Cached { ratio }
        }
    };
    let apps = apps_racey(quick);
    let cells: Vec<(u64, usize)> = ratios
        .iter()
        .flat_map(|&ratio| (0..apps.len()).map(move |a| (ratio, a)))
        .collect();
    let counts = sweep("ablation:cache_ratio", jobs, &cells, |_, &(ratio, a)| {
        let mode = DetectionMode::On {
            store: store_for(ratio),
            toggles: OverheadToggles::all(),
        };
        let app = apps[a].as_ref();
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
        app.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
        gpu.races().expect("detection on").unique_count()
    });
    ratios
        .iter()
        .zip(counts.chunks_exact(apps.len()))
        .map(|(&ratio, races)| CacheRatioRow {
            ratio,
            overhead_pct: store_for(ratio).overhead_fraction() * 100.0,
            races: races.iter().sum(),
            present: apps.iter().map(|a| a.expected_races()).sum(),
        })
        .collect()
}

/// Detector-throughput ablation: overhead vs the unit's service rate.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Lane accesses the detector retires per cycle.
    pub lanes_per_cycle: u32,
    /// Geometric-mean ScoRD overhead across the applications.
    pub geomean_overhead: f64,
}

/// Sweeps the race-detector unit's throughput, one (rate, application)
/// cell per job — each cell runs its off + ScoRD pair — on up to `jobs`
/// worker threads.
#[must_use]
pub fn throughput(quick: bool, rates: &[u32], jobs: Jobs) -> Vec<ThroughputRow> {
    let apps = apps(quick);
    let cells: Vec<(u32, usize)> = rates
        .iter()
        .flat_map(|&rate| (0..apps.len()).map(move |a| (rate, a)))
        .collect();
    let logs = sweep("ablation:throughput", jobs, &cells, |_, &(rate, a)| {
        let app = apps[a].as_ref();
        let run_with = |mode: DetectionMode| {
            let mut cfg = MemoryVariant::Default.config().with_detection(mode);
            cfg.detector_throughput = rate;
            let mut gpu = Gpu::new(cfg);
            let run = app
                .run(&mut gpu)
                .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
            run.stats.cycles
        };
        let off = run_with(DetectionMode::Off);
        let on = run_with(DetectionMode::scord());
        (on as f64 / off as f64).ln()
    });
    rates
        .iter()
        .zip(logs.chunks_exact(apps.len()))
        .map(|(&rate, logs)| ThroughputRow {
            lanes_per_cycle: rate,
            geomean_overhead: (logs.iter().sum::<f64>() / logs.len() as f64).exp(),
        })
        .collect()
}

/// Renders all three ablations.
#[must_use]
pub fn to_markdown(
    lock: &[LockTableRow],
    ratio: &[CacheRatioRow],
    rate: &[ThroughputRow],
) -> String {
    let mut out = String::from("### Lock-table size (racey lock micros detected)\n\n");
    out.push_str(&render_table(
        &["Entries/warp", "Detected (of 12)", "False positives"],
        &lock
            .iter()
            .map(|r| {
                vec![
                    r.entries.to_string(),
                    r.detected.to_string(),
                    r.false_positives.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\n### Metadata cache ratio (application races caught)\n\n");
    out.push_str(&render_table(
        &["Granules/entry", "Overhead", "Races caught", "Present"],
        &ratio
            .iter()
            .map(|r| {
                vec![
                    r.ratio.to_string(),
                    format!("{:.1}%", r.overhead_pct),
                    r.races.to_string(),
                    r.present.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\n### Detector throughput (geomean overhead)\n\n");
    out.push_str(&render_table(
        &["Lanes/cycle", "Overhead"],
        &rate
            .iter()
            .map(|r| {
                vec![
                    r.lanes_per_cycle.to_string(),
                    format!("{:.3}", r.geomean_overhead),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_table_coverage_grows_with_entries() {
        let rows = lock_table(&[1, 4], Jobs::serial()).expect("lock micros simulate cleanly");
        assert!(rows[1].detected >= rows[0].detected);
        assert_eq!(rows[1].detected, 12, "the paper's 4 entries suffice");
        assert_eq!(rows[0].false_positives, 0);
        assert_eq!(rows[1].false_positives, 0);
    }

    #[test]
    fn denser_metadata_caches_catch_at_least_as_much() {
        let rows = cache_ratio(true, &[1, 16], Jobs::serial());
        assert!(
            rows[0].races >= rows[1].races,
            "the full store cannot catch fewer races than the cache"
        );
        assert!(rows[0].overhead_pct > rows[1].overhead_pct);
    }

    #[test]
    fn starved_detector_costs_more() {
        let rows = throughput(true, &[2, 32], Jobs::serial());
        assert!(
            rows[0].geomean_overhead >= rows[1].geomean_overhead - 1e-6,
            "fewer lanes per cycle cannot be cheaper: {rows:?}"
        );
    }
}
