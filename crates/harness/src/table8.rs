//! Table VIII — detector capability comparison, measured.
//!
//! The paper's table is qualitative; here each detector model (full ScoRD,
//! a Barracuda/CURD-like model honouring fence scopes but not atomic
//! scopes, and a HAccRG-like scope-blind model) is attached to the full
//! simulator and run over the racey microbenchmarks, grouped by the kind of
//! bug each class of detector should or should not see.

use scor_suite::micro::{all_micros, Micro, MicroCategory};
use scord_core::{build_detector, DetectorKind};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::exec::{sweep, Jobs};
use crate::{render_table, unique_races, HarnessError};

/// One detector's measured detection coverage.
#[derive(Debug, Clone)]
pub struct Row {
    /// Detector model.
    pub detector: DetectorKind,
    /// Racey fence microbenchmarks detected (of the total).
    pub fence: (usize, usize),
    /// Racey atomics microbenchmarks detected.
    pub atomics: (usize, usize),
    /// Racey lock microbenchmarks detected.
    pub lock: (usize, usize),
    /// False positives across the 14 non-racey microbenchmarks.
    pub false_positives: usize,
}

fn run_micro_with(kind: DetectorKind, m: &Micro) -> Result<usize, HarnessError> {
    let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
    let mut gpu = Gpu::with_detector_factory(cfg, |dc| Box::new(build_detector(kind, dc)));
    m.run(&mut gpu).map_err(|e| HarnessError::new(m.name, e))?;
    unique_races(&gpu, m.name)
}

/// Runs all 32 microbenchmarks under each detector model, one (detector,
/// microbenchmark) cell per job, on up to `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the microbenchmark whose simulation
/// failed.
pub fn run(jobs: Jobs) -> Result<Vec<Row>, HarnessError> {
    let micros = all_micros();
    let cells: Vec<(DetectorKind, &Micro)> = DetectorKind::ALL
        .iter()
        .flat_map(|&kind| micros.iter().map(move |m| (kind, m)))
        .collect();
    let counts: Vec<usize> = sweep("table8", jobs, &cells, |_, &(kind, m)| {
        run_micro_with(kind, m)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    Ok(DetectorKind::ALL
        .iter()
        .zip(counts.chunks_exact(micros.len()))
        .map(|(&kind, races)| {
            let mut row = Row {
                detector: kind,
                fence: (0, 0),
                atomics: (0, 0),
                lock: (0, 0),
                false_positives: 0,
            };
            for (m, &races) in micros.iter().zip(races) {
                if m.racey {
                    let slot = match m.category {
                        MicroCategory::Fence => &mut row.fence,
                        MicroCategory::Atomics => &mut row.atomics,
                        MicroCategory::Lock => &mut row.lock,
                    };
                    slot.1 += 1;
                    if races > 0 {
                        slot.0 += 1;
                    }
                } else if races > 0 {
                    row.false_positives += 1;
                }
            }
            row
        })
        .collect())
}

/// Renders the measured Table VIII.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.detector.name().to_string(),
                format!("{}/{}", r.fence.0, r.fence.1),
                format!("{}/{}", r.atomics.0, r.atomics.1),
                format!("{}/{}", r.lock.0, r.lock.1),
                r.false_positives.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Detector",
            "Fence races",
            "Atomic races",
            "Lock races",
            "False positives",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scord_dominates_the_baselines() {
        let rows = run(Jobs::serial()).expect("micro suite simulates cleanly");
        let find = |kind: DetectorKind| rows.iter().find(|r| r.detector == kind).unwrap();
        let scord = find(DetectorKind::Scord);
        let barracuda = find(DetectorKind::BarracudaLike);
        let haccrg = find(DetectorKind::HaccrgLike);

        assert_eq!(scord.fence, (2, 2));
        assert_eq!(scord.atomics, (4, 4));
        assert_eq!(scord.lock, (12, 12));

        assert!(
            barracuda.atomics.0 < scord.atomics.0,
            "Barracuda-like misses scoped-atomic races"
        );
        assert!(
            haccrg.fence.0 < scord.fence.0,
            "HAccRG-like misses scoped-fence races"
        );
        assert!(haccrg.atomics.0 < scord.atomics.0);
        assert!(haccrg.lock.0 < scord.lock.0, "scoped-lock races missed");
    }
}
