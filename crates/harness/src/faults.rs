//! Degradation audit under fault injection (robustness, beyond the paper).
//!
//! Sweeps [`FaultKind`]s × injection rates over the full workload set — the
//! 32 microbenchmarks plus the seven applications in both their racey and
//! correctly-synchronized configurations — and measures how detection
//! quality degrades:
//!
//! * **recall** — races still detected on the racey configurations, against
//!   the known race budget (Table VI's 44 at the paper-calibrated sizes);
//! * **precision** — false positives appearing on configurations that are
//!   correctly synchronized (non-racey micros, correct apps);
//! * **liveness** — every cell must finish without panicking; watchdog
//!   timeouts and detector rejections are *counted*, never propagated.
//!
//! The zero-fault row runs the identical pipeline with no plan armed and
//! must reproduce [`crate::table6`]'s ScoRD column — the audit's baseline
//! is the paper's result, not a separate code path.
//!
//! Everything is deterministic in the sweep seed: the same seed yields the
//! same injected faults and therefore the same table, byte for byte.

use scor_suite::micro::all_micros;
use scord_core::{FaultKind, FaultPlan};
use scord_sim::{DetectionMode, Gpu, GpuConfig, SimStats};

use crate::{apps, apps_racey, render_table, HarnessError};

/// The default injection rates swept by `run-experiments faults`, in parts
/// per million: 0.1%, 1%, 10% of injection opportunities.
pub const DEFAULT_RATES: [u32; 3] = [1_000, 10_000, 100_000];

/// One cell of the degradation audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The fault kind injected; `None` for the zero-fault baseline row.
    pub fault: Option<FaultKind>,
    /// Injection rate in parts per million (0 for the baseline row).
    pub rate_ppm: u32,
    /// Races detected: unique races over the racey applications plus one
    /// per racey microbenchmark that still reports something.
    pub detected: usize,
    /// Races known to be present (the racey apps' budgets + 18 racey
    /// micros) — Table VI's "races present" at the same scale.
    pub present: usize,
    /// Correctly-synchronized workloads that reported at least one race.
    pub false_positives: usize,
    /// Workloads whose simulation ended in a [`scord_sim::SimError`]
    /// (watchdog timeout, detector rejection) instead of completing.
    pub sim_errors: usize,
    /// Total faults actually injected across the cell's workloads.
    pub faults_injected: u64,
}

impl Row {
    /// Display label for the cell's fault kind.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.fault.map_or("none", FaultKind::name)
    }
}

fn gpu(plan: Option<FaultPlan>) -> Gpu {
    let mut cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    Gpu::new(cfg)
}

/// Runs one workload, folding its outcome into `row`. With a plan armed,
/// simulation failures are counted in `sim_errors`; without one (`strict`),
/// they propagate — the baseline must be clean.
fn fold(
    row: &mut Row,
    strict: bool,
    name: &str,
    racey_budget: Option<usize>,
    outcome: Result<(SimStats, usize), scord_sim::SimError>,
) -> Result<(), HarnessError> {
    match outcome {
        Ok((stats, races)) => {
            row.faults_injected += stats.faults_injected;
            match racey_budget {
                // Racey micro: budget 1, detected when anything is reported.
                Some(1) => {
                    if races > 0 {
                        row.detected += 1;
                    }
                }
                // Racey app: raw unique count, like Table VI's ScoRD column.
                Some(_) => row.detected += races,
                // Correct configuration: any report is a false positive.
                None => {
                    if races > 0 {
                        row.false_positives += 1;
                    }
                }
            }
        }
        Err(e) if strict => return Err(HarnessError::new(name, e)),
        Err(_) => row.sim_errors += 1,
    }
    Ok(())
}

/// Runs every workload under `plan` (or fault-free when `None`).
fn audit_cell(quick: bool, plan: Option<FaultPlan>) -> Result<Row, HarnessError> {
    let strict = plan.is_none();
    let mut row = Row {
        fault: plan.map(|p| {
            *FaultKind::ALL
                .iter()
                .find(|k| p.kinds.contains(**k))
                .expect("plan names at least one kind")
        }),
        rate_ppm: plan.map_or(0, |p| p.rate_ppm),
        detected: 0,
        present: 0,
        false_positives: 0,
        sim_errors: 0,
        faults_injected: 0,
    };
    for m in all_micros() {
        let mut g = gpu(plan);
        let outcome = m.run(&mut g).map(|stats| {
            let races = g.races().expect("detection on").unique_count();
            (stats, races)
        });
        let budget = if m.racey {
            row.present += 1;
            Some(1)
        } else {
            None
        };
        fold(&mut row, strict, m.name, budget, outcome)?;
    }
    for app in apps_racey(quick) {
        row.present += app.expected_races();
        let mut g = gpu(plan);
        let outcome = app.run(&mut g).map(|run| {
            let races = g.races().expect("detection on").unique_count();
            (run.stats, races)
        });
        fold(
            &mut row,
            strict,
            app.name(),
            Some(app.expected_races()),
            outcome,
        )?;
    }
    for app in apps(quick) {
        let mut g = gpu(plan);
        let outcome = app.run(&mut g).map(|run| {
            let races = g.races().expect("detection on").unique_count();
            (run.stats, races)
        });
        fold(&mut row, strict, app.name(), None, outcome)?;
    }
    Ok(row)
}

/// Sweeps the given fault kinds × rates (no baseline row).
///
/// # Errors
///
/// Returns a [`HarnessError`] only for infrastructure failures; faulty
/// cells count their simulation errors instead of propagating them.
pub fn sweep(
    quick: bool,
    seed: u64,
    kinds: &[FaultKind],
    rates: &[u32],
) -> Result<Vec<Row>, HarnessError> {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &rate in rates {
            rows.push(audit_cell(
                quick,
                Some(FaultPlan::single(kind, rate, seed)),
            )?);
        }
    }
    Ok(rows)
}

/// The full degradation audit: the fault-free baseline row followed by
/// every fault kind at every rate in `rates`.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the workload that failed in the
/// fault-free baseline (which must be clean); faulty cells never error.
pub fn run(quick: bool, seed: u64, rates: &[u32]) -> Result<Vec<Row>, HarnessError> {
    let mut rows = vec![audit_cell(quick, None)?];
    rows.extend(sweep(quick, seed, &FaultKind::ALL, rates)?);
    Ok(rows)
}

/// Renders the audit as a markdown table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label().to_string(),
                if r.rate_ppm == 0 {
                    "—".into()
                } else {
                    format!("{:.2}%", f64::from(r.rate_ppm) / 10_000.0)
                },
                format!("{}/{}", r.detected, r.present),
                r.false_positives.to_string(),
                r.sim_errors.to_string(),
                r.faults_injected.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Fault",
            "Rate",
            "Detected/present",
            "False positives",
            "Sim errors",
            "Faults injected",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The zero-fault baseline is Table VI in disguise: same workloads,
    /// same detector, so the totals must agree exactly.
    #[test]
    fn zero_fault_row_reproduces_table6() {
        let baseline = audit_cell(true, None).expect("baseline is clean");
        assert_eq!(baseline.sim_errors, 0);
        assert_eq!(baseline.faults_injected, 0);
        assert_eq!(baseline.false_positives, 0, "correct configs stay clean");

        let t6 = crate::table6::run(true).expect("table6 runs");
        let total = t6.last().expect("total row");
        assert_eq!(baseline.present, total.present);
        assert_eq!(baseline.detected, total.scord);
    }

    /// A faulty cell is deterministic in its seed and never panics, even at
    /// an aggressive rate.
    #[test]
    fn faulty_cells_are_deterministic_and_panic_free() {
        let cell = || {
            sweep(
                true,
                0xAD17,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
            )
            .expect("sweep infrastructure is clean")
        };
        let a = cell();
        let b = cell();
        assert_eq!(a, b, "same seed, same table");
        assert!(
            a.iter().all(|r| r.faults_injected > 0),
            "10% over the whole suite must inject: {a:?}"
        );
        assert!(
            a.iter().any(|r| r.detected < r.present),
            "metadata corruption/drops at 10% should lose some races: {a:?}"
        );
    }
}
