//! Degradation audit under fault injection (robustness, beyond the paper).
//!
//! Sweeps [`FaultKind`]s × injection rates over the full workload set — the
//! 32 microbenchmarks plus the seven applications in both their racey and
//! correctly-synchronized configurations — and measures how detection
//! quality degrades:
//!
//! * **recall** — races still detected on the racey configurations, against
//!   the known race budget (Table VI's 44 at the paper-calibrated sizes);
//! * **precision** — false positives appearing on configurations that are
//!   correctly synchronized (non-racey micros, correct apps);
//! * **liveness** — every cell must finish without panicking; watchdog
//!   timeouts and detector rejections are *counted*, never propagated.
//!
//! The zero-fault row runs the identical pipeline with no plan armed and
//! must reproduce [`crate::table6`]'s ScoRD column — the audit's baseline
//! is the paper's result, not a separate code path.
//!
//! The four wire-transport kinds (`frame-truncate`, `frame-bitflip`,
//! `frame-dup`, `frame-reorder`) are audited through the detection
//! service's ingest pipeline instead: fuzzed traces are encoded with
//! `scord_core::wire`, corrupted by [`FrameCorruptor`], reassembled and
//! replayed, and scored against the exact race set of an uncorrupted
//! replay. A stream that fails to decode is a *quarantine* (counted like a
//! sim error); duplicated or reordered frames pass the CRC, so their rows
//! measure how much semantic damage the encoding lets through.
//!
//! Everything is deterministic in the sweep seed: the same seed yields the
//! same injected faults and therefore the same table, byte for byte.

use std::collections::HashSet;

use scor_suite::micro::{all_micros, Micro};
use scor_suite::Benchmark;
use scord_core::wire::{self, FrameCorruptor};
use scord_core::{
    Detector, DetectorError, FaultInjector, FaultKind, FaultPlan, FuzzConfig, RaceKind,
    ScordDetector, Trace, TraceEvent,
};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::exec::{self, Jobs};
use crate::{apps, apps_racey, render_table, HarnessError};

/// The default injection rates swept by `run-experiments faults`, in parts
/// per million: 0.1%, 1%, 10% of injection opportunities.
pub const DEFAULT_RATES: [u32; 3] = [1_000, 10_000, 100_000];

/// One cell of the degradation audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The fault kind injected; `None` for the zero-fault baseline row.
    pub fault: Option<FaultKind>,
    /// Injection rate in parts per million (0 for the baseline row).
    pub rate_ppm: u32,
    /// Races detected: unique races over the racey applications plus one
    /// per racey microbenchmark that still reports something.
    pub detected: usize,
    /// Races known to be present (the racey apps' budgets + 18 racey
    /// micros) — Table VI's "races present" at the same scale.
    pub present: usize,
    /// Correctly-synchronized workloads that reported at least one race.
    pub false_positives: usize,
    /// Workloads whose simulation ended in a [`scord_sim::SimError`]
    /// (watchdog timeout, detector rejection) instead of completing.
    pub sim_errors: usize,
    /// Total faults actually injected across the cell's workloads.
    pub faults_injected: u64,
}

impl Row {
    /// Display label for the cell's fault kind.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.fault.map_or("none", FaultKind::name)
    }
}

fn gpu(plan: Option<FaultPlan>) -> Gpu {
    let mut cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    Gpu::new(cfg)
}

/// One workload of the audit's 46-strong set, with its accounting role.
enum Workload<'a> {
    Micro(&'a Micro),
    /// A racey application and Table VI's unique-race budget for it.
    Racey(&'a dyn Benchmark),
    /// A correctly-synchronized application: any report is a false positive.
    Correct(&'a dyn Benchmark),
}

impl Workload<'_> {
    fn name(&self) -> &str {
        match self {
            Workload::Micro(m) => m.name,
            Workload::Racey(a) | Workload::Correct(a) => a.name(),
        }
    }

    /// Runs the workload on a fresh GPU armed with `plan`, returning the
    /// injected-fault count and unique races.
    fn simulate(&self, plan: Option<FaultPlan>) -> Result<(u64, usize), scord_sim::SimError> {
        let mut g = gpu(plan);
        let faults = match self {
            Workload::Micro(m) => m.run(&mut g)?.faults_injected,
            Workload::Racey(a) | Workload::Correct(a) => a.run(&mut g)?.stats.faults_injected,
        };
        Ok((faults, g.races().expect("detection on").unique_count()))
    }
}

/// Runs one workload, folding its outcome into `row`. With a plan armed,
/// simulation failures are counted in `sim_errors`; without one (`strict`),
/// they propagate — the baseline must be clean.
fn fold(
    row: &mut Row,
    strict: bool,
    name: &str,
    racey_budget: Option<usize>,
    outcome: Result<(u64, usize), scord_sim::SimError>,
) -> Result<(), HarnessError> {
    match outcome {
        Ok((faults_injected, races)) => {
            row.faults_injected += faults_injected;
            match racey_budget {
                // Racey micro: budget 1, detected when anything is reported.
                Some(1) => {
                    if races > 0 {
                        row.detected += 1;
                    }
                }
                // Racey app: raw unique count, like Table VI's ScoRD column.
                Some(_) => row.detected += races,
                // Correct configuration: any report is a false positive.
                None => {
                    if races > 0 {
                        row.false_positives += 1;
                    }
                }
            }
        }
        Err(e) if strict => return Err(HarnessError::new(name, e)),
        Err(_) => row.sim_errors += 1,
    }
    Ok(())
}

/// Runs every (cell, workload) pair of the audit — one simulation per job,
/// on up to `jobs` worker threads — then folds the outcomes into one [`Row`]
/// per plan, in plan order.
fn audit(quick: bool, plans: &[Option<FaultPlan>], jobs: Jobs) -> Result<Vec<Row>, HarnessError> {
    let micros = all_micros();
    let racey = apps_racey(quick);
    let correct = apps(quick);
    let mut workloads: Vec<Workload> = micros.iter().map(Workload::Micro).collect();
    workloads.extend(racey.iter().map(|a| Workload::Racey(a.as_ref())));
    workloads.extend(correct.iter().map(|a| Workload::Correct(a.as_ref())));

    let cells: Vec<(Option<FaultPlan>, &Workload)> = plans
        .iter()
        .flat_map(|&plan| workloads.iter().map(move |w| (plan, w)))
        .collect();
    let outcomes = exec::sweep("faults", jobs, &cells, |_, (plan, w)| w.simulate(*plan));

    let mut rows = Vec::with_capacity(plans.len());
    let mut it = outcomes.into_iter();
    for &plan in plans {
        let strict = plan.is_none();
        let mut row = Row {
            fault: plan.map(|p| {
                *FaultKind::ALL
                    .iter()
                    .find(|k| p.kinds.contains(**k))
                    .expect("plan names at least one kind")
            }),
            rate_ppm: plan.map_or(0, |p| p.rate_ppm),
            detected: 0,
            present: 0,
            false_positives: 0,
            sim_errors: 0,
            faults_injected: 0,
        };
        for w in &workloads {
            let outcome = it.next().expect("one outcome per cell×workload");
            let budget = match w {
                Workload::Micro(m) if m.racey => {
                    row.present += 1;
                    Some(1)
                }
                Workload::Micro(_) | Workload::Correct(_) => None,
                Workload::Racey(a) => {
                    row.present += a.expected_races();
                    Some(a.expected_races())
                }
            };
            fold(&mut row, strict, w.name(), budget, outcome)?;
        }
        rows.push(row);
    }
    Ok(rows)
}

// ---- Wire-transport cells ------------------------------------------------
//
// The four `Frame*` kinds do not perturb detector state; they corrupt the
// binary trace encoding (`scord_core::wire`) between a producer and the
// detection service. Their cells therefore run the transport pipeline the
// server runs — encode → corrupt → reassemble/decode → replay — against a
// fuzzed corpus whose true race sets are known exactly from an
// uncorrupted replay.

/// Events per wire frame in the transport cells: small enough that the
/// corpus spans many frames, so per-frame faults get real coverage.
const WIRE_EVENTS_PER_FRAME: usize = 24;

/// One corpus stream: the trace plus its true (uncorrupted) race set.
struct WireCase {
    trace: Trace,
    baseline: HashSet<(u32, RaceKind)>,
}

/// Replays every event through a fresh detector, returning its unique-race
/// set, or `Err` if the detector rejects an event mid-stream (the service's
/// quarantine analog).
fn replay_events(events: &[TraceEvent]) -> Result<HashSet<(u32, RaceKind)>, DetectorError> {
    let mut det = ScordDetector::new(crate::diff::diff_config());
    for ev in events {
        match *ev {
            TraceEvent::Access(ref a) => det.on_access(a).map(|_| ())?,
            TraceEvent::Fence {
                sm,
                warp_slot,
                scope,
            } => det.on_fence(sm, warp_slot, scope)?,
            TraceEvent::Barrier { sm, block_slot } => det.on_barrier(sm, block_slot)?,
            TraceEvent::WarpAssigned { sm, warp_slot } => det.on_warp_assigned(sm, warp_slot)?,
            TraceEvent::KernelBoundary => det.on_kernel_boundary(),
        }
    }
    Ok(det.races().unique_races().collect())
}

/// The fixed transport corpus: racey and provably-clean fuzzed traces in
/// alternation, with their exact baseline race sets.
fn wire_corpus(quick: bool) -> Vec<WireCase> {
    let pairs = if quick { 5 } else { 10 };
    let events = if quick { 1_200 } else { 4_000 };
    let mut corpus = Vec::with_capacity(pairs * 2);
    for i in 0..pairs as u64 {
        for race_pct in [FuzzConfig::default().race_pct, 0] {
            let trace = FuzzConfig {
                events,
                race_pct,
                ..FuzzConfig::default()
            }
            .generate(0x57EA_D00D ^ (i * 2 + u64::from(race_pct == 0)));
            let baseline = replay_events(trace.events())
                .expect("fuzzed traces replay cleanly without corruption");
            corpus.push(WireCase { trace, baseline });
        }
    }
    corpus
}

/// Decodes a corrupted chunk stream exactly the way the server ingests it:
/// header-checked reassembly, strict event decoding, and a `Finish` frame
/// required for the stream to count as complete.
fn decode_stream(chunks: &[Vec<u8>]) -> Result<Vec<TraceEvent>, wire::WireError> {
    let mut asm = wire::FrameAssembler::new();
    for c in chunks {
        asm.push(c);
    }
    let mut events = Vec::new();
    while let Some(frame) = asm.next_frame()? {
        match frame.ftype {
            wire::FrameType::Events => events.extend(wire::decode_events(&frame.payload)?),
            wire::FrameType::Finish => return Ok(events),
            other => {
                return Err(wire::WireError::BadFrameType {
                    ftype: other.code(),
                })
            }
        }
    }
    // The stream ended without `Finish`: a truncated tail.
    asm.finish()?;
    Err(wire::WireError::Truncated { need: 1, have: 0 })
}

/// One transport cell: `kind` at `rate_ppm` over the whole corpus.
///
/// Accounting mirrors the service's behavior: a stream whose frames fail to
/// reassemble/decode — or whose decoded events the detector rejects — is
/// *quarantined* (counted in `sim_errors`, its races lost); a stream that
/// survives is scored exactly against its baseline race set (`detected` =
/// true races still reported, `false_positives` = streams reporting a race
/// not in their baseline).
fn wire_cell(corpus: &[WireCase], seed: u64, kind: FaultKind, rate_ppm: u32) -> Row {
    let mut row = Row {
        fault: Some(kind),
        rate_ppm,
        detected: 0,
        present: 0,
        false_positives: 0,
        sim_errors: 0,
        faults_injected: 0,
    };
    for (i, case) in corpus.iter().enumerate() {
        row.present += case.baseline.len();
        let frames = wire::trace_to_frames(&case.trace, WIRE_EVENTS_PER_FRAME);
        let plan = FaultPlan::single(kind, rate_ppm, seed ^ ((i as u64 + 1) * 0x9E37_79B9));
        let mut corruptor = FrameCorruptor::new(FaultInjector::new(plan));
        let sent = corruptor.corrupt(&frames);
        row.faults_injected += corruptor.stats().total();
        match decode_stream(&sent)
            .map_err(drop)
            .and_then(|events| replay_events(&events).map_err(drop))
        {
            Ok(got) => {
                row.detected += got.intersection(&case.baseline).count();
                if !got.is_subset(&case.baseline) {
                    row.false_positives += 1;
                }
            }
            Err(()) => row.sim_errors += 1,
        }
    }
    row
}

/// Sweeps the given fault kinds × rates (no baseline row). Detector-side
/// kinds run the full workload set on up to `jobs` worker threads;
/// transport kinds run the wire pipeline over the fuzzed corpus. Rows come
/// out in `kinds` × `rates` order either way.
///
/// # Errors
///
/// Returns a [`HarnessError`] only for infrastructure failures; faulty
/// cells count their simulation errors instead of propagating them.
pub fn sweep(
    quick: bool,
    seed: u64,
    kinds: &[FaultKind],
    rates: &[u32],
    jobs: Jobs,
) -> Result<Vec<Row>, HarnessError> {
    let gpu_plans: Vec<Option<FaultPlan>> = kinds
        .iter()
        .filter(|k| !k.is_transport_fault())
        .flat_map(|&kind| {
            rates
                .iter()
                .map(move |&rate| Some(FaultPlan::single(kind, rate, seed)))
        })
        .collect();
    let mut gpu_rows = audit(quick, &gpu_plans, jobs)?.into_iter();
    let corpus = if kinds.iter().any(|k| k.is_transport_fault()) {
        wire_corpus(quick)
    } else {
        Vec::new()
    };
    let mut rows = Vec::with_capacity(kinds.len() * rates.len());
    for &kind in kinds {
        for &rate in rates {
            rows.push(if kind.is_transport_fault() {
                wire_cell(&corpus, seed, kind, rate)
            } else {
                gpu_rows.next().expect("one GPU row per kind and rate")
            });
        }
    }
    Ok(rows)
}

/// The full degradation audit: the fault-free baseline row followed by
/// every fault kind at every rate in `rates` — detector-side kinds over
/// the workload set on up to `jobs` worker threads, transport kinds over
/// the wire corpus.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the workload that failed in the
/// fault-free baseline (which must be clean); faulty cells never error.
pub fn run(quick: bool, seed: u64, rates: &[u32], jobs: Jobs) -> Result<Vec<Row>, HarnessError> {
    let mut rows = audit(quick, &[None], jobs)?;
    rows.extend(sweep(quick, seed, &FaultKind::ALL, rates, jobs)?);
    Ok(rows)
}

/// Renders the audit as a markdown table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label().to_string(),
                if r.rate_ppm == 0 {
                    "—".into()
                } else {
                    format!("{:.2}%", f64::from(r.rate_ppm) / 10_000.0)
                },
                format!("{}/{}", r.detected, r.present),
                r.false_positives.to_string(),
                r.sim_errors.to_string(),
                r.faults_injected.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Fault",
            "Rate",
            "Detected/present",
            "False positives",
            "Sim errors",
            "Faults injected",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The zero-fault baseline is Table VI in disguise: same workloads,
    /// same detector, so the totals must agree exactly.
    #[test]
    fn zero_fault_row_reproduces_table6() {
        let rows = audit(true, &[None], Jobs::serial()).expect("baseline is clean");
        let baseline = &rows[0];
        assert_eq!(baseline.sim_errors, 0);
        assert_eq!(baseline.faults_injected, 0);
        assert_eq!(baseline.false_positives, 0, "correct configs stay clean");

        let t6 = crate::table6::run(true, Jobs::serial()).expect("table6 runs");
        let total = t6.last().expect("total row");
        assert_eq!(baseline.present, total.present);
        assert_eq!(baseline.detected, total.scord);
    }

    /// A faulty cell is deterministic in its seed — and in its worker
    /// count — and never panics, even at an aggressive rate.
    #[test]
    fn faulty_cells_are_deterministic_and_panic_free() {
        let cell = |jobs: Jobs| {
            sweep(
                true,
                0xAD17,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                jobs,
            )
            .expect("sweep infrastructure is clean")
        };
        let a = cell(Jobs::serial());
        let b = cell(Jobs::new(4).expect("nonzero"));
        assert_eq!(a, b, "same seed, same table, serial or parallel");
        assert!(
            a.iter().all(|r| r.faults_injected > 0),
            "10% over the whole suite must inject: {a:?}"
        );
        assert!(
            a.iter().any(|r| r.detected < r.present),
            "metadata corruption/drops at 10% should lose some races: {a:?}"
        );
    }

    /// The transport cells run the wire pipeline: deterministic in the
    /// seed, quarantining CRC-detectable damage, and never panicking.
    #[test]
    fn transport_rows_quarantine_damage_deterministically() {
        let kinds = [
            FaultKind::FrameTruncate,
            FaultKind::FrameBitFlip,
            FaultKind::FrameDuplicate,
            FaultKind::FrameReorder,
        ];
        let cell = |jobs: Jobs| {
            sweep(true, 0xF1A7, &kinds, &[100_000], jobs).expect("transport sweep is clean")
        };
        let a = cell(Jobs::serial());
        let b = cell(Jobs::new(4).expect("nonzero"));
        assert_eq!(a, b, "same seed, same transport table");
        assert_eq!(a.len(), kinds.len());
        for row in &a {
            assert!(
                row.faults_injected > 0,
                "10% per frame must inject: {row:?}"
            );
            assert!(row.present > 0, "corpus has racey streams: {row:?}");
        }
        // Truncation and bit flips are CRC/framing-detectable, so their
        // cells must quarantine streams (and with them lose recall).
        for kind in [FaultKind::FrameTruncate, FaultKind::FrameBitFlip] {
            let row = a.iter().find(|r| r.fault == Some(kind)).expect("row");
            assert!(row.sim_errors > 0, "{kind} must quarantine: {row:?}");
            assert!(row.detected < row.present, "{kind} loses races: {row:?}");
        }
    }

    /// With no faults armed at the transport level the wire pipeline is an
    /// exact carbon copy of the in-process replay.
    #[test]
    fn transport_cell_at_rate_zero_is_lossless() {
        let rows = sweep(true, 7, &[FaultKind::FrameDuplicate], &[0], Jobs::serial())
            .expect("zero-rate sweep");
        let row = &rows[0];
        assert_eq!(row.faults_injected, 0);
        assert_eq!(row.sim_errors, 0);
        assert_eq!(row.false_positives, 0);
        assert_eq!(row.detected, row.present, "no corruption, no loss");
    }
}
