//! Differential race-oracle audit.
//!
//! ScoRD is deliberately lossy hardware: a direct-mapped metadata cache,
//! single-owner metadata words, truncated fence counters and 16-bit lock
//! Blooms all trade precision for area. This module measures that loss by
//! replaying the same event streams through both the hardware model and the
//! exact reference detector ([`scord_core::oracle`]):
//!
//! 1. [`run`] fuzzes seeded traces ([`scord_core::fuzz`]) across several
//!    machine shapes and race-injection rates and replays each through the
//!    oracle, `ScordDetector` (cached *and* full-store) and the Table VIII
//!    baselines;
//! 2. every per-key disagreement is classified into the expected-FN/FP
//!    taxonomy below, or escalated to [`Divergence::Bug`] with a minimized
//!    [`Trace::to_text`] reproducer;
//! 3. [`micros`] performs the same audit on traces captured from live
//!    [`Gpu`] runs of the microbenchmark suite, after first checking that a
//!    captured trace replays to the same verdicts as the live run.
//!
//! A divergence is keyed by `(addr, pc, block_slot, warp_slot)` of the
//! access that exposed the race — race *kind* labels are allowed to differ
//! between detectors, the set of flagged program points is not.

use std::collections::{BTreeMap, BTreeSet};

use scor_suite::micro::all_micros;
use scord_core::{
    bloom_bit, build_detector, lock_hash, AccessKind, Detector, DetectorConfig, DetectorKind,
    FuzzConfig, OracleAccess, OracleDetector, OracleRace, OrderReason, RaceKind, RaceLog,
    RaceReport, RecordingDetector, ReplayError, ScordDetector, SplitMix64, StoreKind, Trace,
    TraceEvent,
};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::exec::{sweep, Jobs};
use crate::{render_table, HarnessError};

/// Divergence identity: `(addr, pc, block_slot, warp_slot)` of the access
/// that exposed (or should have exposed) the race.
pub type Key = (u64, u32, u8, u8);

/// Why a detector's verdict may legitimately differ from the oracle's —
/// the expected-FN/FP taxonomy of the hardware design — plus [`Bug`] for
/// anything the taxonomy cannot explain.
///
/// [`Bug`]: Divergence::Bug
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Divergence {
    /// FN: the cached metadata store evicted the earlier access's entry
    /// (tag mismatch → treated as a first touch). Confirmed empirically:
    /// the full-store detector catches the same key.
    FnCacheAlias,
    /// FN: a third access to the same address overwrote the single-owner
    /// metadata word between the racing pair.
    FnSingleOwner,
    /// FN: block/warp slot reuse — a different thread incarnation in the
    /// same hardware slot looks like program order (or its fences/locks
    /// alias) to the slot-indexed hardware.
    FnSlotReuse,
    /// FN: the metadata word organically reached the `modified +
    /// blk_shared + dev_shared` encoding, which aliases the
    /// (re-)initialization sentinel of Table III (a) — the next access is
    /// treated as a first touch. Reachable by a cross-block load, a
    /// cross-warp load, then a store to one location.
    FnInitSentinel,
    /// FN: the 16-bit lock Blooms of two disjoint lock sets share a bit,
    /// so the lockset check saw a (false) common lock.
    FnBloomCollision,
    /// FN (baselines only): the race is visible only with scope tracking,
    /// which this baseline erases; full ScoRD catches the same key.
    FnScopeErased,
    /// FP: a genuinely common lock was evicted from the 4-entry lock
    /// table, so the Bloom intersection came up empty.
    FpLockEviction,
    /// FP: a saturating/wrapping hardware counter (6-bit fence counters,
    /// 8-bit barrier id) re-equalled, hiding an intervening sync.
    FpCounterWrap,
    /// FP: the pair is fence-ordered only through a transitive
    /// release/acquire chain the pairwise counter check cannot see.
    FpChain,
    /// FP: a metadata-word artifact — sticky weak bits, shared-marking,
    /// or ordering kinds (program order / barrier) the metadata no longer
    /// proves after an owner change.
    FpMetaArtifact,
    /// Predicted race (schedule-space backends): confirmed by a concrete
    /// explorer witness schedule under which the oracle judges the pair
    /// unordered.
    PredConfirmed,
    /// Predicted-false, named: the pair holds a common lock, so mutual
    /// exclusion orders it in every feasible execution — a schedule-only
    /// witness would ignore the spin-loop values.
    PredLockMutex,
    /// Predicted-false, named: same-location adequately-scoped atomics
    /// order at the point of coherence in either direction.
    PredAtomicCommute,
    /// Predicted-false, named: the mandatory-order DAG forces the pair
    /// (defensive — such pairs should never become candidates).
    PredSyncForced,
    /// A prediction with no witness schedule and no named excuse — a
    /// schedule-model defect. The audit fails loudly with a minimized
    /// reproducer, exactly like [`Bug`].
    ///
    /// [`Bug`]: Divergence::Bug
    PredUnconfirmed,
    /// Unexplained — a real defect in the detector, the oracle, or the
    /// fuzzer. The audit fails loudly with a minimized reproducer.
    Bug,
}

impl Divergence {
    /// All classes, in table-column order.
    pub const ALL: [Divergence; 16] = [
        Divergence::FnCacheAlias,
        Divergence::FnSingleOwner,
        Divergence::FnSlotReuse,
        Divergence::FnInitSentinel,
        Divergence::FnBloomCollision,
        Divergence::FnScopeErased,
        Divergence::FpLockEviction,
        Divergence::FpCounterWrap,
        Divergence::FpChain,
        Divergence::FpMetaArtifact,
        Divergence::PredConfirmed,
        Divergence::PredLockMutex,
        Divergence::PredAtomicCommute,
        Divergence::PredSyncForced,
        Divergence::PredUnconfirmed,
        Divergence::Bug,
    ];

    /// The subset produced by the schedule-space (predictive) backends.
    pub const PREDICTED: [Divergence; 5] = [
        Divergence::PredConfirmed,
        Divergence::PredLockMutex,
        Divergence::PredAtomicCommute,
        Divergence::PredSyncForced,
        Divergence::PredUnconfirmed,
    ];

    /// Short column label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Divergence::FnCacheAlias => "fn-cache-alias",
            Divergence::FnSingleOwner => "fn-single-owner",
            Divergence::FnSlotReuse => "fn-slot-reuse",
            Divergence::FnInitSentinel => "fn-init-sentinel",
            Divergence::FnBloomCollision => "fn-bloom",
            Divergence::FnScopeErased => "fn-scope-erased",
            Divergence::FpLockEviction => "fp-lock-evict",
            Divergence::FpCounterWrap => "fp-ctr-wrap",
            Divergence::FpChain => "fp-hb-chain",
            Divergence::FpMetaArtifact => "fp-md-artifact",
            Divergence::PredConfirmed => "pred-confirmed",
            Divergence::PredLockMutex => "pred-lock-mutex",
            Divergence::PredAtomicCommute => "pred-atomic-commute",
            Divergence::PredSyncForced => "pred-sync-forced",
            Divergence::PredUnconfirmed => "PRED-UNCONFIRMED",
            Divergence::Bug => "BUG",
        }
    }
}

/// An unexplained divergence, with a replayable reproducer.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Fuzz case index (`usize::MAX` for microbenchmark traces).
    pub case_index: usize,
    /// Seed that regenerates the offending trace.
    pub case_seed: u64,
    /// Detector model that diverged.
    pub detector: &'static str,
    /// `true` if the detector missed an oracle race, `false` if it
    /// reported one the oracle refutes.
    pub missed: bool,
    /// The divergence key.
    pub key: Key,
    /// Minimized trace in [`Trace::to_text`] format.
    pub reproducer: String,
}

impl std::fmt::Display for BugReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (addr, pc, block, warp) = self.key;
        writeln!(
            f,
            "unexplained {} by {} (case {}, seed {}): addr 0x{addr:x} pc {pc} \
             block {block} warp {warp}\nreproducer:",
            if self.missed {
                "false negative"
            } else {
                "false positive"
            },
            self.detector,
            self.case_index,
            self.case_seed,
        )?;
        f.write_str(&self.reproducer)
    }
}

/// One detector's aggregate row.
#[derive(Debug, Clone)]
pub struct DetRow {
    /// Detector model this row belongs to — rows are keyed by kind, not
    /// by position in [`DetectorKind::ALL`].
    pub kind: DetectorKind,
    /// Detector model name.
    pub name: &'static str,
    /// Divergence keys shared with the oracle.
    pub matched: usize,
    /// Keys the detector reported in total.
    pub reported: usize,
    /// Classified divergences.
    pub counts: BTreeMap<Divergence, usize>,
}

/// Result of a [`run`] sweep.
#[derive(Debug, Clone)]
pub struct DiffSummary {
    /// Root seed.
    pub seed: u64,
    /// Fuzz cases replayed.
    pub cases: usize,
    /// Total unique race keys found by the oracle across all cases.
    pub oracle_keys: usize,
    /// One row per detector model.
    pub rows: Vec<DetRow>,
    /// All unexplained divergences (empty on a passing audit).
    pub bugs: Vec<BugReport>,
}

const MEM_BYTES: u64 = 1 << 20;

/// Detector configuration used for fuzz-trace replay: the paper design
/// with the race-record cap lifted so no report is dropped.
#[must_use]
pub fn diff_config() -> DetectorConfig {
    DetectorConfig {
        max_race_records: 1 << 20,
        ..DetectorConfig::paper_default(MEM_BYTES)
    }
}

fn full_store_variant(base: DetectorConfig) -> DetectorConfig {
    DetectorConfig {
        store: StoreKind::Full { granularity: 4 },
        ..base
    }
}

fn report_key(r: &RaceReport) -> Key {
    (r.addr, r.pc, r.who.block_slot, r.who.warp_slot)
}

fn oracle_key(acc: &[OracleAccess], r: &OracleRace) -> Key {
    let y = &acc[r.later];
    (
        y.access.addr,
        y.access.pc,
        y.access.who.block_slot,
        y.access.who.warp_slot,
    )
}

fn keys_of(log: &RaceLog) -> BTreeSet<Key> {
    log.records().iter().map(report_key).collect()
}

fn bloom_of(locks: &[(u64, scord_isa::Scope)]) -> u16 {
    locks.iter().fold(0u16, |b, &(addr, scope)| {
        b | bloom_bit(lock_hash(addr), scope)
    })
}

fn is_write(a: &OracleAccess) -> bool {
    !matches!(a.access.kind, AccessKind::Load)
}

/// One hardware model's verdicts on a trace.
struct DetOutcome {
    keys: BTreeSet<Key>,
    reports: Vec<RaceReport>,
}

/// Everything one trace yields: the oracle's exact verdicts plus the key
/// sets of every hardware model — keyed by [`DetectorKind`], never by
/// position, so adding backends cannot misattribute a row — and the
/// full-store aide used to confirm cache-alias FNs empirically.
struct Analysis {
    oracle: OracleDetector,
    dets: BTreeMap<DetectorKind, DetOutcome>,
    full_keys: BTreeSet<Key>,
}

impl Analysis {
    fn oracle_keys(&self) -> BTreeSet<Key> {
        let acc = self.oracle.accesses();
        self.oracle
            .detailed_races()
            .iter()
            .map(|r| oracle_key(acc, r))
            .collect()
    }

    fn det(&self, kind: DetectorKind) -> &DetOutcome {
        self.dets.get(&kind).expect("every model analyzed")
    }
}

fn analyze(trace: &Trace, base: DetectorConfig) -> Result<Analysis, ReplayError> {
    let mut oracle = OracleDetector::new(base.geometry);
    trace.replay(&mut oracle)?;
    let mut dets = BTreeMap::new();
    for kind in DetectorKind::ALL {
        let mut det = build_detector(kind, base);
        trace.replay(&mut det)?;
        dets.insert(
            kind,
            DetOutcome {
                keys: keys_of(det.races()),
                reports: det.races().records().to_vec(),
            },
        );
    }
    let mut full = ScordDetector::new(full_store_variant(base));
    trace.replay(&mut full)?;
    Ok(Analysis {
        oracle,
        dets,
        full_keys: keys_of(full.races()),
    })
}

/// Shadow-replays the three metadata flag bits (`modified`, `blk_shared`,
/// `dev_shared`) for `y`'s address under a full (eviction-free) store and
/// reports whether the word aliased the initialization sentinel when `y`
/// was checked.
fn sentinel_hid(a: &Analysis, y: &OracleAccess) -> bool {
    // (modified, blk_shared, dev_shared, owner block, owner warp)
    let mut state: Option<(bool, bool, bool, u8, u8)> = None;
    for m in a.oracle.accesses() {
        if m.access.addr != y.access.addr || m.epoch != y.epoch {
            continue;
        }
        if m.event == y.event {
            break;
        }
        let write = is_write(m);
        let who = m.access.who;
        state = Some(match state {
            // First touch (or a word that aliased the sentinel, which the
            // detector re-zeroes): flags start clear.
            None => (write, false, false, who.block_slot, who.warp_slot),
            Some((true, true, true, _, _)) => (write, false, false, who.block_slot, who.warp_slot),
            Some((_, mut blk, mut dev, ob, ow)) => {
                if !write {
                    if ob != who.block_slot {
                        dev = true;
                    } else if ow != who.warp_slot {
                        blk = true;
                    }
                }
                (write, blk, dev, who.block_slot, who.warp_slot)
            }
        });
    }
    matches!(state, Some((true, true, true, _, _)))
}

/// Classifies one oracle race pair the detector missed.
fn classify_fn_pair(a: &Analysis, trace: &Trace, r: &OracleRace) -> Divergence {
    let acc = a.oracle.accesses();
    let (x, y) = (&acc[r.earlier], &acc[r.later]);
    // Single-owner metadata: a third same-address access between the pair
    // overwrote the entry the later access was checked against.
    let overwritten = acc.iter().any(|m| {
        m.access.addr == y.access.addr
            && m.epoch == y.epoch
            && m.event > x.event
            && m.event < y.event
    });
    if overwritten {
        return Divergence::FnSingleOwner;
    }
    if sentinel_hid(a, y) {
        return Divergence::FnInitSentinel;
    }
    // Slot reuse, direct form: different incarnations in the same hardware
    // slot are indistinguishable from program order.
    if x.thread != y.thread
        && x.access.who.block_slot == y.access.who.block_slot
        && x.access.who.warp_slot == y.access.who.warp_slot
    {
        return Divergence::FnSlotReuse;
    }
    // Slot reuse, aliased-state form: the earlier thread's slot was handed
    // to a new incarnation between the pair, so slot-indexed fence/lock
    // state no longer speaks for the earlier access.
    let reassigned = trace.events()[x.event + 1..y.event].iter().any(|ev| {
        matches!(ev, TraceEvent::WarpAssigned { sm, warp_slot }
            if *sm == x.access.who.sm && *warp_slot == x.access.who.warp_slot)
    });
    if reassigned {
        return Divergence::FnSlotReuse;
    }
    if matches!(
        r.kind,
        RaceKind::MissingLockLoad | RaceKind::MissingLockStore
    ) && bloom_of(&x.locks) & bloom_of(&y.locks) != 0
    {
        return Divergence::FnBloomCollision;
    }
    Divergence::Bug
}

/// Classifies a missed oracle key for detector model `kind`.
fn classify_fn_key(a: &Analysis, trace: &Trace, kind: DetectorKind, key: Key) -> Divergence {
    // A baseline missing a key full ScoRD catches (same metadata store) is
    // scope erasure by construction.
    if kind != DetectorKind::Scord && a.det(DetectorKind::Scord).keys.contains(&key) {
        return Divergence::FnScopeErased;
    }
    // The full-store detector catching it pins the miss on the metadata
    // cache.
    if a.full_keys.contains(&key) {
        return Divergence::FnCacheAlias;
    }
    let acc = a.oracle.accesses();
    let mut class = None;
    for r in a.oracle.detailed_races() {
        if oracle_key(acc, r) != key {
            continue;
        }
        match classify_fn_pair(a, trace, r) {
            Divergence::Bug => return Divergence::Bug,
            c => class = Some(class.map_or(c, |prev: Divergence| prev.min(c))),
        }
    }
    class.unwrap_or(Divergence::Bug)
}

/// Classifies a detector report the oracle refutes.
fn classify_fp(a: &Analysis, trace: &Trace, rep: &RaceReport) -> Divergence {
    let acc = a.oracle.accesses();
    // The access that triggered the report…
    let Some(y) = acc
        .iter()
        .rev()
        .find(|m| m.access.pc == rep.pc && m.access.addr == rep.addr && m.access.who == rep.who)
    else {
        return Divergence::Bug;
    };
    // …and the last same-address access it was checked against.
    let Some(z) = acc
        .iter()
        .rev()
        .find(|m| m.access.addr == y.access.addr && m.epoch == y.epoch && m.event < y.event)
    else {
        return Divergence::Bug;
    };
    if matches!(
        rep.kind,
        RaceKind::MissingLockLoad | RaceKind::MissingLockStore
    ) {
        // A real common lock existed: the 4-entry lock table must have
        // evicted it. Otherwise the stale metadata Bloom (e.g. a lock
        // released since, or a same-warp check forced by shared-marking)
        // manufactured the report.
        return if z.locks.iter().any(|l| y.locks.contains(l)) {
            Divergence::FpLockEviction
        } else {
            Divergence::FpMetaArtifact
        };
    }
    let window = &trace.events()[z.event + 1..y.event];
    let fences = window
        .iter()
        .filter(|ev| {
            matches!(ev, TraceEvent::Fence { sm, warp_slot, .. }
                if *sm == z.access.who.sm && *warp_slot == z.access.who.warp_slot)
        })
        .count();
    let barriers = window
        .iter()
        .filter(|ev| {
            matches!(ev, TraceEvent::Barrier { block_slot, .. }
                if *block_slot == z.access.who.block_slot)
        })
        .count();
    if fences >= 64 || barriers >= 256 {
        return Divergence::FpCounterWrap;
    }
    match OracleDetector::ordered_pair(z, y) {
        Some(OrderReason::Fence) => Divergence::FpChain,
        Some(_) => Divergence::FpMetaArtifact,
        // Unordered and conflicting means the oracle should have reported
        // this key itself — that contradiction is a bug somewhere.
        None if is_write(z) || is_write(y) => Divergence::Bug,
        None => Divergence::FpMetaArtifact,
    }
}

/// Classifies every divergence of detector model `kind`; returns
/// `(matched, per-key classes)`.
fn classify_detector(
    a: &Analysis,
    trace: &Trace,
    kind: DetectorKind,
) -> (usize, Vec<(Key, bool, Divergence)>) {
    let oracle_keys = a.oracle_keys();
    let det = a.det(kind);
    let mut out = Vec::new();
    let mut matched = 0;
    for &key in &oracle_keys {
        if det.keys.contains(&key) {
            matched += 1;
        } else {
            out.push((key, true, classify_fn_key(a, trace, kind, key)));
        }
    }
    let mut fp_seen = BTreeSet::new();
    for rep in &det.reports {
        let key = report_key(rep);
        if !oracle_keys.contains(&key) && fp_seen.insert(key) {
            out.push((key, false, classify_fp(a, trace, rep)));
        }
    }
    (matched, out)
}

/// Re-derives the class of one key on a candidate trace; `None` when the
/// divergence no longer exists there.
fn key_divergence(
    trace: &Trace,
    base: DetectorConfig,
    kind: DetectorKind,
    key: Key,
    missed: bool,
) -> Option<Divergence> {
    let a = analyze(trace, base).ok()?;
    let oracle_has = a.oracle_keys().contains(&key);
    let det_has = a.det(kind).keys.contains(&key);
    if missed && oracle_has && !det_has {
        Some(classify_fn_key(&a, trace, kind, key))
    } else if !missed && det_has && !oracle_has {
        let rep = a
            .det(kind)
            .reports
            .iter()
            .find(|r| report_key(r) == key)
            .copied()?;
        Some(classify_fp(&a, trace, &rep))
    } else {
        None
    }
}

/// Greedy one-event-at-a-time shrink to a fixpoint of `persists`. Shared
/// with the schedule-space audit ([`crate::explore`]), which minimizes
/// unconfirmed-prediction reproducers through the same machinery.
pub(crate) fn minimize(trace: &Trace, persists: impl Fn(&Trace) -> bool) -> Trace {
    let mut cur = trace.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = Trace::new();
            for (j, ev) in cur.events().iter().enumerate() {
                if j != i {
                    cand.push(*ev);
                }
            }
            if persists(&cand) {
                cur = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Traces longer than this are reported unminimized (the greedy shrink is
/// quadratic in trace length).
pub(crate) const MINIMIZE_CAP: usize = 600;

fn minimized_reproducer(
    trace: &Trace,
    base: DetectorConfig,
    kind: DetectorKind,
    key: Key,
    missed: bool,
) -> String {
    if trace.len() > MINIMIZE_CAP {
        return trace.to_text();
    }
    minimize(trace, |cand| {
        key_divergence(cand, base, kind, key, missed) == Some(Divergence::Bug)
    })
    .to_text()
}

/// One fuzz case of the rotated corpus. Shared with the schedule-space
/// audit ([`crate::explore`]) so both audits cover identical traces.
#[derive(Debug)]
pub(crate) struct CaseSpec {
    pub(crate) index: usize,
    pub(crate) seed: u64,
    pub(crate) cfg: FuzzConfig,
}

pub(crate) fn case_specs(seed: u64, cases: usize) -> Vec<CaseSpec> {
    // Rotate race-injection rate and machine shape so one run covers clean,
    // lightly- and heavily-racey traces on several geometries.
    const RACE_PCT: [u32; 4] = [0, 10, 30, 60];
    const SHAPES: [(u8, u8, u8); 4] = [(2, 2, 2), (1, 2, 4), (2, 1, 2), (3, 2, 1)];
    let mut root = SplitMix64::new(seed);
    (0..cases)
        .map(|index| {
            let (sms, blocks_per_sm, warps_per_block) = SHAPES[(index / 4) % 4];
            CaseSpec {
                index,
                seed: root.next_u64(),
                cfg: FuzzConfig {
                    sms,
                    blocks_per_sm,
                    warps_per_block,
                    race_pct: RACE_PCT[index % 4],
                    ..FuzzConfig::default()
                },
            }
        })
        .collect()
}

struct CaseOutcome {
    oracle_keys: usize,
    per_det: BTreeMap<DetectorKind, (usize, usize, BTreeMap<Divergence, usize>)>,
    bugs: Vec<BugReport>,
}

fn run_case(spec: &CaseSpec) -> CaseOutcome {
    let base = diff_config();
    let trace = spec.cfg.generate(spec.seed);
    let a = analyze(&trace, base).unwrap_or_else(|e| {
        panic!(
            "fuzz case {} (seed {}) does not replay: {e}\n{}",
            spec.index,
            spec.seed,
            trace.to_text()
        )
    });
    let oracle_keys = a.oracle_keys().len();
    let mut per_det = BTreeMap::new();
    let mut bugs = Vec::new();
    for kind in DetectorKind::ALL {
        let (matched, classes) = classify_detector(&a, &trace, kind);
        let mut counts: BTreeMap<Divergence, usize> = BTreeMap::new();
        for &(key, missed, class) in &classes {
            *counts.entry(class).or_default() += 1;
            if class == Divergence::Bug {
                bugs.push(BugReport {
                    case_index: spec.index,
                    case_seed: spec.seed,
                    detector: kind.name(),
                    missed,
                    key,
                    reproducer: minimized_reproducer(&trace, base, kind, key, missed),
                });
            }
        }
        // Internal consistency: every oracle key is either matched or
        // classified exactly once.
        let fns: usize = classes.iter().filter(|(_, missed, _)| *missed).count();
        assert_eq!(
            matched + fns,
            oracle_keys,
            "case {}: key accounting",
            spec.index
        );
        per_det.insert(kind, (matched, a.det(kind).keys.len(), counts));
    }
    CaseOutcome {
        oracle_keys,
        per_det,
        bugs,
    }
}

/// Replays `cases` fuzzed traces (root seed `seed`) through the oracle and
/// every detector model, classifying all divergences.
///
/// Deterministic in `(seed, cases)` for any job count.
#[must_use]
pub fn run(seed: u64, cases: usize, jobs: Jobs) -> DiffSummary {
    let specs = case_specs(seed, cases);
    let outcomes = sweep("diff", jobs, &specs, |_, spec| run_case(spec));
    let mut rows: Vec<DetRow> = DetectorKind::ALL
        .iter()
        .map(|&k| DetRow {
            kind: k,
            name: k.name(),
            matched: 0,
            reported: 0,
            counts: BTreeMap::new(),
        })
        .collect();
    let mut oracle_keys = 0;
    let mut bugs = Vec::new();
    for o in outcomes {
        oracle_keys += o.oracle_keys;
        for row in &mut rows {
            let (matched, reported, counts) =
                o.per_det.get(&row.kind).expect("every model per case");
            row.matched += matched;
            row.reported += reported;
            for (&class, &n) in counts {
                *row.counts.entry(class).or_default() += n;
            }
        }
        bugs.extend(o.bugs);
    }
    DiffSummary {
        seed,
        cases,
        oracle_keys,
        rows,
        bugs,
    }
}

/// Renders the [`run`] summary as a markdown table.
#[must_use]
pub fn to_markdown(summary: &DiffSummary) -> String {
    let mut header = vec!["detector", "oracle keys", "matched", "reported"];
    header.extend(Divergence::ALL.iter().map(|d| d.name()));
    let rows: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.name.to_string(),
                summary.oracle_keys.to_string(),
                r.matched.to_string(),
                r.reported.to_string(),
            ];
            row.extend(
                Divergence::ALL
                    .iter()
                    .map(|d| r.counts.get(d).copied().unwrap_or(0).to_string()),
            );
            row
        })
        .collect();
    render_table(&header, &rows)
}

/// One microbenchmark's audit row.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Microbenchmark name.
    pub name: &'static str,
    /// Captured trace length.
    pub events: usize,
    /// Unique races in the live simulated run.
    pub live: usize,
    /// Unique races when the captured trace is replayed into an identical
    /// fresh detector (must equal `live`).
    pub replayed: usize,
    /// Oracle race keys on the captured trace.
    pub oracle_keys: usize,
    /// Keys ScoRD and the oracle agree on.
    pub matched: usize,
    /// Divergences explained by the taxonomy.
    pub explained: usize,
    /// Unexplained divergences.
    pub bugs: usize,
}

/// Result of the [`micros`] audit.
#[derive(Debug, Clone)]
pub struct MicroSummary {
    /// One row per microbenchmark.
    pub rows: Vec<MicroRow>,
    /// Unexplained divergences with reproducers.
    pub bugs: Vec<BugReport>,
}

/// A microbenchmark's captured trace plus the live run's verdicts, with
/// capture fidelity already verified (`replayed == live`). Shared with the
/// schedule-space audit ([`crate::explore`]).
pub(crate) struct CapturedMicro {
    /// Microbenchmark name.
    pub name: &'static str,
    /// The captured event stream.
    pub trace: Trace,
    /// The live detector's configuration, with the race-record cap lifted
    /// for replay audits.
    pub config: DetectorConfig,
    /// Unique races in the live simulated run.
    pub live: usize,
    /// Unique races when the captured trace is replayed into an identical
    /// fresh detector (asserted equal to `live`).
    pub replayed: usize,
}

/// Captures one microbenchmark's trace from a live [`Gpu`] run through a
/// [`RecordingDetector`] and verifies capture fidelity.
///
/// # Panics
///
/// Panics if the captured trace fails to replay or replays to a different
/// race count than the live run — the record/replay pipeline is broken.
pub(crate) fn capture_micro(m: &scor_suite::micro::Micro) -> Result<CapturedMicro, HarnessError> {
    let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
    let mut captured_dc = None;
    let mut gpu = Gpu::try_with_detector_factory(cfg, |dc| {
        captured_dc = Some(dc);
        Box::new(RecordingDetector::new(ScordDetector::new(dc)))
    })
    .map_err(|e| HarnessError::new(m.name, e))?;
    m.run(&mut gpu).map_err(|e| HarnessError::new(m.name, e))?;
    let live = gpu.races().expect("detection is on").unique_count();
    let trace = gpu
        .recorded_trace()
        .expect("recording detector attached")
        .clone();
    let dc = captured_dc.expect("factory ran");

    // Capture fidelity: the recorded stream must reproduce the live
    // verdicts in an identical fresh detector.
    let mut fresh = ScordDetector::new(dc);
    trace
        .replay(&mut fresh)
        .unwrap_or_else(|e| panic!("{}: captured trace does not replay: {e}", m.name));
    let replayed = fresh.races().unique_count();
    assert_eq!(
        replayed, live,
        "{}: replayed race count diverges from the live run",
        m.name
    );
    Ok(CapturedMicro {
        name: m.name,
        trace,
        config: DetectorConfig {
            max_race_records: 1 << 20,
            ..dc
        },
        live,
        replayed,
    })
}

/// Captures a trace from a live [`Gpu`] run of every microbenchmark
/// (through a [`RecordingDetector`]), checks capture fidelity, then audits
/// the trace against the oracle exactly like a fuzz case.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the microbenchmark whose simulation
/// failed.
///
/// # Panics
///
/// Panics if a captured trace fails to replay, or replays to a different
/// race count than the live run produced — both mean the record/replay
/// pipeline itself is broken.
pub fn micros(jobs: Jobs) -> Result<MicroSummary, HarnessError> {
    let ms = all_micros();
    let audited: Vec<(MicroRow, Vec<BugReport>)> = sweep("diff-micros", jobs, &ms, |_, m| {
        let cap = capture_micro(m)?;
        let CapturedMicro {
            trace,
            live,
            replayed,
            config: base,
            ..
        } = cap;
        let a = analyze(&trace, base)
            .unwrap_or_else(|e| panic!("{}: captured trace does not replay: {e}", m.name));
        let (matched, classes) = classify_detector(&a, &trace, DetectorKind::Scord);
        let mut bugs = Vec::new();
        for &(key, missed, class) in &classes {
            if class == Divergence::Bug {
                bugs.push(BugReport {
                    case_index: usize::MAX,
                    case_seed: 0,
                    detector: m.name,
                    missed,
                    key,
                    reproducer: minimized_reproducer(
                        &trace,
                        base,
                        DetectorKind::Scord,
                        key,
                        missed,
                    ),
                });
            }
        }
        Ok((
            MicroRow {
                name: m.name,
                events: trace.len(),
                live,
                replayed,
                oracle_keys: a.oracle_keys().len(),
                matched,
                explained: classes.len() - bugs.len(),
                bugs: bugs.len(),
            },
            bugs,
        ))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut rows = Vec::new();
    let mut bugs = Vec::new();
    for (row, b) in audited {
        rows.push(row);
        bugs.extend(b);
    }
    Ok(MicroSummary { rows, bugs })
}

/// Renders the [`micros`] audit as a markdown table.
#[must_use]
pub fn micros_to_markdown(summary: &MicroSummary) -> String {
    let header = [
        "micro",
        "events",
        "live",
        "replayed",
        "oracle",
        "matched",
        "explained",
        "bugs",
    ];
    let rows: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.events.to_string(),
                r.live.to_string(),
                r.replayed.to_string(),
                r.oracle_keys.to_string(),
                r.matched.to_string(),
                r.explained.to_string(),
                r.bugs.to_string(),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_core::Accessor;

    #[test]
    fn small_fuzz_run_is_fully_classified() {
        let s = run(7, 16, Jobs::serial());
        assert_eq!(s.rows.len(), 3);
        assert!(s.oracle_keys > 0, "racey cases must yield oracle races");
        assert!(
            s.bugs.is_empty(),
            "unexplained divergences:\n{}",
            s.bugs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        // ScoRD must agree with the oracle far more often than not.
        assert!(s.rows[0].matched * 2 > s.oracle_keys);
    }

    #[test]
    fn run_is_deterministic_across_job_counts() {
        let a = to_markdown(&run(11, 8, Jobs::serial()));
        let b = to_markdown(&run(11, 8, Jobs::new(4).unwrap()));
        assert_eq!(a, b);
    }

    /// Satellite: detector rows must be keyed by [`DetectorKind`], never
    /// by position — each model's key set must match a freshly built
    /// detector of that exact kind, and summary rows must carry the kind
    /// they aggregate.
    #[test]
    fn detector_rows_keyed_by_kind_not_position() {
        let base = diff_config();
        let trace = FuzzConfig {
            race_pct: 60,
            ..FuzzConfig::default()
        }
        .generate(17);
        let a = analyze(&trace, base).unwrap();
        for kind in DetectorKind::ALL {
            let mut det = build_detector(kind, base);
            trace.replay(&mut det).unwrap();
            assert_eq!(
                a.det(kind).keys,
                keys_of(det.races()),
                "{} keys attributed to the wrong row",
                kind.name()
            );
        }
        // The models genuinely differ on this trace, so a positional mixup
        // could not pass the per-kind equality above silently.
        assert!(
            DetectorKind::ALL
                .iter()
                .any(|&k| a.det(k).keys != a.det(DetectorKind::Scord).keys),
            "corpus must distinguish the models for this regression test"
        );
        let s = run(5, 8, Jobs::serial());
        for (row, kind) in s.rows.iter().zip(DetectorKind::ALL) {
            assert_eq!(row.kind, kind);
            assert_eq!(row.name, kind.name());
        }
    }

    /// Satellite: `minimize` is idempotent, and a reproducer shrunk under
    /// a class-exact predicate still exhibits the *original* divergence
    /// class, not just some divergence.
    #[test]
    fn minimize_is_idempotent_and_class_preserving() {
        let base = diff_config();
        // Small traces keep the quadratic shrink fast; high race_pct makes
        // divergences common.
        let cfg = FuzzConfig {
            events: 80,
            race_pct: 60,
            ..FuzzConfig::default()
        };
        let mut found = None;
        'outer: for seed in 0..64u64 {
            let trace = cfg.generate(seed);
            let a = analyze(&trace, base).unwrap();
            for kind in DetectorKind::ALL {
                let (_, classes) = classify_detector(&a, &trace, kind);
                if let Some(&(key, missed, class)) =
                    classes.iter().find(|(_, _, c)| *c != Divergence::Bug)
                {
                    found = Some((trace, kind, key, missed, class));
                    break 'outer;
                }
            }
        }
        let (trace, kind, key, missed, class) =
            found.expect("racey corpus yields at least one explained divergence");
        let persists = |c: &Trace| key_divergence(c, base, kind, key, missed) == Some(class);
        let min1 = minimize(&trace, persists);
        assert!(
            persists(&min1),
            "minimized reproducer must still exhibit {class:?}"
        );
        assert!(min1.len() <= trace.len());
        let min2 = minimize(&min1, persists);
        assert_eq!(
            min1.to_text(),
            min2.to_text(),
            "minimizing a minimized trace must be a no-op"
        );
    }

    #[test]
    fn minimizer_reaches_a_fixpoint() {
        let who = Accessor {
            sm: 0,
            block_slot: 0,
            warp_slot: 0,
        };
        let mut t = Trace::new();
        for pc in 0..6u32 {
            t.push(TraceEvent::Access(scord_core::MemAccess {
                kind: AccessKind::Store,
                addr: 0x100 + 4 * u64::from(pc % 2),
                strong: true,
                pc,
                who,
            }));
        }
        // Predicate: at least one access to 0x100 survives.
        let min = minimize(&t, |c| {
            c.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Access(a) if a.addr == 0x100))
        });
        assert_eq!(min.len(), 1);
    }
}
