//! Table VII — false positives as metadata tracking granularity grows.
//!
//! Coarser granularity shares one metadata entry between neighbouring data
//! words, so *correctly synchronized* applications start reporting races
//! that do not exist. ScoRD's software cache reduces memory the other way —
//! by eviction, never sharing — and must stay at zero.

use scord_core::StoreKind;
use scord_sim::{DetectionMode, Gpu, GpuConfig, OverheadToggles};

use crate::exec::{sweep, Jobs};
use crate::{apps, render_table};

/// One row of Table VII: false positives per app per store configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// False positives at 4-byte granularity (the base design — expect 0).
    pub g4: usize,
    /// False positives at 8-byte granularity.
    pub g8: usize,
    /// False positives at 16-byte granularity.
    pub g16: usize,
    /// False positives under ScoRD's cached store (expect 0).
    pub scord: usize,
}

fn false_positives(app: &dyn scor_suite::Benchmark, store: StoreKind) -> usize {
    let mode = DetectionMode::On {
        store,
        toggles: OverheadToggles::all(),
    };
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
    app.run(&mut gpu)
        .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
    // The app is correctly synchronized: every report is a false positive.
    gpu.races().expect("detection on").unique_count()
}

/// The four store configurations of Table VII, in column order.
const STORES: [StoreKind; 4] = [
    StoreKind::Full { granularity: 4 },
    StoreKind::Full { granularity: 8 },
    StoreKind::Full { granularity: 16 },
    StoreKind::Cached { ratio: 16 },
];

/// Runs the correctly-synchronized applications under each granularity,
/// one (application, store) cell per job, on up to `jobs` worker threads.
#[must_use]
pub fn run(quick: bool, jobs: Jobs) -> Vec<Row> {
    let apps = apps(quick);
    let cells: Vec<(usize, StoreKind)> = (0..apps.len())
        .flat_map(|a| STORES.map(|s| (a, s)))
        .collect();
    let fps = sweep("table7", jobs, &cells, |_, &(a, store)| {
        false_positives(apps[a].as_ref(), store)
    });
    apps.iter()
        .zip(fps.chunks_exact(STORES.len()))
        .map(|(app, f)| Row {
            workload: app.name().to_string(),
            g4: f[0],
            g8: f[1],
            g16: f[2],
            scord: f[3],
        })
        .collect()
}

/// Renders Table VII (with the metadata-overhead header row).
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let mut body = vec![vec![
        "Metadata overhead".to_string(),
        "200%".to_string(),
        "100%".to_string(),
        "50%".to_string(),
        "12.5%".to_string(),
    ]];
    body.extend(rows.iter().map(|r| {
        vec![
            r.workload.clone(),
            r.g4.to_string(),
            r.g8.to_string(),
            r.g16.to_string(),
            r.scord.to_string(),
        ]
    }));
    render_table(
        &[
            "Tracking granularity",
            "4-byte",
            "8-byte",
            "16-byte",
            "ScoRD",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_scord_have_zero_false_positives() {
        for row in run(true, Jobs::serial()) {
            assert_eq!(row.g4, 0, "{}: 4-byte granularity has no FPs", row.workload);
            assert_eq!(row.scord, 0, "{}: ScoRD has no FPs", row.workload);
        }
    }
}
