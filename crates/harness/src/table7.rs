//! Table VII — false positives as metadata tracking granularity grows.
//!
//! Coarser granularity shares one metadata entry between neighbouring data
//! words, so *correctly synchronized* applications start reporting races
//! that do not exist. ScoRD's software cache reduces memory the other way —
//! by eviction, never sharing — and must stay at zero.

use scord_core::StoreKind;
use scord_sim::{DetectionMode, Gpu, GpuConfig, OverheadToggles};

use crate::{apps, render_table};

/// One row of Table VII: false positives per app per store configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// False positives at 4-byte granularity (the base design — expect 0).
    pub g4: usize,
    /// False positives at 8-byte granularity.
    pub g8: usize,
    /// False positives at 16-byte granularity.
    pub g16: usize,
    /// False positives under ScoRD's cached store (expect 0).
    pub scord: usize,
}

fn false_positives(app: &dyn scor_suite::Benchmark, store: StoreKind) -> usize {
    let mode = DetectionMode::On {
        store,
        toggles: OverheadToggles::all(),
    };
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
    app.run(&mut gpu)
        .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
    // The app is correctly synchronized: every report is a false positive.
    gpu.races().expect("detection on").unique_count()
}

/// Runs the correctly-synchronized applications under each granularity.
#[must_use]
pub fn run(quick: bool) -> Vec<Row> {
    apps(quick)
        .iter()
        .map(|app| Row {
            workload: app.name().to_string(),
            g4: false_positives(app.as_ref(), StoreKind::Full { granularity: 4 }),
            g8: false_positives(app.as_ref(), StoreKind::Full { granularity: 8 }),
            g16: false_positives(app.as_ref(), StoreKind::Full { granularity: 16 }),
            scord: false_positives(app.as_ref(), StoreKind::Cached { ratio: 16 }),
        })
        .collect()
}

/// Renders Table VII (with the metadata-overhead header row).
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let mut body = vec![vec![
        "Metadata overhead".to_string(),
        "200%".to_string(),
        "100%".to_string(),
        "50%".to_string(),
        "12.5%".to_string(),
    ]];
    body.extend(rows.iter().map(|r| {
        vec![
            r.workload.clone(),
            r.g4.to_string(),
            r.g8.to_string(),
            r.g16.to_string(),
            r.scord.to_string(),
        ]
    }));
    render_table(
        &[
            "Tracking granularity",
            "4-byte",
            "8-byte",
            "16-byte",
            "ScoRD",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_scord_have_zero_false_positives() {
        for row in run(true) {
            assert_eq!(row.g4, 0, "{}: 4-byte granularity has no FPs", row.workload);
            assert_eq!(row.scord, 0, "{}: ScoRD has no FPs", row.workload);
        }
    }
}
