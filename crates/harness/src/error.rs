//! Harness-level failure reporting: which workload failed, and how.

use std::error::Error;
use std::fmt;

use scord_sim::{Gpu, SimError};

/// How a workload failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessErrorKind {
    /// The simulation itself failed (deadlock, watchdog timeout, malformed
    /// detector event).
    Sim(SimError),
    /// The experiment needed race reports but the GPU was built with
    /// detection off — a harness wiring bug, reported instead of panicking
    /// so one bad cell cannot abort a whole sweep.
    DetectionOff,
}

/// A workload failed to simulate.
///
/// Experiment runners return this instead of panicking so a single
/// deadlocked or malformed workload names itself rather than aborting the
/// whole sweep with a bare `expect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// The failing workload (a microbenchmark or application name).
    pub workload: String,
    /// The underlying failure.
    pub kind: HarnessErrorKind,
}

impl HarnessError {
    /// Wraps a [`SimError`] with the workload it came from.
    #[must_use]
    pub fn new(workload: impl Into<String>, error: SimError) -> Self {
        HarnessError {
            workload: workload.into(),
            kind: HarnessErrorKind::Sim(error),
        }
    }

    /// The workload's GPU had no detector attached.
    #[must_use]
    pub fn detection_off(workload: impl Into<String>) -> Self {
        HarnessError {
            workload: workload.into(),
            kind: HarnessErrorKind::DetectionOff,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            HarnessErrorKind::Sim(e) => write!(f, "workload {} failed: {e}", self.workload),
            HarnessErrorKind::DetectionOff => write!(
                f,
                "workload {} ran without race detection but the experiment \
                 needs race reports",
                self.workload
            ),
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            HarnessErrorKind::Sim(e) => Some(e),
            HarnessErrorKind::DetectionOff => None,
        }
    }
}

/// The unique-race count of a finished run, or a [`HarnessError`] naming
/// `workload` if the GPU was built without detection.
///
/// Every Result-returning experiment goes through this instead of
/// `gpu.races().expect(..)` so a misconfigured cell surfaces as an error.
pub(crate) fn unique_races(gpu: &Gpu, workload: &str) -> Result<usize, HarnessError> {
    gpu.races()
        .map(scord_core::RaceLog::unique_count)
        .ok_or_else(|| HarnessError::detection_off(workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, Gpu, GpuConfig};

    #[test]
    fn display_names_the_workload_and_cause() {
        let e = HarnessError::new("UTS", SimError::Timeout { cycles: 123 });
        let text = e.to_string();
        assert!(text.contains("UTS"), "{text}");
        assert!(text.contains("123"), "{text}");
        assert!(e.source().is_some());
    }

    #[test]
    fn detection_off_is_an_error_not_a_panic() {
        let gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::Off));
        let err = unique_races(&gpu, "MM").expect_err("no detector attached");
        assert_eq!(err.kind, HarnessErrorKind::DetectionOff);
        assert!(err.to_string().contains("MM"), "{err}");
        assert!(err.source().is_none());

        let gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        assert_eq!(unique_races(&gpu, "MM").expect("detector attached"), 0);
    }
}
