//! Harness-level failure reporting: which workload failed, and how.

use std::error::Error;
use std::fmt;

use scord_sim::SimError;

/// A workload failed to simulate.
///
/// Experiment runners return this instead of panicking so a single
/// deadlocked or malformed workload names itself rather than aborting the
/// whole sweep with a bare `expect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// The failing workload (a microbenchmark or application name).
    pub workload: String,
    /// The underlying simulator failure.
    pub error: SimError,
}

impl HarnessError {
    /// Wraps a [`SimError`] with the workload it came from.
    #[must_use]
    pub fn new(workload: impl Into<String>, error: SimError) -> Self {
        HarnessError {
            workload: workload.into(),
            error,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload {} failed: {}", self.workload, self.error)
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_workload_and_cause() {
        let e = HarnessError::new("UTS", SimError::Timeout { cycles: 123 });
        let text = e.to_string();
        assert!(text.contains("UTS"), "{text}");
        assert!(text.contains("123"), "{text}");
        assert!(e.source().is_some());
    }
}
