//! Harness-level failure reporting: which workload failed, and how.

use std::error::Error;
use std::fmt;

use scord_sim::{Gpu, SimError};

/// How a workload failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessErrorKind {
    /// The simulation itself failed (deadlock, watchdog timeout, malformed
    /// detector event).
    Sim(SimError),
    /// The experiment needed race reports but the GPU was built with
    /// detection off — a harness wiring bug, reported instead of panicking
    /// so one bad cell cannot abort a whole sweep.
    DetectionOff,
    /// A filesystem or socket operation failed (read-only checkout, missing
    /// directory, refused connection). The `io::Error` is flattened to its
    /// kind plus rendered message so the harness error stays `Clone + Eq`
    /// for test assertions.
    Io(std::io::ErrorKind, String),
    /// A benchmark record existed on disk but did not match the expected
    /// document shape. Named instead of silently starting a fresh file so a
    /// truncated `BENCH_*.json` cannot clobber recorded history.
    BenchMalformed,
}

/// A workload failed to simulate.
///
/// Experiment runners return this instead of panicking so a single
/// deadlocked or malformed workload names itself rather than aborting the
/// whole sweep with a bare `expect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// The failing workload (a microbenchmark or application name).
    pub workload: String,
    /// The underlying failure.
    pub kind: HarnessErrorKind,
}

impl HarnessError {
    /// Wraps a [`SimError`] with the workload it came from.
    #[must_use]
    pub fn new(workload: impl Into<String>, error: SimError) -> Self {
        HarnessError {
            workload: workload.into(),
            kind: HarnessErrorKind::Sim(error),
        }
    }

    /// The workload's GPU had no detector attached.
    #[must_use]
    pub fn detection_off(workload: impl Into<String>) -> Self {
        HarnessError {
            workload: workload.into(),
            kind: HarnessErrorKind::DetectionOff,
        }
    }

    /// Wraps an I/O failure with the path or endpoint it hit (recorded as
    /// the `workload`).
    #[must_use]
    pub fn io(target: impl Into<String>, error: &std::io::Error) -> Self {
        HarnessError {
            workload: target.into(),
            kind: HarnessErrorKind::Io(error.kind(), error.to_string()),
        }
    }

    /// The benchmark record at `path` exists but is not the expected shape.
    #[must_use]
    pub fn bench_malformed(path: impl Into<String>) -> Self {
        HarnessError {
            workload: path.into(),
            kind: HarnessErrorKind::BenchMalformed,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            HarnessErrorKind::Sim(e) => write!(f, "workload {} failed: {e}", self.workload),
            HarnessErrorKind::DetectionOff => write!(
                f,
                "workload {} ran without race detection but the experiment \
                 needs race reports",
                self.workload
            ),
            HarnessErrorKind::Io(kind, msg) => {
                write!(f, "{}: I/O failed ({kind:?}): {msg}", self.workload)
            }
            HarnessErrorKind::BenchMalformed => write!(
                f,
                "{}: existing benchmark record does not match the expected \
                 document shape; refusing to overwrite it (move the file \
                 aside to start fresh)",
                self.workload
            ),
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            HarnessErrorKind::Sim(e) => Some(e),
            HarnessErrorKind::DetectionOff
            | HarnessErrorKind::Io(..)
            | HarnessErrorKind::BenchMalformed => None,
        }
    }
}

/// The unique-race count of a finished run, or a [`HarnessError`] naming
/// `workload` if the GPU was built without detection.
///
/// Every Result-returning experiment goes through this instead of
/// `gpu.races().expect(..)` so a misconfigured cell surfaces as an error.
pub(crate) fn unique_races(gpu: &Gpu, workload: &str) -> Result<usize, HarnessError> {
    gpu.races()
        .map(scord_core::RaceLog::unique_count)
        .ok_or_else(|| HarnessError::detection_off(workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, Gpu, GpuConfig};

    #[test]
    fn display_names_the_workload_and_cause() {
        let e = HarnessError::new("UTS", SimError::Timeout { cycles: 123 });
        let text = e.to_string();
        assert!(text.contains("UTS"), "{text}");
        assert!(text.contains("123"), "{text}");
        assert!(e.source().is_some());
    }

    #[test]
    fn detection_off_is_an_error_not_a_panic() {
        let gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::Off));
        let err = unique_races(&gpu, "MM").expect_err("no detector attached");
        assert_eq!(err.kind, HarnessErrorKind::DetectionOff);
        assert!(err.to_string().contains("MM"), "{err}");
        assert!(err.source().is_none());

        let gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        assert_eq!(unique_races(&gpu, "MM").expect("detector attached"), 0);
    }

    #[test]
    fn io_and_bench_variants_name_the_target() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "read-only fs");
        let e = HarnessError::io("/tmp/BENCH_sim.json", &io);
        assert_eq!(
            e.kind,
            HarnessErrorKind::Io(std::io::ErrorKind::PermissionDenied, "read-only fs".into())
        );
        let text = e.to_string();
        assert!(text.contains("BENCH_sim.json"), "{text}");
        assert!(text.contains("PermissionDenied"), "{text}");

        let e = HarnessError::bench_malformed("BENCH_serve.json");
        assert_eq!(e.kind, HarnessErrorKind::BenchMalformed);
        assert!(e.to_string().contains("refusing to overwrite"), "{}", e);
        assert!(e.source().is_none());
    }
}
