//! Figure 8 — execution cycles normalized to no race detection.
//!
//! Two bars per application: the base design (full 4-byte metadata) and
//! ScoRD (cached metadata). The paper reports a ~35% geometric-mean overhead
//! for ScoRD, with 1DC worst (atomic-heavy, NoC-bound) and caching the
//! metadata *helping* performance relative to the base design.

use scord_sim::DetectionMode;

use crate::exec::{sweep, Jobs};
use crate::{apps, render_table, run_app, MemoryVariant};

/// One application's normalized execution cycles.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workload: String,
    /// Cycles without detection.
    pub off_cycles: u64,
    /// Base-design cycles / no-detection cycles.
    pub base: f64,
    /// ScoRD cycles / no-detection cycles.
    pub scord: f64,
}

/// Runs each application under the three detection modes, one
/// (application, mode) cell per job, on up to `jobs` worker threads.
#[must_use]
pub fn run(quick: bool, jobs: Jobs) -> Vec<Row> {
    let apps = apps(quick);
    let modes = [
        DetectionMode::Off,
        DetectionMode::base_design(),
        DetectionMode::scord(),
    ];
    let cells: Vec<(usize, DetectionMode)> = (0..apps.len())
        .flat_map(|a| modes.map(|m| (a, m)))
        .collect();
    let cycles = sweep("fig8", jobs, &cells, |_, &(a, mode)| {
        run_app(apps[a].as_ref(), mode, MemoryVariant::Default).cycles
    });
    apps.iter()
        .zip(cycles.chunks_exact(modes.len()))
        .map(|(app, c)| Row {
            workload: app.name().to_string(),
            off_cycles: c[0],
            base: c[1] as f64 / c[0] as f64,
            scord: c[2] as f64 / c[0] as f64,
        })
        .collect()
}

/// Geometric mean of the ScoRD bars (the paper's "35% on average").
#[must_use]
pub fn geomean_scord(rows: &[Row]) -> f64 {
    let p: f64 = rows.iter().map(|r| r.scord.ln()).sum::<f64>() / rows.len() as f64;
    p.exp()
}

/// Renders Figure 8 as a table.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.off_cycles.to_string(),
                format!("{:.3}", r.base),
                format!("{:.3}", r.scord),
            ]
        })
        .collect();
    body.push(vec![
        "geomean".into(),
        "-".into(),
        format!(
            "{:.3}",
            (rows.iter().map(|r| r.base.ln()).sum::<f64>() / rows.len() as f64).exp()
        ),
        format!("{:.3}", geomean_scord(rows)),
    ]);
    render_table(
        &[
            "Workload",
            "No-detection cycles",
            "Base design (normalized)",
            "ScoRD (normalized)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_overheads_are_plausible() {
        let rows = run(true, Jobs::serial());
        assert_eq!(rows.len(), 7);
        for r in &rows {
            // Detection perturbs lock-acquisition and work-stealing order,
            // so irregular apps can come out marginally *faster* — allow a
            // few percent of slack, but nothing resembling a speedup.
            assert!(r.base >= 0.93, "{}: base {:.3}", r.workload, r.base);
            assert!(r.scord >= 0.93, "{}: scord {:.3}", r.workload, r.scord);
            assert!(
                r.base < 5.0 && r.scord < 5.0,
                "{}: runaway overhead",
                r.workload
            );
        }
        let g = geomean_scord(&rows);
        assert!(
            (1.0..3.0).contains(&g),
            "overhead in a plausible band: {g:.3}"
        );
    }
}
