//! Tiny markdown table renderer.

/// Renders a GitHub-flavoured markdown table from a header and rows.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let t = render_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
        assert_eq!(lines.len(), 4);
    }
}
