//! Paper-scale sweep tier: the suite's applications at the *paper's* input
//! sizes, with the instrumentation those sizes exist to exercise.
//!
//! The regular perf basket ([`crate::perf`]) runs quick-size workloads so a
//! basket stays under a minute; this tier deliberately runs the big ones —
//! the 25.6M-element reduction, the 800×500×30 matrix multiply, and R-MAT
//! graphs at 10×+ the default — because three questions only show up at
//! that scale:
//!
//! 1. **Does sampled-SM extrapolation hold?** Each sampled entry runs the
//!    simulator with `sample_sms = K` detailed SMs plus ghost contention
//!    traffic for the rest (see `scord_sim::sample`), and records the
//!    measured, compute-term, memory-term and extrapolated cycle counts
//!    with the model's error bound. When the matching full-detail entry
//!    ran in the same sweep, the realized `sampled_vs_full_err_pct` is
//!    recorded next to the bound — the acceptance number.
//! 2. **What does the detector's metadata actually cost in memory?** Every
//!    entry snapshots the process footprint ([`crate::footprint`]) after
//!    the run, and detection-on entries add the metadata store's own byte
//!    accounting (`Gpu::detector_store_usage`).
//! 3. **Does topology-aware worker pinning pay off on a real multi-SM
//!    drain?** The full-size reduction runs as a pinned/unpinned A/B pair
//!    at `(sm_threads, mem_threads) = (4, 4)`, tagged with a `pinned`
//!    extra field.
//!
//! Results append to the same `BENCH_sim.json` as the perf basket, as
//! schema-4 rows whose `extra` fields carry the numbers above. Extrapolated
//! cycle counts are **never** fed into paper tables — they appear only
//! here, always next to their error bound.

use std::time::Instant;

use scor_suite::apps::{GraphConnectivity, MatMul, Reduction};
use scor_suite::Benchmark;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

use crate::footprint;
use crate::perf::{ExtraValue, Measurement, PerfRun};
use crate::render_table;

/// Heap given to the simulated GPU: paper-scale inputs (25.6M words of
/// reduction input, 1M-vertex graphs) outgrow the 64 MiB default.
const PAPER_MEM_BYTES: u64 = 192 << 20;

/// `(sm_threads, mem_threads)` for the full-detail entries. Sampled entries
/// run serial: with only K detailed SMs the parallel front end's overhead
/// exceeds its win.
const FULL_THREADS: u32 = 4;

/// Options for one paper-scale sweep.
#[derive(Debug, Clone)]
pub struct PaperScaleOptions {
    /// Shrink inputs ~16× for CI (`--quick`). The row *structure* is
    /// identical, so schema validation exercises the same code paths.
    pub quick: bool,
    /// Detailed SMs for the sampled entries (`--sample-sms`); 0 skips them.
    pub sample_sms: u32,
    /// Pin workers for every entry (`--pin`). The reduction A/B pair
    /// toggles pinning explicitly regardless of this flag.
    pub pin: bool,
    /// Run label recorded in `BENCH_sim.json`.
    pub label: String,
}

impl Default for PaperScaleOptions {
    fn default() -> Self {
        PaperScaleOptions {
            quick: false,
            sample_sms: 5,
            pin: false,
            label: "paper-scale".into(),
        }
    }
}

/// The reduction at paper scale (25.6M elements) or the quick stand-in.
fn reduction(quick: bool) -> Reduction {
    Reduction {
        elements: if quick { 1_600_000 } else { 25_600_000 },
        blocks: 120,
        threads_per_block: 128,
        ..Reduction::default()
    }
}

/// The matrix multiply at the paper's geometry (800×500×30), or a ~16×
/// smaller same-shape instance for quick mode — detection-on at the full
/// geometry alone costs minutes, which belongs in the recorded full tier,
/// not CI.
fn matmul(quick: bool) -> MatMul {
    let mm = MatMul {
        m: 800,
        k: 500,
        n: 30,
        ..MatMul::default()
    };
    if quick {
        MatMul {
            m: 200,
            k: 125,
            ..mm
        }
    } else {
        mm
    }
}

/// Graph-connectivity scale multipliers for the tier: R-MAT graphs at
/// 10×, 30× and 100× the default node count. All three complete in
/// seconds-to-minutes on a dev host now that `GraphConnectivity::scaled`
/// caps its grid at full residency (an over-cap grid wedges the kernel's
/// inter-block sync — see that method's docs).
fn gcon_tiers(quick: bool) -> &'static [u32] {
    if quick {
        &[2]
    } else {
        &[10, 30, 100]
    }
}

/// Builds the GPU for one entry.
fn gpu(mode: DetectionMode, sample_sms: u32, threads: u32) -> Gpu {
    let mut cfg = GpuConfig::paper_default()
        .with_detection(mode)
        .with_sample_sms(sample_sms);
    cfg.mem_bytes = PAPER_MEM_BYTES;
    cfg.sm_threads = threads;
    cfg.mem_threads = threads;
    let mut g = Gpu::new(cfg);
    g.set_phase_timing(true);
    g
}

/// Runs `app` once on `gpu` and folds the result plus the footprint
/// snapshot into a [`Measurement`].
fn run_entry(name: String, app: &dyn Benchmark, gpu: &mut Gpu) -> Measurement {
    let t0 = Instant::now();
    let run = app
        .run(gpu)
        .unwrap_or_else(|e| panic!("paper-scale {name} failed: {e}"));
    let wall = t0.elapsed();
    assert!(
        run.output_valid != Some(false),
        "paper-scale {name} produced wrong output"
    );
    let (pa, pb) = gpu.phase_nanos();
    let mut extra = Vec::new();
    if let Some(f) = footprint::read() {
        extra.push(("peak_rss_bytes", ExtraValue::U64(f.peak_rss_bytes)));
        extra.push(("rss_bytes", ExtraValue::U64(f.rss_bytes)));
    }
    if let Some((bytes, entries)) = gpu.detector_store_usage() {
        extra.push(("store_bytes", ExtraValue::U64(bytes)));
        extra.push(("store_entries", ExtraValue::U64(entries)));
    }
    if let Some(r) = gpu.sample_report() {
        extra.push(("measured_cycles", ExtraValue::U64(r.measured_cycles)));
        extra.push((
            "compute_term_cycles",
            ExtraValue::U64(r.compute_term_cycles),
        ));
        extra.push(("memory_term_cycles", ExtraValue::U64(r.memory_term_cycles)));
        extra.push((
            "extrapolated_cycles",
            ExtraValue::U64(r.extrapolated_cycles),
        ));
        extra.push(("error_bound_pct", ExtraValue::F64(r.error_bound_pct)));
    }
    Measurement {
        name,
        wall,
        cycles: run.stats.cycles,
        phase_a_ns: pa,
        phase_b_ns: pb,
        phase_b_shard_ns: gpu.shard_phase_b_nanos().to_vec(),
        extra,
    }
}

/// Value of an extra field on a measurement, if present.
fn extra_of(m: &Measurement, key: &str) -> Option<ExtraValue> {
    m.extra.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// Runs the paper-scale tier and returns the run for recording.
///
/// # Panics
///
/// Panics if a workload fails to simulate or validates wrong output —
/// these are fixed, known-clean configurations, so failure is a bug.
#[must_use]
pub fn run(opts: &PaperScaleOptions) -> PerfRun {
    let size = if opts.quick { "quick" } else { "full" };
    let mut workloads = Vec::new();
    scord_pool::set_pin_workers(opts.pin);

    // Full-detail reduction, detection off, as a pinned/unpinned A/B pair.
    // Cycle counts are deterministic across thread counts and pinning, so
    // the unpinned row doubles as the baseline the sampled row's
    // extrapolation error is judged against.
    let red = reduction(opts.quick);
    let mut full_red_cycles = 0;
    for pinned in [false, true] {
        scord_pool::set_pin_workers(pinned);
        let suffix = if pinned { "/pinned" } else { "" };
        let mut g = gpu(DetectionMode::Off, 0, FULL_THREADS);
        let mut m = run_entry(
            format!("paper/RED/{size}/off/smt{FULL_THREADS}/memt{FULL_THREADS}{suffix}"),
            &red,
            &mut g,
        );
        m.extra.push(("pinned", ExtraValue::U64(u64::from(pinned))));
        full_red_cycles = m.cycles;
        workloads.push(m);
    }
    scord_pool::set_pin_workers(opts.pin);

    // Full-detail reduction with detection on: the metadata-store cost row.
    let mut g = gpu(DetectionMode::scord(), 0, FULL_THREADS);
    workloads.push(run_entry(
        format!("paper/RED/{size}/scord/smt{FULL_THREADS}/memt{FULL_THREADS}"),
        &red,
        &mut g,
    ));

    // Sampled reduction: K detailed SMs, serial. Record the realized error
    // against the full-detail baseline next to the model's own bound.
    if opts.sample_sms > 0 {
        let mut g = gpu(DetectionMode::Off, opts.sample_sms, 1);
        let mut m = run_entry(
            format!("paper/RED/{size}/off/sampled{}", opts.sample_sms),
            &red,
            &mut g,
        );
        if let Some(ExtraValue::U64(extrap)) = extra_of(&m, "extrapolated_cycles") {
            let err = (extrap as f64 - full_red_cycles as f64) / full_red_cycles as f64 * 100.0;
            m.extra
                .push(("sampled_vs_full_err_pct", ExtraValue::F64(err)));
        }
        workloads.push(m);
    }

    // Matrix multiply at paper geometry, detection off and on.
    let mm = matmul(opts.quick);
    for (mode_name, mode) in [
        ("off", DetectionMode::Off),
        ("scord", DetectionMode::scord()),
    ] {
        let mut g = gpu(mode, 0, FULL_THREADS);
        workloads.push(run_entry(
            format!("paper/MM/{size}/{mode_name}"),
            &mm,
            &mut g,
        ));
    }

    // R-MAT graph connectivity at the tier's scale multipliers.
    for &mult in gcon_tiers(opts.quick) {
        let gcon = GraphConnectivity::scaled(mult);
        let mut g = gpu(DetectionMode::Off, 0, FULL_THREADS);
        workloads.push(run_entry(format!("paper/GCONx{mult}/off"), &gcon, &mut g));
    }

    scord_pool::set_pin_workers(false);
    PerfRun {
        label: opts.label.clone(),
        iters: 1,
        workloads,
    }
}

/// Renders a paper-scale run as markdown. Extrapolated cycle counts are
/// always printed with their error bound (`≈N ±B%`) so they cannot be
/// mistaken for measured numbers.
#[must_use]
pub fn to_markdown(run: &PerfRun) -> String {
    let rows: Vec<Vec<String>> = run
        .workloads
        .iter()
        .map(|m| {
            let cycles = match (
                extra_of(m, "extrapolated_cycles"),
                extra_of(m, "error_bound_pct"),
            ) {
                (Some(ExtraValue::U64(e)), Some(ExtraValue::F64(b))) => {
                    format!("≈{e} ±{b:.1}% (measured {})", m.cycles)
                }
                _ => m.cycles.to_string(),
            };
            let footprint = match (extra_of(m, "peak_rss_bytes"), extra_of(m, "store_bytes")) {
                (Some(ExtraValue::U64(p)), Some(ExtraValue::U64(s))) => {
                    format!("{:.1} MiB peak / {:.1} MiB store", mib(p), mib(s))
                }
                (Some(ExtraValue::U64(p)), _) => format!("{:.1} MiB peak", mib(p)),
                _ => "-".into(),
            };
            let note = match extra_of(m, "sampled_vs_full_err_pct") {
                Some(ExtraValue::F64(e)) => format!("vs full: {e:+.1}%"),
                _ => match extra_of(m, "pinned") {
                    Some(ExtraValue::U64(1)) => "pinned".into(),
                    Some(ExtraValue::U64(_)) => "unpinned".into(),
                    _ => "-".into(),
                },
            };
            vec![
                m.name.clone(),
                format!("{:.1}", m.wall.as_secs_f64() * 1e3),
                cycles,
                footprint,
                note,
            ]
        })
        .collect();
    let mut out = format!(
        "## Paper-scale run `{}` ({} entries)\n\n",
        run.label,
        run.workloads.len()
    );
    out.push_str(&render_table(
        &["entry", "wall ms", "cycles", "footprint", "notes"],
        &rows,
    ));
    out
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn quick_tier_shapes_are_fixed() {
        assert_eq!(gcon_tiers(true), &[2]);
        assert_eq!(gcon_tiers(false), &[10, 30, 100]);
        assert_eq!(reduction(true).elements, 1_600_000);
        assert_eq!(reduction(false).elements, 25_600_000);
        let mm = matmul(false);
        assert_eq!((mm.m, mm.k, mm.n), (800, 500, 30));
        let quick_mm = matmul(true);
        assert_eq!((quick_mm.m, quick_mm.k, quick_mm.n), (200, 125, 30));
    }

    #[test]
    fn markdown_marks_extrapolated_cycles() {
        let run = PerfRun {
            label: "t".into(),
            iters: 1,
            workloads: vec![
                Measurement {
                    name: "paper/RED/full/off/sampled5".into(),
                    wall: Duration::from_millis(10),
                    cycles: 900,
                    phase_a_ns: 0,
                    phase_b_ns: 0,
                    phase_b_shard_ns: Vec::new(),
                    extra: vec![
                        ("extrapolated_cycles", ExtraValue::U64(2700)),
                        ("error_bound_pct", ExtraValue::F64(9.5)),
                        ("sampled_vs_full_err_pct", ExtraValue::F64(-2.0)),
                    ],
                },
                Measurement {
                    name: "paper/RED/full/off".into(),
                    wall: Duration::from_millis(30),
                    cycles: 2750,
                    phase_a_ns: 0,
                    phase_b_ns: 0,
                    phase_b_shard_ns: Vec::new(),
                    extra: vec![
                        ("peak_rss_bytes", ExtraValue::U64(512 << 20)),
                        ("pinned", ExtraValue::U64(0)),
                    ],
                },
            ],
        };
        let md = to_markdown(&run);
        assert!(md.contains("≈2700 ±9.5% (measured 900)"), "{md}");
        assert!(md.contains("vs full: -2.0%"), "{md}");
        assert!(md.contains("512.0 MiB peak"), "{md}");
        assert!(md.contains("unpinned"), "{md}");
        // The plain row prints its measured cycles unadorned.
        assert!(md.contains("| 2750 |"), "{md}");
    }
}
