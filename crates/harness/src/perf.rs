//! In-tree performance harness: times a fixed workload basket and records
//! the result in `BENCH_sim.json` at the repository root.
//!
//! Every experiment in this repository is bottlenecked by single-simulation
//! wall-clock, so the perf trajectory is tracked *in tree*: each
//! `run-experiments perf` invocation appends one run (per-workload median
//! wall-ns, simulated cycles/second where applicable, and the total) to the
//! JSON file, giving successive PRs a before/after record without any
//! external tooling.
//!
//! The basket is fixed so numbers stay comparable across runs:
//!
//! * three applications (MM, RED, GCON at quick sizes), detection off and on,
//! * eight microbenchmarks spanning the suite's categories, detection off
//!   and on,
//! * one fuzzed-trace replay straight through the detector (no simulator),
//! * the quick and full Table VI sweeps at `--jobs 1` — the end-to-end
//!   number the ROADMAP's "as fast as the hardware allows" goal is graded
//!   on,
//! * an intra-sim parallelism A/B: GCON scaled 4× at `(sm_threads,
//!   mem_threads)` (1,1), (4,1), (4,4), and (4,4) with topology-aware
//!   worker pinning (detection off and on) — the workload class the
//!   parallel SM stage, the sharded memory-side drain, and the
//!   physical-core-first pinning policy exist for. The pinned entries
//!   carry a `pinned` extra field so the A/B pair is machine-readable.
//!
//! Simulator entries run with per-phase timing enabled, so every record
//! carries the Phase A (parallel SM front end) vs Phase B (memory system +
//! detector) wall-time split alongside the total; the GCONx4 A/B entries
//! additionally record the per-shard (per L2 partition / DRAM channel)
//! Phase B split.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use scor_suite::micro::all_micros;
use scord_core::{Detector, FuzzConfig, ScordDetector};
use scord_sim::DetectionMode;

use crate::exec::Jobs;
use crate::{apps, HarnessError, MemoryVariant};

/// Seed for the fuzz-replay basket entry; fixed so every run replays the
/// identical trace.
const FUZZ_SEED: u64 = 42;
/// Events in the fuzz-replay trace — large enough that detector throughput
/// (not trace generation) dominates the measurement.
const FUZZ_EVENTS: u32 = 20_000;

/// The eight basket microbenchmarks, one per suite family plus the
/// highest-traffic variants.
const BASKET_MICROS: [&str; 8] = [
    "atom-nr-dev-dev-diff-block",
    "atom-racey-cta-cta-diff-block",
    "fence-nr-diff-block-gl-fence",
    "fence-racey-diff-block-missing",
    "lock-nr-device-diff-block",
    "lock-racey-block-diff-block",
    "lock-racey-store-escapes-cs",
    "atom-racey-dev-then-weak-load-diff-block",
];

/// A typed value in a [`Measurement`]'s schema-4 `extra` fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtraValue {
    /// An integer field (byte counts, cycle counts, 0/1 flags).
    U64(u64),
    /// A fractional field (error percentages).
    F64(f64),
}

impl ExtraValue {
    /// JSON rendering of the value.
    fn render(self) -> String {
        match self {
            ExtraValue::U64(v) => v.to_string(),
            ExtraValue::F64(v) => format!("{v:.3}"),
        }
    }
}

/// One timed basket entry.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Entry name, e.g. `MM/off` or `table6_quick_sweep`.
    pub name: String,
    /// Median wall time over the run's iterations.
    pub wall: Duration,
    /// Simulated GPU cycles per iteration (0 for sweep/replay entries that
    /// aggregate many simulations).
    pub cycles: u64,
    /// Wall nanoseconds the last iteration spent in Phase A (the per-SM
    /// front end; 0 for entries that aggregate many simulations).
    pub phase_a_ns: u64,
    /// Wall nanoseconds the last iteration spent in Phase B (memory
    /// system + detector drain; 0 for aggregate entries).
    pub phase_b_ns: u64,
    /// Per-shard (per L2 partition / DRAM channel) wall nanoseconds of the
    /// last iteration's sharded memory tick — a subset of `phase_b_ns`.
    /// Recorded only for the GCONx4 A/B entries; empty elsewhere so the
    /// record stays compact.
    pub phase_b_shard_ns: Vec<u64>,
    /// Schema-4 extension: entry-specific key/value fields appended to the
    /// JSON record verbatim (footprint bytes, sampled-extrapolation cycles
    /// and error bounds, pinning flags). Empty for classic entries, so the
    /// record shape of schema ≤3 entries is unchanged.
    pub extra: Vec<(&'static str, ExtraValue)>,
}

impl Measurement {
    /// Simulated cycles per wall second (0.0 when `cycles` is 0).
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// One full perf run: the basket measured at a point in time.
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// Run label (e.g. a PR tag), from `--label`.
    pub label: String,
    /// Iterations per entry (median taken).
    pub iters: usize,
    /// Per-entry measurements, in basket order.
    pub workloads: Vec<Measurement>,
}

impl PerfRun {
    /// Sum of the per-entry medians.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.workloads.iter().map(|m| m.wall).sum()
    }
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One iteration's simulation-side numbers, captured alongside the wall
/// time [`time_entry`] measures.
#[derive(Debug, Clone, Default)]
struct Sample {
    cycles: u64,
    phase_a_ns: u64,
    phase_b_ns: u64,
    /// Per-shard Phase B wall time; empty for aggregate entries.
    shard_b_ns: Vec<u64>,
}

impl Sample {
    /// A sweep/replay entry's sample: `n` results, no phase split.
    fn aggregate(n: u64) -> Self {
        Sample {
            cycles: n,
            ..Sample::default()
        }
    }
}

/// Times `body` `iters` times, returning the median wall time and the last
/// iteration's [`Sample`].
fn time_entry(iters: usize, mut body: impl FnMut() -> Sample) -> (Duration, Sample) {
    let mut samples = Vec::with_capacity(iters);
    let mut last = Sample::default();
    for _ in 0..iters {
        let t0 = Instant::now();
        last = body();
        samples.push(t0.elapsed());
    }
    (median(samples), last)
}

/// Builds a GPU for one basket simulation: phase timing on, `sm_threads` /
/// `mem_threads` as given (0 keeps the config default of 1).
fn basket_gpu(mode: DetectionMode, sm_threads: u32, mem_threads: u32) -> scord_sim::Gpu {
    let mut cfg = MemoryVariant::Default.config().with_detection(mode);
    if sm_threads > 0 {
        cfg.sm_threads = sm_threads;
    }
    if mem_threads > 0 {
        cfg.mem_threads = mem_threads;
    }
    let mut gpu = scord_sim::Gpu::new(cfg);
    gpu.set_phase_timing(true);
    gpu
}

/// Runs `app` on `gpu` and folds the result into the [`Sample`] shape
/// [`time_entry`] consumes.
fn timed_app(app: &dyn scor_suite::Benchmark, gpu: &mut scord_sim::Gpu) -> Sample {
    let run = app
        .run(gpu)
        .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
    assert!(
        run.output_valid != Some(false),
        "{} produced wrong output",
        app.name()
    );
    let (pa, pb) = gpu.phase_nanos();
    Sample {
        cycles: run.stats.cycles,
        phase_a_ns: pa,
        phase_b_ns: pb,
        shard_b_ns: gpu.shard_phase_b_nanos().to_vec(),
    }
}

/// Runs the fixed basket with `iters` iterations per entry (median
/// reported).
///
/// # Panics
///
/// Panics if a basket workload fails to simulate — the basket is a fixed
/// set of known-clean workloads, so a failure is a harness bug.
#[must_use]
pub fn run(iters: usize, label: &str) -> PerfRun {
    let iters = iters.max(1);
    let mut workloads = Vec::new();
    let modes = [
        ("off", DetectionMode::Off),
        ("scord", DetectionMode::scord()),
    ];

    // Three applications at quick sizes: MM, RED, GCON.
    let suite = apps(true);
    for app in suite
        .iter()
        .filter(|a| matches!(a.name(), "MM" | "RED" | "GCON"))
    {
        for (mode_name, mode) in modes {
            let (wall, s) = time_entry(iters, || {
                timed_app(app.as_ref(), &mut basket_gpu(mode, 0, 0))
            });
            workloads.push(Measurement {
                name: format!("{}/{mode_name}", app.name()),
                wall,
                cycles: s.cycles,
                phase_a_ns: s.phase_a_ns,
                phase_b_ns: s.phase_b_ns,
                phase_b_shard_ns: Vec::new(),
                extra: Vec::new(),
            });
        }
    }

    // Eight microbenchmarks.
    let micros = all_micros();
    for name in BASKET_MICROS {
        let m = micros
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("basket micro {name:?} missing from the suite"));
        for (mode_name, mode) in modes {
            let (wall, s) = time_entry(iters, || {
                let mut gpu = basket_gpu(mode, 0, 0);
                let cycles = m
                    .run(&mut gpu)
                    .unwrap_or_else(|e| panic!("{}: {e}", m.name))
                    .cycles;
                let (pa, pb) = gpu.phase_nanos();
                Sample {
                    cycles,
                    phase_a_ns: pa,
                    phase_b_ns: pb,
                    shard_b_ns: Vec::new(),
                }
            });
            workloads.push(Measurement {
                name: format!("{name}/{mode_name}"),
                wall,
                cycles: s.cycles,
                phase_a_ns: s.phase_a_ns,
                phase_b_ns: s.phase_b_ns,
                phase_b_shard_ns: Vec::new(),
                extra: Vec::new(),
            });
        }
    }

    // Intra-sim parallelism A/B: GCON scaled 4× at (sm_threads,
    // mem_threads) (1,1), (4,1) and (4,4), plus (4,4) with topology-aware
    // worker pinning — the pinned-vs-unpinned A/B rides on the combo where
    // both parallel phases are active. The entries per mode measure the
    // parallel SM stage alone and then both phases together, on a
    // simulation big enough for the phases to dominate. These are the only
    // entries that record the per-shard Phase B split.
    let big = scor_suite::apps::GraphConnectivity::scaled(4);
    for (mode_name, mode) in modes {
        for (smt, memt, pinned) in [
            (1u32, 1u32, false),
            (4, 1, false),
            (4, 4, false),
            (4, 4, true),
        ] {
            // Label with the *effective* thread counts: the process-wide
            // `--sm-threads` / `--mem-threads` floors can raise a
            // configured 1 (e.g. the CI smoke runs the whole basket at 2).
            let probe = basket_gpu(mode, smt, memt);
            let (eff_s, eff_m) = (probe.sm_threads(), probe.mem_threads());
            drop(probe);
            // The pool samples the pinning toggle at construction, so each
            // iteration's fresh `basket_gpu` pool picks the A/B side up.
            scord_pool::set_pin_workers(pinned);
            let (wall, s) = time_entry(iters, || timed_app(&big, &mut basket_gpu(mode, smt, memt)));
            scord_pool::set_pin_workers(false);
            let suffix = if pinned { "/pinned" } else { "" };
            workloads.push(Measurement {
                name: format!("GCONx4/{mode_name}/smt{eff_s}/memt{eff_m}{suffix}"),
                wall,
                cycles: s.cycles,
                phase_a_ns: s.phase_a_ns,
                phase_b_ns: s.phase_b_ns,
                phase_b_shard_ns: s.shard_b_ns,
                extra: if smt == 4 && memt == 4 {
                    vec![("pinned", ExtraValue::U64(u64::from(pinned)))]
                } else {
                    Vec::new()
                },
            });
        }
    }

    // One fuzzed-trace replay straight through the detector.
    let trace = FuzzConfig {
        events: FUZZ_EVENTS,
        ..FuzzConfig::default()
    }
    .generate(FUZZ_SEED);
    let (wall, ..) = time_entry(iters, || {
        let mut det = ScordDetector::new(crate::diff::diff_config());
        trace
            .replay(&mut det)
            .unwrap_or_else(|e| panic!("fuzz basket trace must replay: {e}"));
        Sample::aggregate(u64::from(det.races().unique_count() as u32))
    });
    workloads.push(Measurement {
        name: format!("fuzz_replay_{FUZZ_EVENTS}ev"),
        wall,
        cycles: 0,
        phase_a_ns: 0,
        phase_b_ns: 0,
        phase_b_shard_ns: Vec::new(),
        extra: Vec::new(),
    });

    // The Table VI sweeps, serial: the end-to-end regression tripwire.
    let (wall, ..) = time_entry(iters, || {
        let n = crate::table6::run(true, Jobs::serial())
            .expect("table6 quick sweep")
            .len() as u64;
        Sample::aggregate(n)
    });
    workloads.push(Measurement {
        name: "table6_quick_sweep".into(),
        wall,
        cycles: 0,
        phase_a_ns: 0,
        phase_b_ns: 0,
        phase_b_shard_ns: Vec::new(),
        extra: Vec::new(),
    });
    let (wall, ..) = time_entry(iters, || {
        let n = crate::table6::run(false, Jobs::serial())
            .expect("table6 full sweep")
            .len() as u64;
        Sample::aggregate(n)
    });
    workloads.push(Measurement {
        name: "table6_full_sweep".into(),
        wall,
        cycles: 0,
        phase_a_ns: 0,
        phase_b_ns: 0,
        phase_b_shard_ns: Vec::new(),
        extra: Vec::new(),
    });

    PerfRun {
        label: label.to_string(),
        iters,
        workloads,
    }
}

/// Renders a perf run as a markdown table (stdout companion to the JSON).
#[must_use]
pub fn to_markdown(run: &PerfRun) -> String {
    let body: Vec<Vec<String>> = run
        .workloads
        .iter()
        .map(|m| {
            let phase = |ns: u64| {
                if ns == 0 {
                    "-".into()
                } else {
                    format!("{:.3}", ns as f64 / 1e6)
                }
            };
            vec![
                m.name.clone(),
                format!("{}", m.wall.as_nanos()),
                format!("{:.3}", m.wall.as_secs_f64() * 1e3),
                phase(m.phase_a_ns),
                phase(m.phase_b_ns),
                if m.cycles == 0 {
                    "-".into()
                } else {
                    format!("{:.0}", m.cycles_per_sec())
                },
            ]
        })
        .collect();
    let mut out = crate::render_table(
        &[
            "Workload",
            "median wall (ns)",
            "median wall (ms)",
            "phase A (ms)",
            "phase B (ms)",
            "sim cycles/s",
        ],
        &body,
    );
    let _ = write!(
        out,
        "\nTotal (sum of medians): {:.3} ms over {} iteration(s) per entry.",
        run.total_wall().as_secs_f64() * 1e3,
        run.iters
    );
    out
}

// ---- BENCH_sim.json ------------------------------------------------------

/// Default location of the benchmark record: `BENCH_sim.json` at the repo
/// root (two levels above this crate's manifest).
#[must_use]
pub fn default_bench_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json")
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_run(run: &PerfRun) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\n      \"label\": \"{}\",\n      \"iters\": {},\n      \
         \"total_wall_ns\": {},\n      \"workloads\": [\n",
        json_escape(&run.label),
        run.iters,
        run.total_wall().as_nanos()
    );
    for (i, m) in run.workloads.iter().enumerate() {
        let comma = if i + 1 < run.workloads.len() { "," } else { "" };
        let shards = if m.phase_b_shard_ns.is_empty() {
            String::new()
        } else {
            let joined: Vec<String> = m.phase_b_shard_ns.iter().map(u64::to_string).collect();
            format!(", \"phase_b_shard_ns\": [{}]", joined.join(", "))
        };
        let extras: String = m
            .extra
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {}", v.render()))
            .collect();
        let _ = writeln!(
            out,
            "        {{\"name\": \"{}\", \"wall_ns\": {}, \"cycles\": {}, \
             \"cycles_per_sec\": {:.1}, \"phase_a_ns\": {}, \
             \"phase_b_ns\": {}{shards}{extras}}}{comma}",
            json_escape(&m.name),
            m.wall.as_nanos(),
            m.cycles,
            m.cycles_per_sec(),
            m.phase_a_ns,
            m.phase_b_ns
        );
    }
    out.push_str("      ]\n    }");
    out
}

/// Extracts the raw text of each element of the top-level `"runs": [...]`
/// array from an existing benchmark record, so appending a run preserves
/// history verbatim without a full JSON parser. Returns `None` when the
/// file does not match the expected shape — the caller reports that as a
/// [`HarnessErrorKind::BenchMalformed`](crate::HarnessErrorKind) rather
/// than clobbering the record.
pub(crate) fn existing_runs(text: &str) -> Option<Vec<String>> {
    let key = text.find("\"runs\"")?;
    let open = key + text[key..].find('[')?;
    // Bracket/string-aware scan of the array body.
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut elems = Vec::new();
    let mut start = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => {
                if depth == 1 && start.is_none() {
                    start = Some(i);
                }
                depth += 1;
            }
            b']' | b'}' => {
                depth -= 1;
                if depth == 1 {
                    let s = start.take()?;
                    elems.push(text[s..=i].trim().to_string());
                }
                if depth == 0 {
                    return Some(elems);
                }
            }
            _ => {}
        }
    }
    None
}

/// Serializes `runs` into the `BENCH_sim.json` document format.
///
/// Schema history: 1 = per-workload `wall_ns`/`cycles`/`cycles_per_sec`;
/// 2 adds `phase_a_ns`/`phase_b_ns` to simulator entries; 3 adds per-shard
/// `phase_b_shard_ns` arrays to the sharded-memory (GCONx4) entries; 4 adds
/// per-entry `extra` key/values — memory-footprint bytes, sampled-SM
/// extrapolation cycles with their error bounds, and pinning A/B flags —
/// emitted by the paper-scale tier and the pinned basket entries. Runs
/// recorded under older schemas are preserved verbatim (the raw-text run
/// extractor does not care about per-run fields), so a schema-4 document
/// may contain runs without the newer keys.
fn render_document(raw_runs: &[String]) -> String {
    let mut out = String::from("{\n  \"schema\": 4,\n  \"runs\": [\n");
    for (i, r) in raw_runs.iter().enumerate() {
        // Re-indent preserved raw runs to the array's nesting level.
        let indented = if r.starts_with('{') && !r.starts_with("{\n") && !r.contains('\n') {
            format!("    {r}")
        } else if r.starts_with("    ") {
            r.clone()
        } else {
            format!("    {r}")
        };
        let comma = if i + 1 < raw_runs.len() { "," } else { "" };
        let _ = writeln!(out, "{}{comma}", indented.trim_end());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Reads the raw runs already recorded at `path` (empty when the file does
/// not exist yet).
///
/// Shared by the `BENCH_sim.json` and `BENCH_serve.json` writers: both use
/// the same `{"schema": N, "runs": [...]}` envelope.
///
/// # Errors
///
/// [`HarnessErrorKind::Io`](crate::HarnessErrorKind) when the file exists
/// but cannot be read (permissions, not-a-file);
/// [`HarnessErrorKind::BenchMalformed`](crate::HarnessErrorKind) when it
/// reads but is truncated or otherwise not the expected document shape —
/// named so a damaged record is never silently clobbered.
pub(crate) fn read_recorded_runs(path: &Path) -> Result<Vec<String>, HarnessError> {
    match fs::read_to_string(path) {
        Ok(text) => existing_runs(&text)
            .ok_or_else(|| HarnessError::bench_malformed(path.display().to_string())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(HarnessError::io(path.display().to_string(), &e)),
    }
}

/// Appends `run` to the `BENCH_sim.json` at `path` (creating it if absent)
/// and returns the number of runs now recorded.
///
/// # Errors
///
/// Typed [`HarnessError`]s: `Io` for filesystem failures (e.g. a read-only
/// checkout), `BenchMalformed` when an existing record does not parse —
/// the run is *not* written over it.
pub fn append_to_bench_json(path: &Path, run: &PerfRun) -> Result<usize, HarnessError> {
    let mut raw = read_recorded_runs(path)?;
    raw.push(render_run(run));
    let n = raw.len();
    fs::write(path, render_document(&raw))
        .map_err(|e| HarnessError::io(path.display().to_string(), &e))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run(label: &str) -> PerfRun {
        PerfRun {
            label: label.into(),
            iters: 1,
            workloads: vec![
                Measurement {
                    name: "a/off".into(),
                    wall: Duration::from_nanos(1000),
                    cycles: 500,
                    phase_a_ns: 300,
                    phase_b_ns: 600,
                    phase_b_shard_ns: Vec::new(),
                    extra: Vec::new(),
                },
                Measurement {
                    name: "GCONx4/off/smt4/memt2".into(),
                    wall: Duration::from_nanos(1500),
                    cycles: 800,
                    phase_a_ns: 400,
                    phase_b_ns: 900,
                    phase_b_shard_ns: vec![120, 0, 340],
                    extra: vec![
                        ("pinned", ExtraValue::U64(1)),
                        ("error_bound_pct", ExtraValue::F64(4.25)),
                    ],
                },
                Measurement {
                    name: "sweep".into(),
                    wall: Duration::from_nanos(2500),
                    cycles: 0,
                    phase_a_ns: 0,
                    phase_b_ns: 0,
                    phase_b_shard_ns: Vec::new(),
                    extra: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn render_and_reextract_roundtrip() {
        let doc = render_document(&[render_run(&fake_run("one"))]);
        let runs = existing_runs(&doc).expect("document parses");
        assert_eq!(runs.len(), 1);
        assert!(runs[0].contains("\"label\": \"one\""));
        assert!(runs[0].contains("\"total_wall_ns\": 5000"));
        assert!(runs[0].contains("\"phase_a_ns\": 300"));
        // The shard split is emitted only for the entry that has one; the
        // nested array must survive the bracket-aware re-extraction.
        assert!(runs[0].contains("\"phase_b_shard_ns\": [120, 0, 340]"));
        assert_eq!(runs[0].matches("phase_b_shard_ns").count(), 1);
        // Schema-4 extras ride on the same entry, typed per value.
        assert!(runs[0].contains("\"pinned\": 1, \"error_bound_pct\": 4.250"));
        assert_eq!(runs[0].matches("pinned").count(), 1);
        // Appending preserves the first run verbatim.
        let mut raw = runs;
        raw.push(render_run(&fake_run("two")));
        let doc2 = render_document(&raw);
        let runs2 = existing_runs(&doc2).expect("still parses");
        assert_eq!(runs2.len(), 2);
        assert!(runs2[0].contains("one") && runs2[1].contains("two"));
        assert!(runs2[1].contains("\"phase_b_shard_ns\": [120, 0, 340]"));
    }

    #[test]
    fn schema1_documents_remain_appendable() {
        let old = "{\n  \"schema\": 1,\n  \"runs\": [\n    {\"label\": \"legacy\", \
                   \"iters\": 1, \"total_wall_ns\": 5, \"workloads\": [\n        \
                   {\"name\": \"x\", \"wall_ns\": 5, \"cycles\": 1, \
                   \"cycles_per_sec\": 0.2}\n      ]}\n  ]\n}\n";
        let mut raw = existing_runs(old).expect("schema-1 document parses");
        assert_eq!(raw.len(), 1);
        raw.push(render_run(&fake_run("new")));
        let doc = render_document(&raw);
        assert!(doc.contains("\"schema\": 4"));
        let runs = existing_runs(&doc).expect("upgraded document parses");
        assert_eq!(runs.len(), 2);
        assert!(runs[0].contains("legacy") && !runs[0].contains("phase_a_ns"));
        assert!(runs[1].contains("phase_a_ns"));
    }

    #[test]
    fn malformed_record_is_a_named_error_not_a_clobber() {
        assert!(existing_runs("not json at all").is_none());
        assert!(existing_runs("{\"schema\": 1}").is_none());

        // A truncated record on disk surfaces as BenchMalformed and the
        // file is left untouched.
        let dir = std::env::temp_dir().join("scord-perf-bench-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_truncated.json");
        let truncated = "{\n  \"schema\": 2,\n  \"runs\": [\n    {\"label\": \"cut";
        fs::write(&path, truncated).expect("write fixture");
        let err = append_to_bench_json(&path, &fake_run("new")).expect_err("must not clobber");
        assert_eq!(err.kind, crate::HarnessErrorKind::BenchMalformed);
        assert_eq!(
            fs::read_to_string(&path).expect("still readable"),
            truncated,
            "damaged record must be preserved verbatim"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_starts_fresh_and_unreadable_path_is_io_error() {
        let dir = std::env::temp_dir().join("scord-perf-bench-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_fresh.json");
        fs::remove_file(&path).ok();
        assert!(read_recorded_runs(&path)
            .expect("absent file is fine")
            .is_empty());
        let n = append_to_bench_json(&path, &fake_run("first")).expect("creates the record");
        assert_eq!(n, 1);
        let n = append_to_bench_json(&path, &fake_run("second")).expect("appends");
        assert_eq!(n, 2);
        fs::remove_file(&path).ok();

        // A directory in place of the record is an I/O error, not a panic.
        let err = read_recorded_runs(&dir).expect_err("directories do not read as text");
        assert!(
            matches!(err.kind, crate::HarnessErrorKind::Io(..)),
            "{err:?}"
        );
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn median_is_order_insensitive() {
        let d = |n| Duration::from_nanos(n);
        assert_eq!(median(vec![d(9), d(1), d(5)]), d(5));
        assert_eq!(median(vec![d(2), d(1)]), d(2));
        assert_eq!(median(vec![d(7)]), d(7));
    }

    #[test]
    fn cycles_per_sec_guards_zero() {
        let m = Measurement {
            name: "x".into(),
            wall: Duration::from_secs(1),
            cycles: 0,
            phase_a_ns: 0,
            phase_b_ns: 0,
            phase_b_shard_ns: Vec::new(),
            extra: Vec::new(),
        };
        assert_eq!(m.cycles_per_sec(), 0.0);
        let m2 = Measurement {
            cycles: 1_000_000,
            ..m
        };
        assert!((m2.cycles_per_sec() - 1e6).abs() < 1.0);
    }

    #[test]
    fn basket_micro_names_exist_in_suite() {
        let names: Vec<&str> = all_micros().iter().map(|m| m.name).collect();
        for n in BASKET_MICROS {
            assert!(names.contains(&n), "basket micro {n:?} missing");
        }
    }
}
