//! A parallel executor for experiment sweeps, built on [`scord_pool`].
//!
//! Every table/figure reproduction is a matrix of fully independent
//! simulations (one fresh [`scord_sim::Gpu`] per cell), which is exactly the
//! embarrassingly-parallel shape GPU-simulator harnesses shard across host
//! threads. This module supplies the one primitive they all use:
//! [`run_jobs`] fans a slice of job descriptors out over a persistent
//! [`scord_pool::WorkerPool`] (cached process-wide and rebuilt only when
//! the requested worker count changes), and workers deposit results into
//! slots indexed by job id — so a parallel sweep emits **byte-identical**
//! tables to a serial one, regardless of which worker finishes first.
//!
//! Determinism argument: job cells never share mutable state (each builds
//! its own `Gpu`, which is `Send`), the result of cell *i* lands in slot
//! *i*, and all folding over the slots happens after the pool joins, in job
//! order. Thread scheduling can therefore change only *when* a cell runs,
//! never *what* it computes or where its result goes.
//!
//! [`sweep`] adds per-job wall-time accounting on top and records a
//! [`SweepStats`] into a process-global registry the `run-experiments`
//! binary drains for its timing summary.

use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use scord_pool::WorkerPool;

/// Worker-thread budget for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// One worker: the sweep runs inline on the calling thread, exactly as
    /// the serial harness always did.
    #[must_use]
    pub fn serial() -> Self {
        Jobs(NonZeroUsize::MIN)
    }

    /// `n` workers; `None` if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Option<Self> {
        NonZeroUsize::new(n).map(Jobs)
    }

    /// One worker per available hardware thread (1 if that cannot be
    /// determined).
    #[must_use]
    pub fn available() -> Self {
        Jobs(thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    /// Defaults to serial so library callers (and tests) opt into
    /// parallelism explicitly.
    fn default() -> Self {
        Jobs::serial()
    }
}

/// Timing of one executed sweep, for the `run-experiments` summary.
#[derive(Debug, Clone, Copy)]
pub struct SweepStats {
    /// Which experiment the sweep belongs to.
    pub label: &'static str,
    /// Number of job cells executed.
    pub cells: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Sum of per-job wall times — the serial-equivalent cost; `busy / wall`
    /// is the achieved speedup.
    pub busy: Duration,
}

static RECORDED: Mutex<Vec<SweepStats>> = Mutex::new(Vec::new());

/// Drains every [`SweepStats`] recorded by [`sweep`] since the last call.
#[must_use]
pub fn take_recorded() -> Vec<SweepStats> {
    std::mem::take(&mut RECORDED.lock().expect("timing registry lock"))
}

/// The process-wide sweep pool, rebuilt only when a sweep asks for a
/// different worker count than the cached pool has. One pool suffices
/// because sweeps run one at a time with a fixed `--jobs`; the lock is
/// `try_lock`ed so a nested or concurrent sweep degrades to a temporary
/// pool instead of deadlocking.
static SWEEP_POOL: Mutex<Option<WorkerPool>> = Mutex::new(None);

/// Runs `run(i, &items[i])` for every item, on up to `jobs` worker threads,
/// returning the results in item order.
///
/// * Work is fanned out over a persistent [`WorkerPool`]: workers pull the
///   next job id from a shared atomic cursor, so cells are load-balanced
///   without any work-stealing machinery, and the threads survive across
///   sweeps instead of being respawned per call.
/// * Result `i` always lands in slot `i`: output is independent of worker
///   count and scheduling.
/// * A panicking job aborts the sweep: remaining workers stop picking up
///   jobs and the panic is re-raised on the calling thread once the
///   barrier completes.
pub fn run_jobs<J, T, F>(jobs: Jobs, items: &[J], run: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        // Inline serial path: today's behaviour, bit for bit (and panics
        // propagate untouched).
        return items.iter().enumerate().map(|(i, j)| run(i, j)).collect();
    }

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut fill = |pool: &WorkerPool| {
        pool.for_each_mut(&mut slots, |i, slot| *slot = Some(run(i, &items[i])));
    };
    let guard = match SWEEP_POOL.try_lock() {
        Ok(g) => Some(g),
        // The pool survives panicking sweeps, so a poisoned lock just
        // means an earlier sweep unwound mid-run; keep using the cache.
        Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        // A sweep is already running on another thread (or this one,
        // reentrantly): spin up a short-lived pool rather than block.
        Err(std::sync::TryLockError::WouldBlock) => None,
    };
    match guard {
        Some(mut cached) => {
            let pool = cached
                .take()
                .filter(|p| p.threads() == workers)
                .unwrap_or_else(|| WorkerPool::new(workers));
            // Park the pool in the cache before running so a panicking
            // sweep (which the pool survives) doesn't tear it down.
            fill(cached.insert(pool));
        }
        None => fill(&WorkerPool::new(workers)),
    }
    slots
        .into_iter()
        .map(|s| s.expect("no panic: every job deposited its result"))
        .collect()
}

/// [`run_jobs`] plus timing: measures each job's wall time and records a
/// [`SweepStats`] under `label` for the timing summary.
pub fn sweep<J, T, F>(label: &'static str, jobs: Jobs, items: &[J], run: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
{
    let t0 = Instant::now();
    let timed = run_jobs(jobs, items, |i, item| {
        let start = Instant::now();
        let value = run(i, item);
        (value, start.elapsed())
    });
    let wall = t0.elapsed();
    let busy = timed.iter().map(|(_, d)| *d).sum();
    let (values, _): (Vec<T>, Vec<Duration>) = timed.into_iter().unzip();
    RECORDED
        .lock()
        .expect("timing registry lock")
        .push(SweepStats {
            label,
            cells: values.len(),
            workers: jobs.get().min(values.len()).max(1),
            wall,
            busy,
        });
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_returns_empty_without_spawning() {
        let items: [u32; 0] = [];
        let out = run_jobs(Jobs::new(8).unwrap(), &items, |_, &x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_workers_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial = run_jobs(Jobs::serial(), &items, |i, &x| (i, x * x));
        let parallel = run_jobs(Jobs::new(4).unwrap(), &items, |i, &x| (i, x * x));
        assert_eq!(serial, parallel, "slot-indexed results are deterministic");
        assert_eq!(parallel[42], (42, 42 * 42));
    }

    #[test]
    fn more_workers_than_jobs_caps_the_pool() {
        let items = [1u64, 2, 3];
        let out = run_jobs(Jobs::new(64).unwrap(), &items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            run_jobs(Jobs::new(4).unwrap(), &items, |_, &x| {
                assert!(x != 7, "job 7 exploded");
                x
            })
        });
        let payload = result.expect_err("the job panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("job 7 exploded"),
            "original payload kept: {msg}"
        );
    }

    #[test]
    fn serial_worker_panic_propagates_too() {
        let items = [0u8];
        let result =
            std::panic::catch_unwind(|| run_jobs(Jobs::serial(), &items, |_, _| panic!("inline")));
        assert!(result.is_err());
    }

    #[test]
    fn sweep_records_timing() {
        let _ = take_recorded();
        let items: Vec<u32> = (0..8).collect();
        let out = sweep("unit-test", Jobs::new(2).unwrap(), &items, |_, &x| x);
        assert_eq!(out, items);
        let recorded = take_recorded();
        let stats = recorded
            .iter()
            .find(|s| s.label == "unit-test")
            .expect("sweep recorded itself");
        assert_eq!(stats.cells, 8);
        assert_eq!(stats.workers, 2);
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn jobs_constructors() {
        assert_eq!(Jobs::serial().get(), 1);
        assert_eq!(Jobs::default().get(), 1);
        assert!(Jobs::new(0).is_none());
        assert_eq!(Jobs::new(6).unwrap().get(), 6);
        assert!(Jobs::available().get() >= 1);
    }
}
