//! Regenerates every table and figure of the ScoRD paper's evaluation.
//!
//! ```text
//! run-experiments [--quick] [--seed N] [--cases K] [--jobs N]
//!                 [--iters N] [--label S] [--no-cycle-skip]
//!                 [--schedule-bound B]
//!                 [--sm-threads N] [--mem-threads N]
//!                 [--sample-sms K] [--pin]
//!                 [--addr HOST:PORT] [--deadline-ms N] [--max-conns N]
//!                 [--streams N] [--concurrency N] [--events N] [--probes]
//!                 [--idle N] [--traces-per-conn N]
//!                 [table1|table2|table5|table6|table7|fig8|fig9|fig10|
//!                  fig11|table8|ablations|faults|diff|explore|perf|
//!                  paper-scale|serve|loadgen|connsweep|all]
//! ```
//!
//! `faults` runs the fault-injection degradation audit; it is not part of
//! `all` (a full sweep is 25 cells × 46 workloads). `--seed` sets the
//! injection seed (default 1); a fixed seed reproduces the table exactly.
//!
//! `diff` runs the differential race-oracle audit (also only by name):
//! `--cases K` fuzzed traces (default 200) from `--seed`, plus every
//! microbenchmark's captured trace, are replayed through the exact oracle
//! and all detector models; any unexplained divergence fails the run with
//! a minimized reproducer trace.
//!
//! `explore` runs the schedule-space audit (also only by name): the same
//! fuzzed corpus plus the captured microbenchmark traces are replayed
//! under `--schedule-bound B` (default 64) seeded schedule perturbations
//! per trace with the oracle as the per-interleaving judge, and the
//! predictive detector's reports are checked against concrete witness
//! schedules; any unconfirmed prediction fails the run with a minimized
//! reproducer trace. Tables are deterministic in `(--seed, --cases,
//! --schedule-bound)`; wall-clock cost per interleaving goes to stderr.
//!
//! `--jobs N` shards each sweep's independent simulations over N worker
//! threads (default: one per available hardware thread; `--jobs 1` runs
//! serially). Results are deposited into job-indexed slots, so any job
//! count emits byte-identical tables; a per-experiment timing summary goes
//! to stderr at the end.
//!
//! `perf` (also only by name) times the fixed perf basket `--iters` times
//! per entry (default 3, median reported) and appends the run, tagged
//! `--label` (default "dev"), to `BENCH_sim.json` at the repository root.
//!
//! `paper-scale` (also only by name) runs the applications at the paper's
//! input sizes — the 25.6M-element reduction, the 800×500×30 matrix
//! multiply, R-MAT graphs at 10×/30× — recording memory footprint,
//! metadata-store bytes, a worker-pinning A/B, and a sampled-SM
//! extrapolation entry whose realized error is judged against the
//! full-detail baseline. `--sample-sms K` sets the detailed-SM count
//! (default 5; 0 skips the sampled entries), `--pin` pins workers for the
//! whole tier, and `--quick` shrinks inputs ~16× for CI. Both flags are
//! only meaningful with `paper-scale`; passing them without it is an
//! error. Extrapolated cycle counts appear only in this tier's output,
//! always with an error bound — never in paper tables.
//!
//! `--no-cycle-skip` disables the simulator's quiescence skip-ahead — a
//! debug flag: results are byte-identical either way (asserted by the
//! determinism tests), only slower.
//!
//! `--sm-threads N` runs every simulation's SM front-end phase on N
//! threads (default 1 = serial). Like `--jobs`, this cannot change any
//! result: the parallel phase only generates per-SM request buffers that
//! are drained in fixed SM order, so all tables and race reports are
//! byte-identical for any N (asserted by the determinism tests). `--jobs`
//! shards *across* simulations; `--sm-threads` parallelizes *inside* one —
//! the latter is what shortens a sweep whose critical path is a single
//! large workload.
//!
//! `--mem-threads N` does the same for the memory side of Phase B: the L2
//! partitions and their DRAM channels tick as independent shards on N
//! threads (default 1 = serial), with buffered effects merged in fixed
//! partition order — byte-identical for any N, also asserted by the
//! determinism tests. Combine with `--sm-threads` to parallelize both
//! phases on one worker pool.
//!
//! `serve` (only by name) runs the race-detection service on `--addr`
//! (default `127.0.0.1:7444`) until SIGTERM/SIGINT, then drains gracefully
//! and prints the final stats; `--deadline-ms` sets the per-connection
//! progress deadline (default 5000) and `--max-conns` the overload
//! watermark (default 64). `loadgen` (only by name) streams
//! `--streams` fuzzed traces of `--events` events from `--concurrency`
//! client threads at a running server, fires the malformed-input and
//! deadline-reap robustness probes when `--probes` is given, and appends
//! the run (tagged `--label`) to `BENCH_serve.json` at the repository
//! root; it exits nonzero if any stream failed or a probe misbehaved.
//! `--idle N` additionally parks N idle sessions on the server for the
//! duration of the run (the mostly-idle fleet shape the reactor is built
//! for) and `--traces-per-conn K` streams K traces per connection over
//! the persistent session protocol instead of one connection per trace.
//!
//! `connsweep` (only by name) runs the mostly-idle connection-count sweep
//! — in-process servers at 256/1024/4096/10000 parked sessions (clamped
//! to the fd budget) with the active workload riding along — and appends
//! one schema-2 row per tier to `BENCH_serve.json`; the `threads` column
//! staying flat while `open_fds` scales is the reactor's signature.

use std::env;
use std::process::exit;
use std::time::Instant;

use scord_harness as h;
use scord_harness::{HarnessError, Jobs};

fn fail(e: &HarnessError) -> ! {
    eprintln!("error: {e}");
    exit(1);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut seed = 1u64;
    let mut cases = 200usize;
    let mut iters = 3usize;
    let mut label = String::from("dev");
    let mut jobs = Jobs::available();
    let mut addr = String::from("127.0.0.1:7444");
    let mut deadline_ms = 5_000u64;
    let mut streams = 64usize;
    let mut concurrency = 8usize;
    let mut events = 2_000u32;
    let mut idle = 0usize;
    let mut traces_per_conn = 1usize;
    let mut max_conns = 64usize;
    let mut schedule_bound = 64u32;
    let mut probes = false;
    let mut sample_sms: Option<u32> = None;
    let mut pin = false;
    let mut wanted: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--probes" => probes = true,
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--addr needs a value");
                        exit(2);
                    })
                    .clone();
            }
            "--deadline-ms" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--deadline-ms needs a value");
                    exit(2);
                });
                deadline_ms = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--deadline-ms needs a positive integer, got {v:?}");
                    exit(2);
                });
            }
            "--streams" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--streams needs a value");
                    exit(2);
                });
                streams = v.parse().unwrap_or_else(|_| {
                    eprintln!("--streams needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--concurrency" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--concurrency needs a value");
                    exit(2);
                });
                concurrency = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--concurrency needs a positive integer, got {v:?}");
                    exit(2);
                });
            }
            "--events" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--events needs a value");
                    exit(2);
                });
                events = v.parse().unwrap_or_else(|_| {
                    eprintln!("--events needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--idle" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--idle needs a value");
                    exit(2);
                });
                idle = v.parse().unwrap_or_else(|_| {
                    eprintln!("--idle needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--traces-per-conn" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--traces-per-conn needs a value");
                    exit(2);
                });
                traces_per_conn = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--traces-per-conn needs a positive integer, got {v:?}");
                    exit(2);
                });
            }
            "--max-conns" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--max-conns needs a value");
                    exit(2);
                });
                max_conns = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--max-conns needs a positive integer, got {v:?}");
                    exit(2);
                });
            }
            "--schedule-bound" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--schedule-bound needs a value");
                    exit(2);
                });
                schedule_bound = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--schedule-bound needs a positive integer, got {v:?}");
                    exit(2);
                });
            }
            "--no-cycle-skip" => scord_sim::set_cycle_skip(false),
            "--pin" => pin = true,
            "--sample-sms" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--sample-sms needs a value");
                    exit(2);
                });
                sample_sms = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--sample-sms needs an unsigned integer, got {v:?}");
                    exit(2);
                }));
            }
            "--sm-threads" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--sm-threads needs a value");
                    exit(2);
                });
                let n: u32 = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--sm-threads needs a positive integer, got {v:?}");
                    exit(2);
                });
                scord_sim::set_sm_threads(n);
            }
            "--mem-threads" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--mem-threads needs a value");
                    exit(2);
                });
                let n: u32 = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--mem-threads needs a positive integer, got {v:?}");
                    exit(2);
                });
                scord_sim::set_mem_threads(n);
            }
            "--iters" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--iters needs a value");
                    exit(2);
                });
                iters = v.parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--label" => {
                label = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--label needs a value");
                        exit(2);
                    })
                    .clone();
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    exit(2);
                });
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--cases" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--cases needs a value");
                    exit(2);
                });
                cases = v.parse().unwrap_or_else(|_| {
                    eprintln!("--cases needs an unsigned integer, got {v:?}");
                    exit(2);
                });
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a value");
                    exit(2);
                });
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .and_then(Jobs::new)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        exit(2);
                    });
            }
            other => wanted.push(other),
        }
    }
    const KNOWN: [&str; 19] = [
        "table1",
        "table2",
        "table5",
        "table6",
        "table7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "table8",
        "ablations",
        "faults",
        "diff",
        "explore",
        "perf",
        "paper-scale",
        "serve",
        "loadgen",
        "connsweep",
    ];
    if let Some(bad) = wanted.iter().find(|w| **w != "all" && !KNOWN.contains(w)) {
        eprintln!(
            "unknown experiment {bad:?}; expected one of: all {}",
            KNOWN.join(" ")
        );
        exit(2);
    }
    let all = wanted.is_empty() || wanted.contains(&"all");
    // The fault sweep, the differential audit, the perf basket and the
    // service subcommands only run when asked for by name.
    const BY_NAME_ONLY: [&str; 8] = [
        "faults",
        "diff",
        "explore",
        "perf",
        "paper-scale",
        "serve",
        "loadgen",
        "connsweep",
    ];
    let want = |name: &str| (all && !BY_NAME_ONLY.contains(&name)) || wanted.contains(&name);
    // Sampled-SM extrapolation and worker pinning only make sense for the
    // paper-scale tier; a stray flag elsewhere would silently do nothing,
    // so reject it loudly.
    if (sample_sms.is_some() || pin) && !wanted.contains(&"paper-scale") {
        eprintln!("--sample-sms / --pin require the paper-scale experiment");
        exit(2);
    }
    let t0 = Instant::now();

    if want("table1") {
        println!("\n## Table I — microbenchmark suite (detected under ScoRD)\n");
        let rows = h::table1::run(jobs).unwrap_or_else(|e| fail(&e));
        println!("{}", h::table1::to_markdown(&rows));
    }
    if want("table2") {
        println!("\n## Table II — applications\n");
        println!("{}", h::table2::to_markdown(&h::table2::run(quick)));
    }
    if want("table5") {
        println!("\n## Table V — default hardware configuration\n");
        println!("{}", h::table5::to_markdown());
    }
    if want("table6") {
        println!("\n## Table VI — races caught\n");
        let rows = h::table6::run(quick, jobs).unwrap_or_else(|e| fail(&e));
        println!("{}", h::table6::to_markdown(&rows));
    }
    if want("table7") {
        println!("\n## Table VII — false positives vs tracking granularity\n");
        println!("{}", h::table7::to_markdown(&h::table7::run(quick, jobs)));
    }
    if want("fig8") {
        println!("\n## Figure 8 — execution cycles normalized to no detection\n");
        let rows = h::fig8::run(quick, jobs);
        println!("{}", h::fig8::to_markdown(&rows));
        println!(
            "ScoRD geometric-mean overhead: {:.1}% (paper: ~35%)",
            (h::fig8::geomean_scord(&rows) - 1.0) * 100.0
        );
    }
    if want("fig9") {
        println!("\n## Figure 9 — DRAM accesses normalized to no detection\n");
        println!("{}", h::fig9::to_markdown(&h::fig9::run(quick, jobs)));
    }
    if want("fig10") {
        println!("\n## Figure 10 — overhead attribution (LHD / NOC / MD)\n");
        println!("{}", h::fig10::to_markdown(&h::fig10::run(quick, jobs)));
    }
    if want("fig11") {
        println!("\n## Figure 11 — sensitivity to memory resources\n");
        println!("{}", h::fig11::to_markdown(&h::fig11::run(quick, jobs)));
    }
    if want("ablations") {
        println!("\n## Ablations — design-choice sweeps\n");
        let lock = h::ablations::lock_table(&[1, 2, 4, 8], jobs).unwrap_or_else(|e| fail(&e));
        let ratio = h::ablations::cache_ratio(quick, &[1, 4, 8, 16], jobs);
        let rate = h::ablations::throughput(quick, &[2, 4, 12, 32], jobs);
        println!("{}", h::ablations::to_markdown(&lock, &ratio, &rate));
    }
    if want("table8") {
        println!("\n## Table VIII — detector capability comparison (measured)\n");
        let rows = h::table8::run(jobs).unwrap_or_else(|e| fail(&e));
        println!("{}", h::table8::to_markdown(&rows));
    }
    if want("faults") {
        println!("\n## Fault injection — detection quality degradation (seed {seed})\n");
        let rows = h::faults::run(quick, seed, &h::faults::DEFAULT_RATES, jobs)
            .unwrap_or_else(|e| fail(&e));
        println!("{}", h::faults::to_markdown(&rows));
        println!(
            "The zero-fault row reproduces Table VI's ScoRD column; rerunning \
             with the same seed reproduces every cell."
        );
    }

    if want("diff") {
        println!("\n## Differential race-oracle audit (seed {seed}, {cases} fuzz cases)\n");
        let summary = h::diff::run(seed, cases, jobs);
        println!("{}", h::diff::to_markdown(&summary));
        println!("\n### Captured microbenchmark traces vs oracle\n");
        let micros = h::diff::micros(jobs).unwrap_or_else(|e| fail(&e));
        println!("{}", h::diff::micros_to_markdown(&micros));
        let bugs: Vec<_> = summary.bugs.iter().chain(micros.bugs.iter()).collect();
        if bugs.is_empty() {
            println!(
                "No unexplained divergences: every oracle/detector delta is \
                 classified by the expected-FN/FP taxonomy."
            );
        } else {
            for b in &bugs {
                eprintln!("\n{b}");
            }
            eprintln!("\nerror: {} unexplained divergence(s)", bugs.len());
            exit(1);
        }
    }

    if want("explore") {
        println!(
            "\n## Schedule-space audit (seed {seed}, {cases} fuzz cases, \
             bound {schedule_bound})\n"
        );
        let te = Instant::now();
        let summary = h::explore::run(seed, cases, schedule_bound, jobs);
        let fuzz_elapsed = te.elapsed();
        println!("{}", h::explore::to_markdown(&summary));
        println!("\n### Captured microbenchmark traces, schedule space\n");
        let tm = Instant::now();
        let micros = h::explore::micros(seed, schedule_bound, jobs).unwrap_or_else(|e| fail(&e));
        let micro_elapsed = tm.elapsed();
        println!("{}", h::explore::to_markdown(&micros));
        let interleavings = summary.interleavings + micros.interleavings;
        eprintln!(
            "[explore cost: {} interleaving(s) in {:.2?}, {:.1} µs each]",
            interleavings,
            fuzz_elapsed + micro_elapsed,
            (fuzz_elapsed + micro_elapsed).as_secs_f64() * 1e6 / interleavings.max(1) as f64,
        );
        let bugs: Vec<_> = summary.bugs.iter().chain(micros.bugs.iter()).collect();
        if bugs.is_empty() {
            println!(
                "All predictions confirmed by witness schedules or classified \
                 as named false predictions; {} race(s) found beyond the \
                 captured schedules ({} missed by the dynamic detector).",
                summary.schedule_only_total() + micros.schedule_only_total(),
                summary.beyond_dynamic_total() + micros.beyond_dynamic_total(),
            );
        } else {
            for b in &bugs {
                eprintln!("\n{b}");
            }
            eprintln!("\nerror: {} unconfirmed prediction(s)", bugs.len());
            exit(1);
        }
    }

    if want("perf") {
        println!("\n## Perf basket (label {label:?}, {iters} iteration(s) per entry)\n");
        let run = h::perf::run(iters, &label);
        println!("{}", h::perf::to_markdown(&run));
        let path = h::perf::default_bench_path();
        match h::perf::append_to_bench_json(&path, &run) {
            Ok(n) => println!("\nRecorded run {n} in {}.", path.display()),
            Err(e) => fail(&e),
        }
    }

    if want("paper-scale") {
        let opts = h::paper_scale::PaperScaleOptions {
            quick,
            sample_sms: sample_sms.unwrap_or(5),
            pin,
            label: label.clone(),
        };
        println!(
            "\n## Paper-scale tier (label {label:?}, {} inputs, {} detailed SM(s))\n",
            if quick { "quick" } else { "full" },
            opts.sample_sms
        );
        let run = h::paper_scale::run(&opts);
        println!("{}", h::paper_scale::to_markdown(&run));
        let path = h::perf::default_bench_path();
        match h::perf::append_to_bench_json(&path, &run) {
            Ok(n) => println!("\nRecorded run {n} in {}.", path.display()),
            Err(e) => fail(&e),
        }
    }

    if want("serve") {
        let deadline = std::time::Duration::from_millis(deadline_ms);
        match h::serve_bench::serve(&addr, deadline, max_conns) {
            Ok(stats) => println!("drained: {stats:?}"),
            Err(e) => fail(&e),
        }
    }

    if want("loadgen") {
        println!(
            "\n## Service load (addr {addr}, {streams} stream(s) × {events} \
             event(s), {concurrency} client thread(s), {idle} idle, \
             {traces_per_conn} trace(s)/conn)\n"
        );
        let cfg = scord_serve::LoadConfig {
            addr: addr.clone(),
            streams,
            concurrency,
            events,
            idle_connections: idle,
            traces_per_conn,
            ..scord_serve::LoadConfig::default()
        };
        let deadline_hint = std::time::Duration::from_millis(deadline_ms.saturating_mul(4));
        let (report, probe_report) = h::serve_bench::loadgen(&cfg, probes, deadline_hint);
        println!(
            "{}",
            h::serve_bench::to_markdown(&report, probe_report.as_ref())
        );
        let path = h::serve_bench::default_bench_path();
        match h::serve_bench::append_to_bench_json(&path, &label, &report, probe_report.as_ref()) {
            Ok(n) => println!("\nRecorded run {n} in {}.", path.display()),
            Err(e) => fail(&e),
        }
        if report.failed > 0 {
            eprintln!("error: {} stream(s) failed", report.failed);
            exit(1);
        }
        if let Some(p) = &probe_report {
            if !p.all_ok() {
                eprintln!("error: robustness probe failed");
                exit(1);
            }
        }
    }

    if want("connsweep") {
        // Mostly-idle connection sweep against in-process servers. The
        // 10_000 tier is clamped to the process's fd budget (each
        // in-process connection costs two fds).
        let targets: Vec<usize> = [256usize, 1024, 4096, 10_000]
            .iter()
            .map(|&t| h::serve_bench::clamp_to_fd_budget(t))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        println!(
            "\n## Connection sweep (targets {targets:?}, {streams} active \
             stream(s) × {events} event(s), {concurrency} client thread(s))\n"
        );
        let rows = h::serve_bench::connection_sweep(&targets, streams, concurrency, events)
            .unwrap_or_else(|e| fail(&e));
        println!("{}", h::serve_bench::sweep_to_markdown(&rows));
        let path = h::serve_bench::default_bench_path();
        for row in &rows {
            let row_label = format!("{label}-idle{}", row.report.idle_connections);
            match h::serve_bench::append_to_bench_json(&path, &row_label, &row.report, None) {
                Ok(n) => println!("Recorded run {n} ({row_label}) in {}.", path.display()),
                Err(e) => fail(&e),
            }
        }
        if let Some(bad) = rows
            .iter()
            .find(|r| r.report.failed > 0 || r.report.completed == 0)
        {
            eprintln!(
                "error: sweep row (target {}) failed {} stream(s)",
                bad.target, bad.report.failed
            );
            exit(1);
        }
    }

    let recorded = h::exec::take_recorded();
    if !recorded.is_empty() {
        eprintln!("\n[timing: {} worker(s)]", jobs.get());
        for s in &recorded {
            eprintln!(
                "  {:<22} {:>4} jobs  wall {:>8.2?}  busy {:>8.2?}  speedup {:.2}x",
                s.label,
                s.cells,
                s.wall,
                s.busy,
                s.busy.as_secs_f64() / s.wall.as_secs_f64().max(1e-9),
            );
        }
    }
    eprintln!("\n[done in {:?}]", t0.elapsed());
}
