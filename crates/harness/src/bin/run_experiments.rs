//! Regenerates every table and figure of the ScoRD paper's evaluation.
//!
//! ```text
//! run-experiments [--quick] [table1|table2|table5|table6|table7|
//!                            fig8|fig9|fig10|fig11|table8|ablations|all]
//! ```

use std::env;
use std::time::Instant;

use scord_harness as h;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();
    const KNOWN: [&str; 11] = [
        "table1", "table2", "table5", "table6", "table7", "fig8", "fig9", "fig10", "fig11",
        "table8", "ablations",
    ];
    if let Some(bad) = wanted
        .iter()
        .find(|w| **w != "all" && !KNOWN.contains(w))
    {
        eprintln!("unknown experiment {bad:?}; expected one of: all {}", KNOWN.join(" "));
        std::process::exit(2);
    }
    let all = wanted.is_empty() || wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);
    let t0 = Instant::now();

    if want("table1") {
        println!("\n## Table I — microbenchmark suite (detected under ScoRD)\n");
        println!("{}", h::table1::to_markdown(&h::table1::run()));
    }
    if want("table2") {
        println!("\n## Table II — applications\n");
        println!("{}", h::table2::to_markdown(&h::table2::run(quick)));
    }
    if want("table5") {
        println!("\n## Table V — default hardware configuration\n");
        println!("{}", h::table5::to_markdown());
    }
    if want("table6") {
        println!("\n## Table VI — races caught\n");
        println!("{}", h::table6::to_markdown(&h::table6::run(quick)));
    }
    if want("table7") {
        println!("\n## Table VII — false positives vs tracking granularity\n");
        println!("{}", h::table7::to_markdown(&h::table7::run(quick)));
    }
    if want("fig8") {
        println!("\n## Figure 8 — execution cycles normalized to no detection\n");
        let rows = h::fig8::run(quick);
        println!("{}", h::fig8::to_markdown(&rows));
        println!(
            "ScoRD geometric-mean overhead: {:.1}% (paper: ~35%)",
            (h::fig8::geomean_scord(&rows) - 1.0) * 100.0
        );
    }
    if want("fig9") {
        println!("\n## Figure 9 — DRAM accesses normalized to no detection\n");
        println!("{}", h::fig9::to_markdown(&h::fig9::run(quick)));
    }
    if want("fig10") {
        println!("\n## Figure 10 — overhead attribution (LHD / NOC / MD)\n");
        println!("{}", h::fig10::to_markdown(&h::fig10::run(quick)));
    }
    if want("fig11") {
        println!("\n## Figure 11 — sensitivity to memory resources\n");
        println!("{}", h::fig11::to_markdown(&h::fig11::run(quick)));
    }
    if want("ablations") {
        println!("\n## Ablations — design-choice sweeps\n");
        let lock = h::ablations::lock_table(&[1, 2, 4, 8]);
        let ratio = h::ablations::cache_ratio(quick, &[1, 4, 8, 16]);
        let rate = h::ablations::throughput(quick, &[2, 4, 12, 32]);
        println!("{}", h::ablations::to_markdown(&lock, &ratio, &rate));
    }
    if want("table8") {
        println!("\n## Table VIII — detector capability comparison (measured)\n");
        println!("{}", h::table8::to_markdown(&h::table8::run()));
    }
    eprintln!("\n[done in {:?}]", t0.elapsed());
}
