//! Table II — the application-suite inventory.

use crate::{apps_racey, render_table};

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application abbreviation.
    pub name: &'static str,
    /// What it does and which scoped operations it uses.
    pub description: &'static str,
    /// Unique races the canonical racey configuration injects.
    pub races: usize,
}

/// Collects the inventory (no simulation required).
#[must_use]
pub fn run(quick: bool) -> Vec<Row> {
    apps_racey(quick)
        .iter()
        .map(|a| Row {
            name: a.name(),
            description: a.description(),
            races: a.expected_races(),
        })
        .collect()
}

/// Renders Table II.
#[must_use]
pub fn to_markdown(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.description.to_string(),
                r.races.to_string(),
            ]
        })
        .collect();
    render_table(&["Benchmark", "Description", "Races"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_paper_budget() {
        let rows = run(false);
        assert_eq!(rows.len(), 7);
        let total: usize = rows.iter().map(|r| r.races).sum();
        assert_eq!(total, 26);
        assert!(to_markdown(&rows).contains("GCOL"));
    }
}
