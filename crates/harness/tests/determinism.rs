//! Serial/parallel equivalence: every experiment must emit byte-identical
//! tables whether its sweep runs on one worker or many, because workers
//! deposit results into job-indexed slots and each cell simulates on a
//! private `Gpu`.
//!
//! The same property is asserted for the scheduler's quiescence skip: with
//! skipping on (the default) or off, every table renders byte-identically —
//! the jump replicates exactly the per-cycle bookkeeping of the cycles it
//! elides.
//!
//! And for the intra-simulation SM parallelism: with `sm_threads` 1
//! (serial front end, the default) or 4, every table and race report is
//! byte-identical — Phase A only fills per-SM request buffers that Phase B
//! drains in fixed SM order, so the thread schedule never reaches the
//! shared memory system or the detector.
//!
//! And for the sharded memory-side drain: with `mem_threads` 1 (inline,
//! the default), 2, or 4 — crossed with `sm_threads` 1 and 4 — every table
//! is byte-identical, because each shard only buffers its partition's
//! externally visible effects (stat deltas, at most one response and one
//! DRAM completion per cycle) and the serial merge replays them in
//! ascending partition order, exactly the order the inline loop produced.

use std::sync::Mutex;

use scord_core::FaultKind;
use scord_harness as h;
use scord_harness::Jobs;

fn par() -> Jobs {
    Jobs::new(4).expect("nonzero")
}

/// Runs `f` twice — once with the quiescence skip enabled, once disabled —
/// and returns both results. The skip override is process-wide, so a mutex
/// serializes the A/B sections (and a drop guard restores the default even
/// if `f` panics). Concurrent tests outside the gate are unaffected: the
/// flag only changes how fast a simulation runs, never what it computes.
fn with_and_without_skip<T>(f: impl Fn() -> T) -> (T, T) {
    static GATE: Mutex<()> = Mutex::new(());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            scord_sim::set_cycle_skip(true);
        }
    }
    let _lock = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = Restore;
    scord_sim::set_cycle_skip(true);
    let skipping = f();
    scord_sim::set_cycle_skip(false);
    let ticking = f();
    (skipping, ticking)
}

/// Runs `f` twice — once with the SM front end serial (`sm_threads` 1),
/// once on 4 threads — and returns both results. Same gating pattern as
/// [`with_and_without_skip`]: the override is process-wide, a mutex
/// serializes the A/B sections, and a drop guard clears the override even
/// if `f` panics.
fn with_sm_threads<T>(f: impl Fn() -> T) -> (T, T) {
    static GATE: Mutex<()> = Mutex::new(());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            scord_sim::set_sm_threads(0);
        }
    }
    let _lock = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = Restore;
    scord_sim::set_sm_threads(0);
    let serial = f();
    scord_sim::set_sm_threads(4);
    let threaded = f();
    (serial, threaded)
}

/// Runs `f` at the process default (`sm_threads` 1 / `mem_threads` 1) and
/// again at each `(sm_threads, mem_threads)` override in `combos`,
/// returning the baseline plus one result per combo. Same gating pattern
/// as the other override helpers: one mutex serializes every section that
/// flips the process-wide thread overrides, and a drop guard clears both
/// even if `f` panics. Shard counts above the config's channel count clamp
/// to it inside the simulator, so combos like `(1, 4)` exercise however
/// many shards the workload's config allows.
fn with_thread_overrides<T>(combos: &[(u32, u32)], f: impl Fn() -> T) -> (T, Vec<T>) {
    static GATE: Mutex<()> = Mutex::new(());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            scord_sim::set_sm_threads(0);
            scord_sim::set_mem_threads(0);
        }
    }
    let _lock = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = Restore;
    scord_sim::set_sm_threads(0);
    scord_sim::set_mem_threads(0);
    let baseline = f();
    let variants = combos
        .iter()
        .map(|&(sm, mem)| {
            scord_sim::set_sm_threads(sm);
            scord_sim::set_mem_threads(mem);
            f()
        })
        .collect();
    (baseline, variants)
}

#[test]
fn table1_is_identical_serial_and_parallel() {
    let serial = h::table1::run(Jobs::serial()).expect("suite simulates cleanly");
    let parallel = h::table1::run(par()).expect("suite simulates cleanly");
    assert_eq!(
        h::table1::to_markdown(&serial),
        h::table1::to_markdown(&parallel),
        "table1 rendering must not depend on the worker count"
    );
}

#[test]
fn table6_quick_is_identical_serial_and_parallel() {
    let serial = h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly");
    let parallel = h::table6::run(true, par()).expect("quick workloads simulate cleanly");
    assert_eq!(
        h::table6::to_markdown(&serial),
        h::table6::to_markdown(&parallel),
        "table6 rendering must not depend on the worker count"
    );
}

#[test]
fn fault_sweep_is_identical_serial_and_parallel() {
    // A bounded slice of the audit (2 kinds × 1 aggressive rate) keeps the
    // test fast while still exercising the fault-injection path end to end.
    let cell = |jobs: Jobs| {
        h::faults::sweep(
            true,
            7,
            &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
            &[100_000],
            jobs,
        )
        .expect("sweep infrastructure is clean")
    };
    let serial = cell(Jobs::serial());
    let parallel = cell(par());
    assert_eq!(
        h::faults::to_markdown(&serial),
        h::faults::to_markdown(&parallel),
        "fault audit rendering must not depend on the worker count"
    );
}

#[test]
fn table1_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::table1::to_markdown(&h::table1::run(Jobs::serial()).expect("suite simulates cleanly"))
    });
    assert_eq!(
        skipping, ticking,
        "table1 must not depend on the quiescence skip"
    );
}

#[test]
fn table6_quick_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::table6::to_markdown(
            &h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly"),
        )
    });
    assert_eq!(
        skipping, ticking,
        "table6 must not depend on the quiescence skip"
    );
}

#[test]
fn table1_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::table1::to_markdown(&h::table1::run(Jobs::serial()).expect("suite simulates cleanly"))
    });
    assert_eq!(
        serial, threaded,
        "table1 must not depend on the SM thread count"
    );
}

#[test]
fn table6_quick_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::table6::to_markdown(
            &h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly"),
        )
    });
    assert_eq!(
        serial, threaded,
        "table6 (race reports included) must not depend on the SM thread count"
    );
}

#[test]
fn fault_sweep_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::faults::to_markdown(
            &h::faults::sweep(
                true,
                7,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                Jobs::serial(),
            )
            .expect("sweep infrastructure is clean"),
        )
    });
    assert_eq!(
        serial, threaded,
        "fault audit (injected-fault RNG stream included) must not depend \
         on the SM thread count"
    );
}

#[test]
fn captured_micro_traces_are_identical_across_sm_threads() {
    // The differential audit's captured traces record every detector event
    // a micro's simulation emits, so equality here is the strongest
    // event-stream check: not just identical race totals but identical
    // per-event order and content feeding the oracle.
    let (serial, threaded) = with_sm_threads(|| {
        let m = h::diff::micros(Jobs::serial()).expect("captured traces replay cleanly");
        assert!(m.bugs.is_empty(), "unexplained divergence: {:?}", m.bugs);
        h::diff::micros_to_markdown(&m)
    });
    assert_eq!(
        serial, threaded,
        "captured micro traces must not depend on the SM thread count"
    );
}

#[test]
fn table1_is_identical_across_mem_shards() {
    let (baseline, variants) = with_thread_overrides(&[(1, 2), (4, 4)], || {
        h::table1::to_markdown(&h::table1::run(Jobs::serial()).expect("suite simulates cleanly"))
    });
    for (i, v) in variants.iter().enumerate() {
        assert_eq!(
            &baseline, v,
            "table1 must not depend on the memory shard count (combo {i})"
        );
    }
}

#[test]
fn table6_quick_is_identical_across_mem_shards() {
    let (baseline, variants) = with_thread_overrides(&[(1, 4), (4, 2)], || {
        h::table6::to_markdown(
            &h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly"),
        )
    });
    for (i, v) in variants.iter().enumerate() {
        assert_eq!(
            &baseline, v,
            "table6 (race reports included) must not depend on the memory \
             shard count (combo {i})"
        );
    }
}

#[test]
fn fault_sweep_is_identical_across_mem_shards() {
    let (baseline, variants) = with_thread_overrides(&[(4, 4)], || {
        h::faults::to_markdown(
            &h::faults::sweep(
                true,
                7,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                Jobs::serial(),
            )
            .expect("sweep infrastructure is clean"),
        )
    });
    assert_eq!(
        baseline, variants[0],
        "fault audit (injected-fault RNG stream included) must not depend \
         on the memory shard count"
    );
}

#[test]
fn captured_micro_traces_are_identical_across_mem_shards() {
    // Strongest event-stream check for the sharded drain: the captured
    // traces record every detector event in arrival order, so a shard
    // merge that reordered responses by even one heap slot would diverge.
    let (baseline, variants) = with_thread_overrides(&[(1, 4)], || {
        let m = h::diff::micros(Jobs::serial()).expect("captured traces replay cleanly");
        assert!(m.bugs.is_empty(), "unexplained divergence: {:?}", m.bugs);
        h::diff::micros_to_markdown(&m)
    });
    assert_eq!(
        baseline, variants[0],
        "captured micro traces must not depend on the memory shard count"
    );
}

#[test]
fn fault_sweep_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::faults::to_markdown(
            &h::faults::sweep(
                true,
                7,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                Jobs::serial(),
            )
            .expect("sweep infrastructure is clean"),
        )
    });
    assert_eq!(
        skipping, ticking,
        "fault audit must not depend on the quiescence skip"
    );
}
