//! Serial/parallel equivalence: every experiment must emit byte-identical
//! tables whether its sweep runs on one worker or many, because workers
//! deposit results into job-indexed slots and each cell simulates on a
//! private `Gpu`.
//!
//! The same property is asserted for the scheduler's quiescence skip: with
//! skipping on (the default) or off, every table renders byte-identically —
//! the jump replicates exactly the per-cycle bookkeeping of the cycles it
//! elides.
//!
//! And for the intra-simulation SM parallelism: with `sm_threads` 1
//! (serial front end, the default) or 4, every table and race report is
//! byte-identical — Phase A only fills per-SM request buffers that Phase B
//! drains in fixed SM order, so the thread schedule never reaches the
//! shared memory system or the detector.

use std::sync::Mutex;

use scord_core::FaultKind;
use scord_harness as h;
use scord_harness::Jobs;

fn par() -> Jobs {
    Jobs::new(4).expect("nonzero")
}

/// Runs `f` twice — once with the quiescence skip enabled, once disabled —
/// and returns both results. The skip override is process-wide, so a mutex
/// serializes the A/B sections (and a drop guard restores the default even
/// if `f` panics). Concurrent tests outside the gate are unaffected: the
/// flag only changes how fast a simulation runs, never what it computes.
fn with_and_without_skip<T>(f: impl Fn() -> T) -> (T, T) {
    static GATE: Mutex<()> = Mutex::new(());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            scord_sim::set_cycle_skip(true);
        }
    }
    let _lock = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = Restore;
    scord_sim::set_cycle_skip(true);
    let skipping = f();
    scord_sim::set_cycle_skip(false);
    let ticking = f();
    (skipping, ticking)
}

/// Runs `f` twice — once with the SM front end serial (`sm_threads` 1),
/// once on 4 threads — and returns both results. Same gating pattern as
/// [`with_and_without_skip`]: the override is process-wide, a mutex
/// serializes the A/B sections, and a drop guard clears the override even
/// if `f` panics.
fn with_sm_threads<T>(f: impl Fn() -> T) -> (T, T) {
    static GATE: Mutex<()> = Mutex::new(());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            scord_sim::set_sm_threads(0);
        }
    }
    let _lock = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = Restore;
    scord_sim::set_sm_threads(0);
    let serial = f();
    scord_sim::set_sm_threads(4);
    let threaded = f();
    (serial, threaded)
}

#[test]
fn table1_is_identical_serial_and_parallel() {
    let serial = h::table1::run(Jobs::serial()).expect("suite simulates cleanly");
    let parallel = h::table1::run(par()).expect("suite simulates cleanly");
    assert_eq!(
        h::table1::to_markdown(&serial),
        h::table1::to_markdown(&parallel),
        "table1 rendering must not depend on the worker count"
    );
}

#[test]
fn table6_quick_is_identical_serial_and_parallel() {
    let serial = h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly");
    let parallel = h::table6::run(true, par()).expect("quick workloads simulate cleanly");
    assert_eq!(
        h::table6::to_markdown(&serial),
        h::table6::to_markdown(&parallel),
        "table6 rendering must not depend on the worker count"
    );
}

#[test]
fn fault_sweep_is_identical_serial_and_parallel() {
    // A bounded slice of the audit (2 kinds × 1 aggressive rate) keeps the
    // test fast while still exercising the fault-injection path end to end.
    let cell = |jobs: Jobs| {
        h::faults::sweep(
            true,
            7,
            &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
            &[100_000],
            jobs,
        )
        .expect("sweep infrastructure is clean")
    };
    let serial = cell(Jobs::serial());
    let parallel = cell(par());
    assert_eq!(
        h::faults::to_markdown(&serial),
        h::faults::to_markdown(&parallel),
        "fault audit rendering must not depend on the worker count"
    );
}

#[test]
fn table1_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::table1::to_markdown(&h::table1::run(Jobs::serial()).expect("suite simulates cleanly"))
    });
    assert_eq!(
        skipping, ticking,
        "table1 must not depend on the quiescence skip"
    );
}

#[test]
fn table6_quick_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::table6::to_markdown(
            &h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly"),
        )
    });
    assert_eq!(
        skipping, ticking,
        "table6 must not depend on the quiescence skip"
    );
}

#[test]
fn table1_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::table1::to_markdown(&h::table1::run(Jobs::serial()).expect("suite simulates cleanly"))
    });
    assert_eq!(
        serial, threaded,
        "table1 must not depend on the SM thread count"
    );
}

#[test]
fn table6_quick_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::table6::to_markdown(
            &h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly"),
        )
    });
    assert_eq!(
        serial, threaded,
        "table6 (race reports included) must not depend on the SM thread count"
    );
}

#[test]
fn fault_sweep_is_identical_across_sm_threads() {
    let (serial, threaded) = with_sm_threads(|| {
        h::faults::to_markdown(
            &h::faults::sweep(
                true,
                7,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                Jobs::serial(),
            )
            .expect("sweep infrastructure is clean"),
        )
    });
    assert_eq!(
        serial, threaded,
        "fault audit (injected-fault RNG stream included) must not depend \
         on the SM thread count"
    );
}

#[test]
fn captured_micro_traces_are_identical_across_sm_threads() {
    // The differential audit's captured traces record every detector event
    // a micro's simulation emits, so equality here is the strongest
    // event-stream check: not just identical race totals but identical
    // per-event order and content feeding the oracle.
    let (serial, threaded) = with_sm_threads(|| {
        let m = h::diff::micros(Jobs::serial()).expect("captured traces replay cleanly");
        assert!(m.bugs.is_empty(), "unexplained divergence: {:?}", m.bugs);
        h::diff::micros_to_markdown(&m)
    });
    assert_eq!(
        serial, threaded,
        "captured micro traces must not depend on the SM thread count"
    );
}

#[test]
fn fault_sweep_is_identical_with_and_without_cycle_skip() {
    let (skipping, ticking) = with_and_without_skip(|| {
        h::faults::to_markdown(
            &h::faults::sweep(
                true,
                7,
                &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
                &[100_000],
                Jobs::serial(),
            )
            .expect("sweep infrastructure is clean"),
        )
    });
    assert_eq!(
        skipping, ticking,
        "fault audit must not depend on the quiescence skip"
    );
}
