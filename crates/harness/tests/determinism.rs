//! Serial/parallel equivalence: every experiment must emit byte-identical
//! tables whether its sweep runs on one worker or many, because workers
//! deposit results into job-indexed slots and each cell simulates on a
//! private `Gpu`.

use scord_core::FaultKind;
use scord_harness as h;
use scord_harness::Jobs;

fn par() -> Jobs {
    Jobs::new(4).expect("nonzero")
}

#[test]
fn table1_is_identical_serial_and_parallel() {
    let serial = h::table1::run(Jobs::serial()).expect("suite simulates cleanly");
    let parallel = h::table1::run(par()).expect("suite simulates cleanly");
    assert_eq!(
        h::table1::to_markdown(&serial),
        h::table1::to_markdown(&parallel),
        "table1 rendering must not depend on the worker count"
    );
}

#[test]
fn table6_quick_is_identical_serial_and_parallel() {
    let serial = h::table6::run(true, Jobs::serial()).expect("quick workloads simulate cleanly");
    let parallel = h::table6::run(true, par()).expect("quick workloads simulate cleanly");
    assert_eq!(
        h::table6::to_markdown(&serial),
        h::table6::to_markdown(&parallel),
        "table6 rendering must not depend on the worker count"
    );
}

#[test]
fn fault_sweep_is_identical_serial_and_parallel() {
    // A bounded slice of the audit (2 kinds × 1 aggressive rate) keeps the
    // test fast while still exercising the fault-injection path end to end.
    let cell = |jobs: Jobs| {
        h::faults::sweep(
            true,
            7,
            &[FaultKind::MetadataBitFlip, FaultKind::EventDrop],
            &[100_000],
            jobs,
        )
        .expect("sweep infrastructure is clean")
    };
    let serial = cell(Jobs::serial());
    let parallel = cell(par());
    assert_eq!(
        h::faults::to_markdown(&serial),
        h::faults::to_markdown(&parallel),
        "fault audit rendering must not depend on the worker count"
    );
}
