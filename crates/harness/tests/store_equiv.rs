//! Flat-vs-reference metadata-store equivalence.
//!
//! The production stores index their entries with [`scord_core::FlatMap`]
//! (open addressing, Fibonacci hashing, backward-shift deletion); the
//! original `HashMap`-backed twins survive as `ReferenceFullStore` /
//! `ReferenceCachedStore`. Both layouts must be observationally identical:
//! this suite replays every captured microbenchmark trace and 200 fuzzed
//! traces through a detector built on each store and asserts the race
//! reports match record-for-record, then stress-grows a flat-backed store
//! far past several capacity doublings against the reference.

use scor_suite::micro::all_micros;
use scord_core::{
    build_reference_store, build_store, Detector, DetectorConfig, FuzzConfig, MetadataEntry,
    RecordingDetector, ScordDetector, SplitMix64, StoreKind, Trace,
};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

const MEM_BYTES: u64 = 1 << 20;

/// The two store layouts the simulator exercises: the paper's direct-mapped
/// cache and the eviction-free full store.
const KINDS: [StoreKind; 2] = [
    StoreKind::Cached { ratio: 16 },
    StoreKind::Full { granularity: 4 },
];

fn config_with(kind: StoreKind) -> DetectorConfig {
    DetectorConfig {
        store: kind,
        max_race_records: 1 << 20,
        ..DetectorConfig::paper_default(MEM_BYTES)
    }
}

/// Replays `trace` through a flat-backed and a reference-backed detector
/// with identical configuration and asserts record-identical race reports.
fn assert_store_equivalent(trace: &Trace, cfg: DetectorConfig, label: &str) {
    let mut flat = ScordDetector::with_store(cfg, build_store(cfg.store, cfg.metadata_base));
    let mut reference =
        ScordDetector::with_store(cfg, build_reference_store(cfg.store, cfg.metadata_base));
    trace
        .replay(&mut flat)
        .unwrap_or_else(|e| panic!("{label}: flat-store replay failed: {e}"));
    trace
        .replay(&mut reference)
        .unwrap_or_else(|e| panic!("{label}: reference-store replay failed: {e}"));
    assert_eq!(
        flat.races().records(),
        reference.races().records(),
        "{label}: flat and reference stores must report identical races"
    );
}

/// Every captured microbenchmark trace replays identically through both
/// store layouts (both kinds each).
#[test]
fn micro_traces_are_store_equivalent() {
    for m in all_micros() {
        let gpu_cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
        let mut captured_dc = None;
        let mut gpu = Gpu::try_with_detector_factory(gpu_cfg, |dc| {
            captured_dc = Some(dc);
            Box::new(RecordingDetector::new(ScordDetector::new(dc)))
        })
        .expect("paper-default geometry is valid");
        m.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", m.name));
        let trace = gpu
            .recorded_trace()
            .expect("recording detector attached")
            .clone();
        let dc = captured_dc.expect("factory ran");
        for kind in KINDS {
            let cfg = DetectorConfig {
                store: kind,
                max_race_records: 1 << 20,
                ..dc
            };
            assert_store_equivalent(&trace, cfg, &format!("micro {} ({kind:?})", m.name));
        }
    }
}

/// 200 fuzzed traces across several machine shapes and race-injection
/// rates replay identically through both store layouts (both kinds each).
#[test]
fn fuzzed_traces_are_store_equivalent() {
    const CASES: usize = 200;
    const RACE_PCT: [u32; 4] = [0, 10, 30, 60];
    const SHAPES: [(u8, u8, u8); 4] = [(2, 2, 2), (1, 2, 4), (2, 1, 2), (3, 2, 1)];
    let mut root = SplitMix64::new(0x5702_e4a1);
    for index in 0..CASES {
        let (sms, blocks_per_sm, warps_per_block) = SHAPES[(index / 4) % 4];
        let fuzz = FuzzConfig {
            sms,
            blocks_per_sm,
            warps_per_block,
            race_pct: RACE_PCT[index % 4],
            ..FuzzConfig::default()
        };
        let seed = root.next_u64();
        let trace = fuzz.generate(seed);
        for kind in KINDS {
            assert_store_equivalent(
                &trace,
                config_with(kind),
                &format!("fuzz case {index} seed {seed} ({kind:?})"),
            );
        }
    }
}

/// Property: filling a flat-backed full store far past several capacity
/// doublings loses nothing — every slot still loads exactly what the
/// reference store holds, including after interleaved evictions.
#[test]
fn flat_store_survives_growth_to_capacity() {
    let base = 1 << 20;
    let mut flat = build_store(StoreKind::Full { granularity: 4 }, base);
    let mut reference = build_reference_store(StoreKind::Full { granularity: 4 }, base);
    let mut rng = SplitMix64::new(42);
    let mut live: Vec<u64> = Vec::new();
    // 60k inserts force the table through multiple doublings from its
    // 16-slot floor; one in eight steps evicts a previously-stored address.
    for step in 0..60_000u64 {
        if step % 8 == 7 && !live.is_empty() {
            let victim = live[(rng.next_u64() as usize) % live.len()];
            flat.evict(victim);
            reference.evict(victim);
        } else {
            let addr = (rng.next_u64() % (MEM_BYTES / 4)) * 4;
            let mut entry = MetadataEntry::initialized();
            entry.set_block_id((rng.next_u64() & 0xF) as u8);
            entry.set_warp_id((rng.next_u64() & 0x1F) as u8);
            flat.store(addr, entry);
            reference.store(addr, entry);
            live.push(addr);
        }
    }
    for &addr in &live {
        assert_eq!(
            flat.load(addr),
            reference.load(addr),
            "flat store diverged from reference at 0x{addr:x} after growth"
        );
    }
    // Reset must drop back to the pristine state on both.
    flat.reset();
    reference.reset();
    assert_eq!(flat.load(live[0]), reference.load(live[0]));
    assert!(flat.load(live[0]).fresh, "reset store must look untouched");
}
