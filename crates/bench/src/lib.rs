//! Criterion benchmark crate for the ScoRD reproduction; see `benches/experiments.rs`.
#![warn(missing_docs)]
