//! Criterion benchmarks, one group per table/figure of the paper.
//!
//! Each benchmark measures the wall-clock cost of regenerating (a quick-
//! sized version of) the corresponding experiment — a regression guard on
//! both the simulator's and the detector's performance. The *contents* of
//! the tables are validated by the harness's tests; these benches track how
//! fast the reproduction itself runs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

/// Keep multi-second experiment iterations from blowing up total bench
/// time: criterion's minimum sample count with a short measurement window.
fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
}

use scord_harness as h;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

/// Table I / Table VIII substrate: the 32 microbenchmarks under ScoRD.
fn table1_micros(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_micro_suite");
    tune(&mut g);
    g.bench_function("scord", |b| {
        b.iter(|| black_box(h::table1::run(h::Jobs::serial())));
    });
    g.finish();
}

/// Table VI: racey applications under both detector builds (quick sizes).
fn table6_races(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_races");
    tune(&mut g);
    g.bench_function("quick", |b| {
        b.iter(|| black_box(h::table6::run(true, h::Jobs::serial())));
    });
    g.finish();
}

/// Table VII: the granularity sweep (quick sizes).
fn table7_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_granularity");
    tune(&mut g);
    g.bench_function("quick", |b| {
        b.iter(|| black_box(h::table7::run(true, h::Jobs::serial())));
    });
    g.finish();
}

/// Figure 8: per-application overhead runs, one benchmark per app.
fn fig8_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_overhead");
    tune(&mut g);
    for (i, app) in h::apps(true).iter().enumerate() {
        for (mode_name, mode) in [
            ("off", DetectionMode::Off),
            ("scord", DetectionMode::scord()),
        ] {
            g.bench_function(format!("{}_{}", app.name(), mode_name), |b| {
                b.iter(|| {
                    black_box(h::run_app(
                        h::apps(true)[i].as_ref(),
                        mode,
                        h::MemoryVariant::Default,
                    ))
                });
            });
        }
    }
    g.finish();
}

/// Figure 9's DRAM-traffic collection (bundled with the fig8 runs, but
/// exercised separately so the split counters stay covered).
fn fig9_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_dram");
    tune(&mut g);
    g.bench_function("quick", |b| b.iter(|| black_box(h::fig9::run(true, h::Jobs::serial()))));
    g.finish();
}

/// Figure 10: the four-toggle attribution runs for one representative app.
fn fig10_breakdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_breakdown");
    tune(&mut g);
    g.bench_function("quick", |b| b.iter(|| black_box(h::fig10::run(true, h::Jobs::serial()))));
    g.finish();
}

/// Figure 11: the memory-sensitivity sweep.
fn fig11_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_sensitivity");
    tune(&mut g);
    g.bench_function("quick", |b| b.iter(|| black_box(h::fig11::run(true, h::Jobs::serial()))));
    g.finish();
}

/// Table VIII: the three detector models over the microbenchmarks.
fn table8_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_detectors");
    tune(&mut g);
    g.bench_function("all_models", |b| b.iter(|| black_box(h::table8::run(h::Jobs::serial()))));
    g.finish();
}

/// Raw simulator throughput: a streaming kernel without detection — the
/// substrate's own speed, independent of any experiment.
fn simulator_throughput(c: &mut Criterion) {
    use scord_isa::KernelBuilder;
    let mut k = KernelBuilder::new("stream", 2);
    let a = k.ld_param(0);
    let b_ = k.ld_param(1);
    let g = k.global_tid();
    let aa = k.index_addr(a, g, 4);
    let v = k.ld_global(aa, 0);
    let v2 = k.mul(v, 3u32);
    let ba = k.index_addr(b_, g, 4);
    k.st_global(ba, 0, v2);
    let prog = k.finish().unwrap();

    let mut g = c.benchmark_group("simulator");
    tune(&mut g);
    g.bench_function("streaming_kernel", |bch| {
        bch.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_default());
            let n = 64 * 128;
            let a = gpu.mem_mut().alloc_words(n);
            let b = gpu.mem_mut().alloc_words(n);
            let stats = gpu.launch(&prog, 64, 128, &[a.addr(), b.addr()]).unwrap();
            black_box(stats.cycles)
        });
    });
    g.finish();
}

/// Ablation sweeps over ScoRD's design choices (lock-table size, metadata
/// cache ratio, detector throughput).
fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    tune(&mut g);
    g.bench_function("lock_table_sizes", |b| {
        b.iter(|| black_box(h::ablations::lock_table(&[1, 4], h::Jobs::serial())))
    });
    g.bench_function("cache_ratios", |b| {
        b.iter(|| black_box(h::ablations::cache_ratio(true, &[1, 16], h::Jobs::serial())))
    });
    g.bench_function("detector_throughput", |b| {
        b.iter(|| black_box(h::ablations::throughput(true, &[4, 32], h::Jobs::serial())))
    });
    g.finish();
}

/// The in-tree perf basket — the exact workload set `run-experiments perf`
/// times into `BENCH_sim.json` — under criterion's statistics. Tracking the
/// same basket in both harnesses keeps the committed JSON trajectory and
/// the criterion reports directly comparable.
fn perf_basket(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_basket");
    tune(&mut g);
    g.bench_function("basket", |b| {
        b.iter(|| black_box(h::perf::run(1, "criterion")));
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_micros,
    table6_races,
    table7_granularity,
    fig8_overhead,
    fig9_dram,
    fig10_breakdown,
    fig11_sensitivity,
    table8_detectors,
    ablations,
    simulator_throughput,
    perf_basket
);
criterion_main!(benches);
