//! Race reports and accumulation.
//!
//! ScoRD does not stop at the first race: it accumulates reports in a memory
//! buffer so one execution surfaces many bugs (paper §IV). A report carries
//! the faulting instruction pointer, the data address, the race type and
//! whether the conflict was within a threadblock or across threadblocks.

use std::collections::HashSet;
use std::fmt;

use scord_isa::Scope;

use crate::Accessor;

/// The type of a detected race, matching the conditions of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Conflicting accesses within a block with no intervening fence
    /// (Table IV (a)).
    MissingBlockFence,
    /// Conflicting accesses across blocks with no intervening device-scope
    /// fence (Table IV (b)) — includes *scoped-fence races*, where a fence
    /// existed but only at block scope.
    MissingDeviceFence,
    /// Conflicting accesses where one side is not a strong (volatile/atomic)
    /// operation, which fences cannot order (Table IV (c)).
    NotStrong,
    /// A block-scoped atomic observed by a different threadblock
    /// (Table IV (d)) — the *scoped-atomic race*.
    ScopedAtomic,
    /// A load of modified data without a lock in common with the last
    /// accessor (Table IV (e)).
    MissingLockLoad,
    /// A store without a lock in common with the last accessor
    /// (Table IV (f)).
    MissingLockStore,
}

impl RaceKind {
    /// All kinds, for tabulation.
    pub const ALL: [RaceKind; 6] = [
        RaceKind::MissingBlockFence,
        RaceKind::MissingDeviceFence,
        RaceKind::NotStrong,
        RaceKind::ScopedAtomic,
        RaceKind::MissingLockLoad,
        RaceKind::MissingLockStore,
    ];
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::MissingBlockFence => "missing-block-fence",
            RaceKind::MissingDeviceFence => "missing-device-fence",
            RaceKind::NotStrong => "not-strong-access",
            RaceKind::ScopedAtomic => "scoped-atomic",
            RaceKind::MissingLockLoad => "missing-lock-load",
            RaceKind::MissingLockStore => "missing-lock-store",
        };
        f.write_str(s)
    }
}

/// One detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// The race type.
    pub kind: RaceKind,
    /// Instruction pointer of the access that exposed the race.
    pub pc: u32,
    /// Data byte address involved.
    pub addr: u64,
    /// The accessor that triggered detection.
    pub who: Accessor,
    /// Block slot recorded in metadata for the previous conflicting access.
    pub prev_block: u8,
    /// Warp slot recorded in metadata for the previous conflicting access.
    pub prev_warp: u8,
    /// `Block` if both accesses came from the same threadblock, `Device`
    /// otherwise — the paper reports this to help localise the bug.
    pub conflict_scope: Scope,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race at pc {} on 0x{:x} ({}-level conflict, block {} warp {} vs block {} warp {})",
            self.kind,
            self.pc,
            self.addr,
            self.conflict_scope,
            self.who.block_slot,
            self.who.warp_slot,
            self.prev_block,
            self.prev_warp,
        )
    }
}

/// The accumulating race buffer.
///
/// *Unique* races are deduplicated by `(pc, kind)` — the same static bug hit
/// by many threads counts once, which is how the paper's per-application race
/// counts (Table VI) are tallied.
#[derive(Debug, Clone, Default)]
pub struct RaceLog {
    records: Vec<RaceReport>,
    unique: HashSet<(u32, RaceKind)>,
    total: u64,
    capacity: usize,
}

impl RaceLog {
    /// Creates a log retaining at most `capacity` full records (the unique
    /// and total counters are unaffected by the cap).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RaceLog {
            records: Vec::new(),
            unique: HashSet::new(),
            total: 0,
            capacity,
        }
    }

    /// Records a race; returns `true` if its `(pc, kind)` pair is new.
    pub fn record(&mut self, report: RaceReport) -> bool {
        self.total += 1;
        if self.records.len() < self.capacity {
            self.records.push(report);
        }
        self.unique.insert((report.pc, report.kind))
    }

    /// Number of unique `(pc, kind)` races seen.
    #[must_use]
    pub fn unique_count(&self) -> usize {
        self.unique.len()
    }

    /// Total dynamic race detections (every lane access counts).
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Unique races of a given kind.
    #[must_use]
    pub fn unique_of_kind(&self, kind: RaceKind) -> usize {
        self.unique.iter().filter(|(_, k)| *k == kind).count()
    }

    /// The retained reports (up to the capacity), in detection order.
    #[must_use]
    pub fn records(&self) -> &[RaceReport] {
        &self.records
    }

    /// The set of unique `(pc, kind)` pairs.
    pub fn unique_races(&self) -> impl Iterator<Item = (u32, RaceKind)> + '_ {
        self.unique.iter().copied()
    }

    /// `true` if no race has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        self.records.clear();
        self.unique.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pc: u32, kind: RaceKind) -> RaceReport {
        RaceReport {
            kind,
            pc,
            addr: 0x40,
            who: Accessor {
                sm: 0,
                block_slot: 1,
                warp_slot: 2,
            },
            prev_block: 3,
            prev_warp: 4,
            conflict_scope: Scope::Device,
        }
    }

    #[test]
    fn unique_counting_dedups_by_pc_and_kind() {
        let mut log = RaceLog::new(16);
        assert!(log.record(report(10, RaceKind::ScopedAtomic)));
        assert!(!log.record(report(10, RaceKind::ScopedAtomic)), "duplicate");
        assert!(log.record(report(10, RaceKind::MissingDeviceFence)));
        assert!(log.record(report(11, RaceKind::ScopedAtomic)));
        assert_eq!(log.unique_count(), 3);
        assert_eq!(log.total_count(), 4);
        assert_eq!(log.unique_of_kind(RaceKind::ScopedAtomic), 2);
    }

    #[test]
    fn record_cap_preserves_counters() {
        let mut log = RaceLog::new(2);
        for pc in 0..10 {
            log.record(report(pc, RaceKind::NotStrong));
        }
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.unique_count(), 10);
        assert_eq!(log.total_count(), 10);
    }

    #[test]
    fn reset_empties() {
        let mut log = RaceLog::new(4);
        log.record(report(1, RaceKind::MissingLockLoad));
        assert!(!log.is_empty());
        log.reset();
        assert!(log.is_empty());
        assert_eq!(log.unique_count(), 0);
    }

    #[test]
    fn display_mentions_kind_and_scope() {
        let r = report(5, RaceKind::MissingBlockFence);
        let s = r.to_string();
        assert!(s.contains("missing-block-fence"), "{s}");
        assert!(s.contains("device-level"), "{s}");
    }

    #[test]
    fn all_kinds_distinct_display() {
        let mut seen = std::collections::HashSet::new();
        for k in RaceKind::ALL {
            assert!(seen.insert(k.to_string()));
        }
    }
}
