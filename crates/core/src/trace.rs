//! Recording and replaying detector event streams.
//!
//! ScoRD's inputs are a stream of accesses, fences, barriers and warp
//! assignments. Capturing that stream makes the detector usable far beyond
//! one simulator: traces can be recorded once (from this repo's simulator,
//! a binary instrumenter, or another simulator), stored as plain text,
//! diffed, minimized, and replayed against any [`Detector`] configuration —
//! e.g., to compare the full store with the software cache on the same
//! execution.
//!
//! The format is line-based, one event per line:
//!
//! ```text
//! # comment
//! A L|S 0xADDR strong|weak PC SM BLOCK WARP        # load / store
//! A C|X|O b|d 0xADDR PC SM BLOCK WARP              # atomic cas/exch/other at block|device scope
//! F SM WARP b|d                                    # fence
//! B SM BLOCK                                       # barrier
//! W SM WARP                                        # warp slot assigned
//! K                                                # kernel boundary
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use scord_isa::Scope;

use crate::{AccessKind, Accessor, AtomKind, Detector, DetectorError, MemAccess};

/// One recorded detector event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A lane's global-memory access.
    Access(MemAccess),
    /// A scoped fence by a warp.
    Fence {
        /// SM index.
        sm: u8,
        /// Warp slot.
        warp_slot: u8,
        /// Fence scope.
        scope: Scope,
    },
    /// A barrier completion for a block.
    Barrier {
        /// SM index.
        sm: u8,
        /// Global block slot.
        block_slot: u8,
    },
    /// A warp slot assigned to a fresh block.
    WarpAssigned {
        /// SM index.
        sm: u8,
        /// Warp slot.
        warp_slot: u8,
    },
    /// A kernel-launch boundary (device-wide synchronization).
    KernelBoundary,
}

fn scope_letter(scope: Scope) -> char {
    match scope {
        Scope::Block => 'b',
        Scope::Device => 'd',
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Access(a) => {
                let who = a.who;
                match a.kind {
                    AccessKind::Load | AccessKind::Store => write!(
                        f,
                        "A {} 0x{:x} {} {} {} {} {}",
                        if a.kind == AccessKind::Load { 'L' } else { 'S' },
                        a.addr,
                        if a.strong { "strong" } else { "weak" },
                        a.pc,
                        who.sm,
                        who.block_slot,
                        who.warp_slot
                    ),
                    AccessKind::Atomic { kind, scope } => {
                        let k = match kind {
                            AtomKind::Cas => 'C',
                            AtomKind::Exch => 'X',
                            AtomKind::Other => 'O',
                        };
                        write!(
                            f,
                            "A {k} {} 0x{:x} {} {} {} {}",
                            scope_letter(scope),
                            a.addr,
                            a.pc,
                            who.sm,
                            who.block_slot,
                            who.warp_slot
                        )
                    }
                }
            }
            TraceEvent::Fence {
                sm,
                warp_slot,
                scope,
            } => write!(f, "F {sm} {warp_slot} {}", scope_letter(*scope)),
            TraceEvent::Barrier { sm, block_slot } => write!(f, "B {sm} {block_slot}"),
            TraceEvent::WarpAssigned { sm, warp_slot } => write!(f, "W {sm} {warp_slot}"),
            TraceEvent::KernelBoundary => write!(f, "K"),
        }
    }
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

fn parse_scope(s: &str) -> Result<Scope, String> {
    match s {
        "b" => Ok(Scope::Block),
        "d" => Ok(Scope::Device),
        other => Err(format!("bad scope {other:?} (expected b or d)")),
    }
}

fn parse_num<T: FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

fn parse_addr(s: &str) -> Result<u64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("address must be hex (0x...): {s:?}"))?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad address: {s:?}"))
}

impl FromStr for TraceEvent {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, String> {
        let f: Vec<&str> = line.split_whitespace().collect();
        let accessor = |f: &[&str], at: usize| -> Result<Accessor, String> {
            Ok(Accessor {
                sm: parse_num(f[at], "sm")?,
                block_slot: parse_num(f[at + 1], "block")?,
                warp_slot: parse_num(f[at + 2], "warp")?,
            })
        };
        match f.as_slice() {
            ["A", ls @ ("L" | "S"), addr, strength, pc, _, _, _] => {
                let strong = match *strength {
                    "strong" => true,
                    "weak" => false,
                    other => return Err(format!("bad strength {other:?}")),
                };
                Ok(TraceEvent::Access(MemAccess {
                    kind: if *ls == "L" {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    },
                    addr: parse_addr(addr)?,
                    strong,
                    pc: parse_num(pc, "pc")?,
                    who: accessor(&f, 5)?,
                }))
            }
            ["A", k @ ("C" | "X" | "O"), scope, addr, pc, _, _, _] => {
                let kind = match *k {
                    "C" => AtomKind::Cas,
                    "X" => AtomKind::Exch,
                    _ => AtomKind::Other,
                };
                Ok(TraceEvent::Access(MemAccess {
                    kind: AccessKind::Atomic {
                        kind,
                        scope: parse_scope(scope)?,
                    },
                    addr: parse_addr(addr)?,
                    strong: true,
                    pc: parse_num(pc, "pc")?,
                    who: accessor(&f, 5)?,
                }))
            }
            ["F", sm, warp, scope] => Ok(TraceEvent::Fence {
                sm: parse_num(sm, "sm")?,
                warp_slot: parse_num(warp, "warp")?,
                scope: parse_scope(scope)?,
            }),
            ["B", sm, block] => Ok(TraceEvent::Barrier {
                sm: parse_num(sm, "sm")?,
                block_slot: parse_num(block, "block")?,
            }),
            ["W", sm, warp] => Ok(TraceEvent::WarpAssigned {
                sm: parse_num(sm, "sm")?,
                warp_slot: parse_num(warp, "warp")?,
            }),
            ["K"] => Ok(TraceEvent::KernelBoundary),
            _ => Err(format!("unrecognized event: {line:?}")),
        }
    }
}

/// A recorded event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the line format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the line format (blank lines and `#` comments allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            events.push(trimmed.parse().map_err(|message| ParseTraceError {
                line: i + 1,
                message,
            })?);
        }
        Ok(Trace { events })
    }

    /// Feeds every event into `detector`, in order.
    ///
    /// # Errors
    ///
    /// Stops at the first event the detector rejects and returns a
    /// [`ReplayError`] naming the offending event's index and the
    /// detector's [`DetectorError`] — a recorded trace may have come from
    /// a different geometry, or been corrupted in storage. The index lets
    /// divergence reports and minimizers point at the exact event.
    pub fn replay(&self, detector: &mut dyn Detector) -> Result<(), ReplayError> {
        for (index, e) in self.events.iter().enumerate() {
            let step = match *e {
                TraceEvent::Access(ref a) => detector.on_access(a).map(|_| ()),
                TraceEvent::Fence {
                    sm,
                    warp_slot,
                    scope,
                } => detector.on_fence(sm, warp_slot, scope),
                TraceEvent::Barrier { sm, block_slot } => detector.on_barrier(sm, block_slot),
                TraceEvent::WarpAssigned { sm, warp_slot } => {
                    detector.on_warp_assigned(sm, warp_slot)
                }
                TraceEvent::KernelBoundary => {
                    detector.on_kernel_boundary();
                    Ok(())
                }
            };
            step.map_err(|error| ReplayError { index, error })?;
        }
        Ok(())
    }
}

/// A replay stopped because the detector rejected an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 0-based index of the rejected event within [`Trace::events`].
    pub index: usize,
    /// What the detector objected to.
    pub error: DetectorError,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace event {}: {}", self.index, self.error)
    }
}

impl Error for ReplayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// A [`Detector`] that records the event stream while forwarding it to an
/// inner detector — attach it to the simulator to capture a trace of a real
/// execution.
#[derive(Debug)]
pub struct RecordingDetector<D> {
    inner: D,
    trace: Trace,
}

impl<D: Detector> RecordingDetector<D> {
    /// Wraps `inner`.
    pub fn new(inner: D) -> Self {
        RecordingDetector {
            inner,
            trace: Trace::new(),
        }
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Unwraps into the inner detector and the recorded trace.
    pub fn into_parts(self) -> (D, Trace) {
        (self.inner, self.trace)
    }
}

impl<D: Detector> Detector for RecordingDetector<D> {
    fn on_barrier(&mut self, sm: u8, block_slot: u8) -> Result<(), DetectorError> {
        self.trace.push(TraceEvent::Barrier { sm, block_slot });
        self.inner.on_barrier(sm, block_slot)
    }

    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) -> Result<(), DetectorError> {
        self.trace.push(TraceEvent::Fence {
            sm,
            warp_slot,
            scope,
        });
        self.inner.on_fence(sm, warp_slot, scope)
    }

    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        self.trace.push(TraceEvent::WarpAssigned { sm, warp_slot });
        self.inner.on_warp_assigned(sm, warp_slot)
    }

    fn on_access(&mut self, access: &MemAccess) -> Result<crate::AccessEffects, DetectorError> {
        self.trace.push(TraceEvent::Access(*access));
        self.inner.on_access(access)
    }

    fn fault_stats(&self) -> Option<&crate::FaultStats> {
        self.inner.fault_stats()
    }

    fn races(&self) -> &crate::RaceLog {
        self.inner.races()
    }

    fn reset(&mut self) {
        self.trace = Trace::new();
        self.inner.reset();
    }

    fn on_kernel_boundary(&mut self) {
        self.trace.push(TraceEvent::KernelBoundary);
        self.inner.on_kernel_boundary();
    }

    fn trace(&self) -> Option<&Trace> {
        Some(&self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetectorConfig, ScordDetector};

    fn sample_events() -> Vec<TraceEvent> {
        let who = Accessor {
            sm: 0,
            block_slot: 0,
            warp_slot: 1,
        };
        let other = Accessor {
            sm: 1,
            block_slot: 8,
            warp_slot: 0,
        };
        vec![
            TraceEvent::WarpAssigned {
                sm: 0,
                warp_slot: 1,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Store,
                addr: 0x100,
                strong: true,
                pc: 3,
                who,
            }),
            TraceEvent::Fence {
                sm: 0,
                warp_slot: 1,
                scope: Scope::Block,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Atomic {
                    kind: AtomKind::Cas,
                    scope: Scope::Device,
                },
                addr: 0x40,
                strong: true,
                pc: 4,
                who: other,
            }),
            TraceEvent::Barrier {
                sm: 0,
                block_slot: 0,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Load,
                addr: 0x100,
                strong: false,
                pc: 7,
                who: other,
            }),
            TraceEvent::KernelBoundary,
        ]
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let trace: Trace = sample_events().into_iter().collect();
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n  K  \n";
        let t = Trace::from_text(text).unwrap();
        assert_eq!(t.events(), &[TraceEvent::KernelBoundary]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Trace::from_text("K\nA bogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn replay_reproduces_detection() {
        // Record a racey stream through a RecordingDetector, then replay
        // the text form against a fresh detector: identical verdicts.
        let cfg = DetectorConfig::base_design(1 << 20);
        let mut rec = RecordingDetector::new(ScordDetector::new(cfg));
        let who = Accessor {
            sm: 0,
            block_slot: 0,
            warp_slot: 0,
        };
        let other = Accessor {
            sm: 1,
            block_slot: 8,
            warp_slot: 0,
        };
        rec.on_access(&MemAccess {
            kind: AccessKind::Store,
            addr: 0x100,
            strong: true,
            pc: 1,
            who,
        })
        .unwrap();
        rec.on_fence(0, 0, Scope::Block).unwrap(); // insufficient scope
        rec.on_access(&MemAccess {
            kind: AccessKind::Load,
            addr: 0x100,
            strong: true,
            pc: 2,
            who: other,
        })
        .unwrap();
        assert_eq!(rec.races().unique_count(), 1);

        let (_, trace) = rec.into_parts();
        let text = trace.to_text();
        let reparsed = Trace::from_text(&text).unwrap();
        let mut fresh = ScordDetector::new(DetectorConfig::base_design(1 << 20));
        reparsed.replay(&mut fresh).unwrap();
        assert_eq!(fresh.races().unique_count(), 1);
        let orig: Vec<_> = trace.events().to_vec();
        assert_eq!(reparsed.events(), orig.as_slice());
    }

    #[test]
    fn replay_supports_config_comparison() {
        // The same trace replayed under the cached store: the point of the
        // format — store configurations can be compared on one execution.
        let trace: Trace = sample_events().into_iter().collect();
        let mut full = ScordDetector::new(DetectorConfig::base_design(1 << 20));
        let mut cached = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
        trace.replay(&mut full).unwrap();
        trace.replay(&mut cached).unwrap();
        assert!(cached.races().unique_count() <= full.races().unique_count());
    }

    #[test]
    fn replay_error_names_the_offending_event_index() {
        // Event 0 and 1 are fine; event 2 claims an SM outside the
        // geometry, and the error must say exactly where.
        let who_bad = Accessor {
            sm: 200,
            block_slot: 0,
            warp_slot: 0,
        };
        let trace: Trace = vec![
            TraceEvent::KernelBoundary,
            TraceEvent::WarpAssigned {
                sm: 0,
                warp_slot: 0,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Load,
                addr: 0x100,
                strong: true,
                pc: 1,
                who: who_bad,
            }),
        ]
        .into_iter()
        .collect();
        let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
        let err = trace.replay(&mut det).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(matches!(
            err.error,
            crate::DetectorError::SmOutOfRange { sm: 200, .. }
        ));
        assert!(err.to_string().contains("trace event 2"));
    }

    #[test]
    fn recording_reset_clears_the_trace() {
        let mut rec =
            RecordingDetector::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20)));
        rec.on_barrier(0, 0).unwrap();
        assert_eq!(rec.trace().len(), 1);
        rec.reset();
        assert!(rec.trace().is_empty());
    }
}
