//! The per-location in-memory metadata entry (paper Figure 7).
//!
//! ScoRD keeps one 8-byte metadata entry per tracked unit of global memory
//! (by default every 4 bytes). The entry records the identity of the last
//! accessor (hardware block slot + warp slot), the fence and barrier epochs
//! observed at the time of the access, per-location state flags, and a bloom
//! filter summarising the locks held by the last accessor.
//!
//! Bit layout (MSB..LSB), exactly as in the paper:
//!
//! ```text
//! [63-58] [57-54] [53-47]  [46-42] [41-36]    [35-30]    [29-22]   [21-16] [15-0]
//! Unused  Tag     BlockID  WarpID  DevFenceID BlkFenceID BarrierID Flags   LockBloom
//! ```
//!
//! Flags (bit 16 upward): `Modified`, `BlkShared`, `DevShared`, `IsAtom`,
//! `Scope`, `Strong`.

use scord_isa::Scope;

/// Field widths and positions of the packed entry.
mod layout {
    // §VI (ITS extension): the otherwise-unused bits [63:58] hold the
    // accessor's lane id plus a "accessed during divergence" flag.
    pub const LANE_SHIFT: u32 = 58;
    pub const LANE_BITS: u32 = 5;
    pub const FLAG_DIVERGED: u64 = 1 << 63;

    pub const BLOOM_SHIFT: u32 = 0;
    pub const BLOOM_BITS: u32 = 16;
    pub const FLAGS_SHIFT: u32 = 16;
    pub const BARRIER_SHIFT: u32 = 22;
    pub const BARRIER_BITS: u32 = 8;
    pub const BLK_FENCE_SHIFT: u32 = 30;
    pub const FENCE_BITS: u32 = 6;
    pub const DEV_FENCE_SHIFT: u32 = 36;
    pub const WARP_SHIFT: u32 = 42;
    pub const WARP_BITS: u32 = 5;
    pub const BLOCK_SHIFT: u32 = 47;
    pub const BLOCK_BITS: u32 = 7;
    pub const TAG_SHIFT: u32 = 54;
    pub const TAG_BITS: u32 = 4;

    pub const FLAG_MODIFIED: u64 = 1 << FLAGS_SHIFT;
    pub const FLAG_BLK_SHARED: u64 = 1 << (FLAGS_SHIFT + 1);
    pub const FLAG_DEV_SHARED: u64 = 1 << (FLAGS_SHIFT + 2);
    pub const FLAG_IS_ATOM: u64 = 1 << (FLAGS_SHIFT + 3);
    pub const FLAG_SCOPE: u64 = 1 << (FLAGS_SHIFT + 4);
    pub const FLAG_STRONG: u64 = 1 << (FLAGS_SHIFT + 5);
}

/// Width of the packed BlockID field: a hardware geometry must keep
/// `num_sms × blocks_per_sm ≤ 2^BLOCK_ID_BITS` or distinct block slots
/// alias one metadata accessor identity.
pub const BLOCK_ID_BITS: u32 = layout::BLOCK_BITS;

/// Width of the packed WarpID field: bounds `warps_per_sm` the same way.
pub const WARP_ID_BITS: u32 = layout::WARP_BITS;

fn mask(bits: u32) -> u64 {
    (1u64 << bits) - 1
}

/// One packed 8-byte metadata entry.
///
/// A fresh entry is in the *(re-)initialized* state: `Modified`, `BlkShared`
/// and `DevShared` all set (paper Table III condition (a)); every other field
/// is zero.
///
/// ```
/// use scord_core::MetadataEntry;
/// let e = MetadataEntry::initialized();
/// assert!(e.is_initialized());
/// assert_eq!(e.lock_bloom(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetadataEntry(u64);

impl MetadataEntry {
    /// The boot-time / re-initialized entry value.
    #[must_use]
    pub fn initialized() -> Self {
        MetadataEntry(layout::FLAG_MODIFIED | layout::FLAG_BLK_SHARED | layout::FLAG_DEV_SHARED)
    }

    /// Reconstructs an entry from its raw 64-bit representation.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        MetadataEntry(bits)
    }

    /// The raw 64-bit representation (what would sit in device memory).
    #[must_use]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// `true` while the entry is in the (re-)initialized state — the
    /// "trivially race-free first access" signature of Table III (a).
    #[must_use]
    pub fn is_initialized(self) -> bool {
        self.modified() && self.blk_shared() && self.dev_shared()
    }

    fn get(self, shift: u32, bits: u32) -> u64 {
        (self.0 >> shift) & mask(bits)
    }

    fn set(&mut self, shift: u32, bits: u32, value: u64) {
        debug_assert!(
            value <= mask(bits),
            "metadata field value {value} exceeds {bits} bits"
        );
        self.0 = (self.0 & !(mask(bits) << shift)) | ((value & mask(bits)) << shift);
    }

    fn flag(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    fn set_flag(&mut self, bit: u64, value: bool) {
        if value {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    /// Software-cache tag distinguishing aliasing granules (4 bits).
    #[must_use]
    pub fn tag(self) -> u8 {
        self.get(layout::TAG_SHIFT, layout::TAG_BITS) as u8
    }

    /// Sets the software-cache tag.
    pub fn set_tag(&mut self, tag: u8) {
        self.set(layout::TAG_SHIFT, layout::TAG_BITS, u64::from(tag));
    }

    /// Hardware block slot (0–119 with the default 15 SMs × 8 blocks) of the
    /// last accessor.
    #[must_use]
    pub fn block_id(self) -> u8 {
        self.get(layout::BLOCK_SHIFT, layout::BLOCK_BITS) as u8
    }

    /// Sets the last accessor's block slot.
    pub fn set_block_id(&mut self, id: u8) {
        self.set(layout::BLOCK_SHIFT, layout::BLOCK_BITS, u64::from(id));
    }

    /// Hardware warp slot within the SM (0–31) of the last accessor.
    #[must_use]
    pub fn warp_id(self) -> u8 {
        self.get(layout::WARP_SHIFT, layout::WARP_BITS) as u8
    }

    /// Sets the last accessor's warp slot.
    pub fn set_warp_id(&mut self, id: u8) {
        self.set(layout::WARP_SHIFT, layout::WARP_BITS, u64::from(id));
    }

    /// Device-scope fence counter of the last writer at the time of its
    /// access (6 bits, wrapping).
    #[must_use]
    pub fn dev_fence_id(self) -> u8 {
        self.get(layout::DEV_FENCE_SHIFT, layout::FENCE_BITS) as u8
    }

    /// Sets the device-scope fence snapshot.
    pub fn set_dev_fence_id(&mut self, id: u8) {
        self.set(layout::DEV_FENCE_SHIFT, layout::FENCE_BITS, u64::from(id));
    }

    /// Block-scope fence counter of the last writer at the time of its
    /// access (6 bits, wrapping).
    #[must_use]
    pub fn blk_fence_id(self) -> u8 {
        self.get(layout::BLK_FENCE_SHIFT, layout::FENCE_BITS) as u8
    }

    /// Sets the block-scope fence snapshot.
    pub fn set_blk_fence_id(&mut self, id: u8) {
        self.set(layout::BLK_FENCE_SHIFT, layout::FENCE_BITS, u64::from(id));
    }

    /// Barrier epoch of the last writer's threadblock at the time of its
    /// access (8 bits, wrapping).
    #[must_use]
    pub fn barrier_id(self) -> u8 {
        self.get(layout::BARRIER_SHIFT, layout::BARRIER_BITS) as u8
    }

    /// Sets the barrier-epoch snapshot.
    pub fn set_barrier_id(&mut self, id: u8) {
        self.set(layout::BARRIER_SHIFT, layout::BARRIER_BITS, u64::from(id));
    }

    /// Bloom-filter summary of the locks held by the last accessor.
    #[must_use]
    pub fn lock_bloom(self) -> u16 {
        self.get(layout::BLOOM_SHIFT, layout::BLOOM_BITS) as u16
    }

    /// Sets the lock bloom summary.
    pub fn set_lock_bloom(&mut self, bloom: u16) {
        self.set(layout::BLOOM_SHIFT, layout::BLOOM_BITS, u64::from(bloom));
    }

    /// `Modified`: the last conflicting access wrote the location.
    #[must_use]
    pub fn modified(self) -> bool {
        self.flag(layout::FLAG_MODIFIED)
    }

    /// Sets `Modified`.
    pub fn set_modified(&mut self, v: bool) {
        self.set_flag(layout::FLAG_MODIFIED, v);
    }

    /// `BlkShared`: accessed by more than one warp of the same block.
    #[must_use]
    pub fn blk_shared(self) -> bool {
        self.flag(layout::FLAG_BLK_SHARED)
    }

    /// Sets `BlkShared`.
    pub fn set_blk_shared(&mut self, v: bool) {
        self.set_flag(layout::FLAG_BLK_SHARED, v);
    }

    /// `DevShared`: accessed by more than one threadblock.
    #[must_use]
    pub fn dev_shared(self) -> bool {
        self.flag(layout::FLAG_DEV_SHARED)
    }

    /// Sets `DevShared`.
    pub fn set_dev_shared(&mut self, v: bool) {
        self.set_flag(layout::FLAG_DEV_SHARED, v);
    }

    /// `IsAtom`: the last access was an atomic RMW.
    #[must_use]
    pub fn is_atom(self) -> bool {
        self.flag(layout::FLAG_IS_ATOM)
    }

    /// Sets `IsAtom`.
    pub fn set_is_atom(&mut self, v: bool) {
        self.set_flag(layout::FLAG_IS_ATOM, v);
    }

    /// Scope of the last atomic access (meaningful only when
    /// [`MetadataEntry::is_atom`] is set).
    #[must_use]
    pub fn scope(self) -> Scope {
        if self.flag(layout::FLAG_SCOPE) {
            Scope::Device
        } else {
            Scope::Block
        }
    }

    /// Sets the recorded atomic scope.
    pub fn set_scope(&mut self, scope: Scope) {
        self.set_flag(layout::FLAG_SCOPE, scope == Scope::Device);
    }

    /// `Strong`: every access since (re-)initialization was strong (volatile
    /// or atomic).
    #[must_use]
    pub fn strong(self) -> bool {
        self.flag(layout::FLAG_STRONG)
    }

    /// Sets `Strong`.
    pub fn set_strong(&mut self, v: bool) {
        self.set_flag(layout::FLAG_STRONG, v);
    }

    /// Lane (thread id within the warp) of the last accessor — the §VI
    /// Independent-Thread-Scheduling extension, stored in the otherwise
    /// unused bits \[62:58\].
    #[must_use]
    pub fn lane_id(self) -> u8 {
        self.get(layout::LANE_SHIFT, layout::LANE_BITS) as u8
    }

    /// Sets the last accessor's lane id (ITS extension).
    pub fn set_lane_id(&mut self, lane: u8) {
        self.set(layout::LANE_SHIFT, layout::LANE_BITS, u64::from(lane));
    }

    /// `true` if the last access was performed while its warp was diverged
    /// (ITS extension, bit 63).
    #[must_use]
    pub fn diverged(self) -> bool {
        self.flag(layout::FLAG_DIVERGED)
    }

    /// Sets the divergence marker (ITS extension).
    pub fn set_diverged(&mut self, v: bool) {
        self.set_flag(layout::FLAG_DIVERGED, v);
    }
}

impl Default for MetadataEntry {
    fn default() -> Self {
        MetadataEntry::initialized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialized_signature() {
        let e = MetadataEntry::initialized();
        assert!(e.modified() && e.blk_shared() && e.dev_shared());
        assert!(e.is_initialized());
        assert!(!e.is_atom());
        assert!(!e.strong());
        assert_eq!(e.tag(), 0);
    }

    #[test]
    fn fields_are_independent() {
        let mut e = MetadataEntry::from_bits(0);
        e.set_tag(0xF);
        e.set_block_id(119);
        e.set_warp_id(31);
        e.set_dev_fence_id(63);
        e.set_blk_fence_id(42);
        e.set_barrier_id(255);
        e.set_lock_bloom(0xBEEF);
        e.set_is_atom(true);
        e.set_scope(Scope::Device);
        e.set_strong(true);

        assert_eq!(e.tag(), 0xF);
        assert_eq!(e.block_id(), 119);
        assert_eq!(e.warp_id(), 31);
        assert_eq!(e.dev_fence_id(), 63);
        assert_eq!(e.blk_fence_id(), 42);
        assert_eq!(e.barrier_id(), 255);
        assert_eq!(e.lock_bloom(), 0xBEEF);
        assert!(e.is_atom());
        assert_eq!(e.scope(), Scope::Device);
        assert!(e.strong());
        assert!(!e.modified());

        // Clearing one field leaves the others alone.
        e.set_lock_bloom(0);
        assert_eq!(e.block_id(), 119);
        assert_eq!(e.barrier_id(), 255);
    }

    #[test]
    fn scope_flag_roundtrip() {
        let mut e = MetadataEntry::from_bits(0);
        e.set_scope(Scope::Block);
        assert_eq!(e.scope(), Scope::Block);
        e.set_scope(Scope::Device);
        assert_eq!(e.scope(), Scope::Device);
    }

    #[test]
    fn bit_positions_match_figure7() {
        let mut e = MetadataEntry::from_bits(0);
        e.set_lock_bloom(1);
        assert_eq!(e.to_bits(), 1, "bloom occupies bit 0");
        let mut e = MetadataEntry::from_bits(0);
        e.set_modified(true);
        assert_eq!(e.to_bits(), 1 << 16, "flags start at bit 16");
        let mut e = MetadataEntry::from_bits(0);
        e.set_barrier_id(1);
        assert_eq!(e.to_bits(), 1 << 22, "barrier at bit 22");
        let mut e = MetadataEntry::from_bits(0);
        e.set_blk_fence_id(1);
        assert_eq!(e.to_bits(), 1 << 30, "blk fence at bit 30");
        let mut e = MetadataEntry::from_bits(0);
        e.set_dev_fence_id(1);
        assert_eq!(e.to_bits(), 1 << 36, "dev fence at bit 36");
        let mut e = MetadataEntry::from_bits(0);
        e.set_warp_id(1);
        assert_eq!(e.to_bits(), 1 << 42, "warp at bit 42");
        let mut e = MetadataEntry::from_bits(0);
        e.set_block_id(1);
        assert_eq!(e.to_bits(), 1 << 47, "block at bit 47");
        let mut e = MetadataEntry::from_bits(0);
        e.set_tag(1);
        assert_eq!(e.to_bits(), 1 << 54, "tag at bit 54");
    }

    #[test]
    fn unused_bits_stay_clear() {
        let mut e = MetadataEntry::from_bits(0);
        e.set_tag(0xF);
        e.set_block_id(0x7F);
        e.set_warp_id(0x1F);
        e.set_dev_fence_id(0x3F);
        e.set_blk_fence_id(0x3F);
        e.set_barrier_id(0xFF);
        e.set_lock_bloom(0xFFFF);
        e.set_modified(true);
        e.set_blk_shared(true);
        e.set_dev_shared(true);
        e.set_is_atom(true);
        e.set_scope(Scope::Device);
        e.set_strong(true);
        assert_eq!(e.to_bits() >> 58, 0, "bits 63..58 are unused");
    }
}
