//! Per-warp lock tables and the 16-bit lock bloom filter (paper §IV-A).
//!
//! ScoRD *infers* lock and unlock operations from the CUDA acquire/release
//! idiom: `atomicCAS` on the lock word followed by a fence acquires;
//! a fence followed by `atomicExch` releases. Each hardware warp has a
//! 4-entry circular buffer:
//!
//! * `atomicCAS` inserts an entry (valid, **inactive**) recording a 6-bit
//!   hash of the lock address and the CAS's scope;
//! * a fence **activates** every valid entry of matching-or-lesser scope —
//!   an active entry means the warp holds that lock;
//! * `atomicExch` invalidates the entry with matching hash and scope.
//!
//! On every load/store the warp's *active* entries are summarised into a
//! 16-bit bloom filter that travels with the access and is stored in the
//! metadata; lockset detection intersects the two filters (Table IV (e)/(f)).

use scord_isa::Scope;

use crate::Geometry;

/// 6-bit hash of a lock variable's address, as stored in a lock-table entry.
#[must_use]
pub fn lock_hash(addr: u64) -> u8 {
    let g = addr / 4;
    ((g ^ (g >> 6) ^ (g >> 12) ^ (g >> 18)) & 0x3F) as u8
}

/// Bloom-filter bit index for a (lock hash, scope) pair.
///
/// Distinct locks, or the same lock at different scopes, may collide in the
/// 16-bit filter — the paper accepts this as a rare false-negative source.
#[must_use]
pub fn bloom_bit(hash: u8, scope: Scope) -> u16 {
    let scope_bit = u16::from(scope == Scope::Device);
    // Multiplicative mixing spreads all 6 hash bits plus the scope bit over
    // the 16 filter positions; a plain modulo would collide for any two
    // hashes equal mod 16.
    let v = (u16::from(hash) << 1) | scope_bit;
    let idx = (v.wrapping_mul(37) >> 3) & 15;
    1 << idx
}

/// One lock-table entry: 6-bit hash + scope + valid + active = 9 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LockEntry {
    hash: u8,
    scope_device: bool,
    valid: bool,
    active: bool,
}

/// A single warp's 4-entry circular lock table.
#[derive(Debug, Clone)]
pub struct LockTable {
    entries: Vec<LockEntry>,
    next: usize,
}

impl LockTable {
    /// Creates an empty table with `capacity` entries (4 in the paper).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lock table needs at least one entry");
        LockTable {
            entries: vec![LockEntry::default(); capacity],
            next: 0,
        }
    }

    /// Records an `atomicCAS` on `addr` at `scope` — a lock-acquire
    /// candidate. Re-CASing an already-tracked lock does not duplicate the
    /// entry (spin loops CAS repeatedly).
    pub fn on_cas(&mut self, addr: u64, scope: Scope) {
        let hash = lock_hash(addr);
        let scope_device = scope == Scope::Device;
        if self
            .entries
            .iter()
            .any(|e| e.valid && e.hash == hash && e.scope_device == scope_device)
        {
            return;
        }
        self.entries[self.next] = LockEntry {
            hash,
            scope_device,
            valid: true,
            active: false,
        };
        self.next = (self.next + 1) % self.entries.len();
    }

    /// A fence at `scope` activates valid entries of matching-or-lesser
    /// scope: a device fence completes both block- and device-scoped
    /// acquires; a block fence only block-scoped ones.
    pub fn on_fence(&mut self, scope: Scope) {
        for e in &mut self.entries {
            if e.valid {
                let entry_scope = if e.scope_device {
                    Scope::Device
                } else {
                    Scope::Block
                };
                if scope.includes(entry_scope) {
                    e.active = true;
                }
            }
        }
    }

    /// Records an `atomicExch` on `addr` at `scope` — releases the matching
    /// entry if one is held.
    pub fn on_exch(&mut self, addr: u64, scope: Scope) {
        let hash = lock_hash(addr);
        let scope_device = scope == Scope::Device;
        for e in &mut self.entries {
            if e.valid && e.hash == hash && e.scope_device == scope_device {
                e.valid = false;
                e.active = false;
            }
        }
    }

    /// The 16-bit bloom summary of the locks this warp currently holds
    /// (valid **and** active entries).
    #[must_use]
    pub fn bloom(&self) -> u16 {
        self.entries
            .iter()
            .filter(|e| e.valid && e.active)
            .map(|e| {
                bloom_bit(
                    e.hash,
                    if e.scope_device {
                        Scope::Device
                    } else {
                        Scope::Block
                    },
                )
            })
            .fold(0, |acc, b| acc | b)
    }

    /// Number of entries in this table (4 in the paper).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Invalidates the entry at `idx` — the fault injector's adversarial
    /// eviction hook. A no-op on an already-invalid entry.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn invalidate_entry(&mut self, idx: usize) {
        let e = &mut self.entries[idx];
        e.valid = false;
        e.active = false;
    }

    /// Clears the table (warp slot reassigned to a new threadblock).
    pub fn reset(&mut self) {
        self.entries.fill(LockEntry::default());
        self.next = 0;
    }
}

/// All per-warp lock tables, indexed by `(sm, warp_slot)`.
#[derive(Debug, Clone)]
pub struct LockTables {
    warps_per_sm: u32,
    tables: Vec<LockTable>,
}

impl LockTables {
    /// Creates empty tables for `geometry`, `capacity` entries each.
    #[must_use]
    pub fn new(geometry: Geometry, capacity: usize) -> Self {
        LockTables {
            warps_per_sm: geometry.warps_per_sm,
            tables: vec![LockTable::new(capacity); geometry.total_warp_slots() as usize],
        }
    }

    fn index(&self, sm: u8, warp_slot: u8) -> usize {
        (u32::from(sm) * self.warps_per_sm + u32::from(warp_slot)) as usize
    }

    /// The table of one hardware warp.
    #[must_use]
    pub fn table(&self, sm: u8, warp_slot: u8) -> &LockTable {
        &self.tables[self.index(sm, warp_slot)]
    }

    /// Mutable access to one hardware warp's table.
    pub fn table_mut(&mut self, sm: u8, warp_slot: u8) -> &mut LockTable {
        let idx = self.index(sm, warp_slot);
        &mut self.tables[idx]
    }

    /// Clears every table.
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            t.reset();
        }
    }

    /// Hardware state size in bits: 9 bits × entries × warps (paper §IV-C:
    /// 36 bits per warp, 32 warps per SM).
    #[must_use]
    pub fn state_bits(&self) -> usize {
        self.tables.len() * self.tables[0].entries.len() * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_requires_cas_then_fence() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Device);
        assert_eq!(t.bloom(), 0, "CAS alone does not hold the lock");
        t.on_fence(Scope::Device);
        assert_ne!(t.bloom(), 0, "fence activates the acquire");
    }

    #[test]
    fn block_fence_does_not_activate_device_cas() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Device);
        t.on_fence(Scope::Block);
        assert_eq!(
            t.bloom(),
            0,
            "a block fence cannot complete a device-scope acquire"
        );
        t.on_fence(Scope::Device);
        assert_ne!(t.bloom(), 0);
    }

    #[test]
    fn device_fence_activates_block_cas() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Block);
        t.on_fence(Scope::Device);
        assert_ne!(t.bloom(), 0, "matching-or-lesser scope is activated");
    }

    #[test]
    fn exch_releases_matching_entry_only() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Device);
        t.on_cas(0x200, Scope::Device);
        t.on_fence(Scope::Device);
        let both = t.bloom();
        t.on_exch(0x100, Scope::Device);
        let one = t.bloom();
        assert_ne!(one, 0);
        assert_ne!(both, one, "releasing one lock keeps the other");
        t.on_exch(0x200, Scope::Device);
        assert_eq!(t.bloom(), 0);
    }

    #[test]
    fn exch_with_wrong_scope_does_not_release() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Device);
        t.on_fence(Scope::Device);
        t.on_exch(0x100, Scope::Block);
        assert_ne!(t.bloom(), 0, "scope must match to release");
    }

    #[test]
    fn repeated_cas_does_not_duplicate() {
        let mut t = LockTable::new(4);
        for _ in 0..10 {
            t.on_cas(0x100, Scope::Device); // spin loop
        }
        t.on_fence(Scope::Device);
        t.on_cas(0x200, Scope::Device);
        t.on_fence(Scope::Device);
        // If the spin had consumed all four slots, 0x200 would have evicted
        // 0x100's entry.
        t.on_exch(0x200, Scope::Device);
        assert_ne!(t.bloom(), 0, "0x100 still tracked after the spin");
    }

    #[test]
    fn circular_buffer_evicts_oldest() {
        let mut t = LockTable::new(2);
        t.on_cas(0x100, Scope::Device);
        t.on_cas(0x200, Scope::Device);
        t.on_cas(0x300, Scope::Device); // evicts 0x100
        t.on_fence(Scope::Device);
        let b = t.bloom();
        assert_eq!(
            b & bloom_bit(lock_hash(0x100), Scope::Device),
            0,
            "oldest entry evicted (assuming no hash collision here)"
        );
    }

    #[test]
    fn invalidate_entry_drops_a_held_lock() {
        let mut t = LockTable::new(4);
        t.on_cas(0x100, Scope::Device);
        t.on_fence(Scope::Device);
        assert_ne!(t.bloom(), 0);
        assert_eq!(t.capacity(), 4);
        for i in 0..t.capacity() {
            t.invalidate_entry(i);
        }
        assert_eq!(t.bloom(), 0, "invalidated entries leave the bloom");
        // Invalidating an already-empty slot is a no-op.
        t.invalidate_entry(0);
        assert_eq!(t.bloom(), 0);
    }

    #[test]
    fn bloom_distinguishes_scope() {
        let blk = bloom_bit(lock_hash(0x100), Scope::Block);
        let dev = bloom_bit(lock_hash(0x100), Scope::Device);
        assert_ne!(
            blk, dev,
            "the same lock at different scopes must not look common"
        );
    }

    #[test]
    fn tables_are_per_warp_and_sized_per_paper() {
        let mut ts = LockTables::new(Geometry::paper_default(), 4);
        ts.table_mut(0, 0).on_cas(0x100, Scope::Device);
        ts.table_mut(0, 0).on_fence(Scope::Device);
        assert_ne!(ts.table(0, 0).bloom(), 0);
        assert_eq!(ts.table(0, 1).bloom(), 0);
        assert_eq!(
            ts.state_bits(),
            480 * 36,
            "36 bits per warp, 480 warps (paper §IV-C)"
        );
        ts.reset();
        assert_eq!(ts.table(0, 0).bloom(), 0);
    }

    #[test]
    fn lock_hash_is_six_bits() {
        for addr in (0..4096u64).step_by(4) {
            assert!(lock_hash(addr) < 64);
        }
    }
}
