//! Predictive race detection over one captured trace.
//!
//! A dynamic detector judges the one schedule it observed. Following
//! "Predictive Data Race Detection for GPUs" (arXiv:2111.12478), this
//! module asks a stronger question of the same trace: *could* a
//! conflicting pair have raced under a different warp schedule?
//!
//! ## Segments and candidate pairs
//!
//! Each thread's access sequence is partitioned into **reorderable
//! segments**, cut at the points where the thread synchronizes: barriers
//! and kernel boundaries (blocking — every schedule replays them in the
//! same relative position), scoped fences and atomic operations
//! (release/acquire points — they order other threads only if the
//! schedule happens to interleave them favourably). Two conflicting
//! accesses from different threads are a **candidate** when the captured
//! schedule ordered them *only* through such a non-blocking edge —
//! [`OracleDetector::ordered_pair`] returning [`OrderReason::Fence`] or
//! [`OrderReason::AtomicScope`]. Pairs ordered by [`OrderReason::Barrier`]
//! or program order live in mandatorily-ordered segments and are never
//! predicted: no valid schedule reorders them (see
//! [`crate::explore::ScheduleSpace`]).
//!
//! ## Prediction pipeline
//!
//! The trace itself is value-blind: it records no loaded values, so pure
//! reordering over-approximates feasibility. Every candidate therefore
//! passes through a confirmation pipeline and lands in exactly one
//! [`PredictionClass`]:
//!
//! 1. **`LockMutex`** — the accesses hold a common lock. Mutual exclusion
//!    makes some order real in every feasible execution (the spinning CAS
//!    would not have succeeded earlier); a schedule-only witness would be
//!    infeasible, so the candidate is a named false prediction.
//! 2. **`AtomicCommute`** — the later access is itself an atomic whose
//!    scope covers the pair. Same-location adequately-scoped atomics
//!    order at the point of coherence in *either* direction, so every
//!    schedule orders the pair and it can never race.
//! 3. **`Confirmed`** — a concrete witness reordering was found: a valid
//!    schedule (first a targeted hoist of the later access ahead of the
//!    earlier one, then seeded random schedules) under which a fresh
//!    oracle replay judges the pair unordered. The witness schedule is
//!    attached to the prediction.
//! 4. **`SyncForced`** — the mandatory-order DAG forces the pair after
//!    all (defensive: candidates are fence-ordered, and a barrier path
//!    would have produced `OrderReason::Barrier` instead).
//! 5. **`Unconfirmed`** — no witness within budget and no named excuse.
//!    The harness audit treats this as a bug in the schedule model and
//!    fails loudly with a minimized reproducer.

use std::collections::{BTreeSet, HashMap};

use crate::explore::{Schedule, ScheduleSpace};
use crate::fault::SplitMix64;
use crate::{
    AccessKind, Accessor, Geometry, OracleDetector, OrderReason, ReplayError, Trace, TraceEvent,
};
use scord_isa::Scope;

/// Tuning knobs for the predictive pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictConfig {
    /// Seed for the random fallback witness schedules.
    pub seed: u64,
    /// Random schedules tried per candidate after the targeted hoist
    /// schedule fails to produce a witness.
    pub fallback_schedules: u32,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            seed: 1,
            fallback_schedules: 16,
        }
    }
}

/// Verdict for one candidate pair. See the module docs for the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PredictionClass {
    /// Witness schedule found: the pair races under a valid reordering.
    Confirmed,
    /// Common lock held — reordering is value-infeasible (false
    /// prediction, named).
    LockMutex,
    /// Adequately-scoped same-location atomic pair — ordered under every
    /// schedule (false prediction, named).
    AtomicCommute,
    /// Mandatory-order DAG forces the pair (defensive class).
    SyncForced,
    /// No witness found and no named excuse — schedule-model bug.
    Unconfirmed,
}

impl PredictionClass {
    /// Every class, in display order.
    pub const ALL: [PredictionClass; 5] = [
        PredictionClass::Confirmed,
        PredictionClass::LockMutex,
        PredictionClass::AtomicCommute,
        PredictionClass::SyncForced,
        PredictionClass::Unconfirmed,
    ];

    /// Short machine-stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictionClass::Confirmed => "confirmed",
            PredictionClass::LockMutex => "pred-lock-mutex",
            PredictionClass::AtomicCommute => "pred-atomic-commute",
            PredictionClass::SyncForced => "pred-sync-forced",
            PredictionClass::Unconfirmed => "PRED-UNCONFIRMED",
        }
    }
}

/// One candidate pair with its verdict.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Conflicting address.
    pub addr: u64,
    /// PC of the earlier (captured order) access.
    pub earlier_pc: u32,
    /// PC of the later access.
    pub later_pc: u32,
    /// Earlier accessor.
    pub earlier_who: Accessor,
    /// Later accessor.
    pub later_who: Accessor,
    /// Original stream index of the earlier access's event.
    pub earlier_event: usize,
    /// Original stream index of the later access's event.
    pub later_event: usize,
    /// Reorderable segment of the earlier access.
    pub earlier_segment: usize,
    /// Reorderable segment of the later access.
    pub later_segment: usize,
    /// Why the captured schedule ordered the pair (always `Fence` or
    /// `AtomicScope`).
    pub reason: OrderReason,
    /// Pipeline verdict.
    pub class: PredictionClass,
    /// The witness reordering, for `Confirmed` predictions.
    pub witness: Option<PredictWitness>,
}

/// A concrete reordering under which the oracle judges the pair unordered.
#[derive(Debug, Clone)]
pub struct PredictWitness {
    /// The witness schedule over the original trace.
    pub schedule: Schedule,
    /// Its fingerprint (dedup key, shared with the explorer).
    pub fingerprint: u64,
}

/// Result of running the predictive pipeline over one trace.
#[derive(Debug, Clone)]
pub struct PredictOutcome {
    /// Every deduplicated candidate pair with its verdict.
    pub predictions: Vec<Prediction>,
    /// Reorderable segments the trace partitioned into.
    pub segments: usize,
    /// Candidate pairs before deduplication by `(addr, pc, accessor)`
    /// signature.
    pub raw_candidates: usize,
}

impl PredictOutcome {
    /// Number of predictions in `class`.
    #[must_use]
    pub fn count(&self, class: PredictionClass) -> usize {
        self.predictions.iter().filter(|p| p.class == class).count()
    }

    /// Predictions that failed loudly (schedule-model bugs).
    #[must_use]
    pub fn unconfirmed(&self) -> Vec<&Prediction> {
        self.predictions
            .iter()
            .filter(|p| p.class == PredictionClass::Unconfirmed)
            .collect()
    }
}

/// Assigns each access event its reorderable-segment id. A thread's
/// segment is cut at barriers and kernel boundaries (blocking sync),
/// warp reassignment (new incarnation), fences, and atomic accesses
/// (release/acquire points).
fn segment_ids(trace: &Trace) -> (Vec<usize>, usize) {
    let mut next = 0usize;
    // Current segment per slot, and the block each slot last accessed.
    let mut current: HashMap<(u8, u8), usize> = HashMap::new();
    let mut slot_block: HashMap<(u8, u8), u8> = HashMap::new();
    let mut ids = vec![usize::MAX; trace.len()];
    let fresh = |next: &mut usize| {
        let id = *next;
        *next += 1;
        id
    };
    for (i, ev) in trace.events().iter().enumerate() {
        match *ev {
            TraceEvent::Access(a) => {
                let slot = (a.who.sm, a.who.warp_slot);
                let id = *current.entry(slot).or_insert_with(|| fresh(&mut next));
                ids[i] = id;
                slot_block.insert(slot, a.who.block_slot);
                if a.kind.is_atomic() {
                    // An atomic is a release/acquire point: the next
                    // access starts a new segment.
                    current.remove(&slot);
                }
            }
            TraceEvent::Fence { sm, warp_slot, .. }
            | TraceEvent::WarpAssigned { sm, warp_slot } => {
                current.remove(&(sm, warp_slot));
            }
            TraceEvent::Barrier { sm, block_slot } => {
                let cut: Vec<(u8, u8)> = current
                    .keys()
                    .copied()
                    .filter(|slot| match slot_block.get(slot) {
                        Some(&b) => b == block_slot,
                        None => slot.0 == sm,
                    })
                    .collect();
                for slot in cut {
                    current.remove(&slot);
                }
            }
            TraceEvent::KernelBoundary => {
                current.clear();
                slot_block.clear();
            }
        }
    }
    (ids, next)
}

/// A deterministic schedule that runs event `target` as early as its
/// mandatory ancestors allow, leaving everything else in captured order.
fn hoist_schedule(space: &ScheduleSpace, target: usize) -> Schedule {
    // Ancestors of `target` in the mandatory-order DAG (downward closed).
    let mut anc = vec![false; space.len()];
    anc[target] = true;
    let mut work = vec![target as u32];
    while let Some(e) = work.pop() {
        for &p in space.preds(e as usize) {
            if !anc[p as usize] {
                anc[p as usize] = true;
                work.push(p);
            }
        }
    }
    let mut done = false;
    let mut rng = SplitMix64::new(0);
    space.schedule_by(
        |ready, _| {
            if !done {
                if let Some(&e) = ready.iter().find(|&&e| anc[e as usize]) {
                    if e as usize == target {
                        done = true;
                    }
                    return e;
                }
                // Ancestors are downward closed, so one is always ready
                // until the target runs; defensive fallback only.
                done = true;
            }
            ready[0]
        },
        &mut rng,
    )
}

/// Replays `schedule.apply(trace)` and re-judges the pair at original
/// stream indices `(ex, ey)`: `Some(true)` means the witness replay left
/// the pair unordered (race confirmed).
fn pair_unordered_under(
    trace: &Trace,
    geometry: Geometry,
    schedule: &Schedule,
    ex: usize,
    ey: usize,
) -> Result<bool, ReplayError> {
    let permuted = schedule.apply(trace);
    let mut oracle = OracleDetector::new(geometry);
    permuted.replay(&mut oracle)?;
    let (px, py) = (schedule.position_of(ex), schedule.position_of(ey));
    let (first, second) = if px < py { (px, py) } else { (py, px) };
    let acc = oracle.accesses();
    let a = acc
        .iter()
        .find(|a| a.event == first)
        .expect("access survives reordering");
    let b = acc
        .iter()
        .find(|a| a.event == second)
        .expect("access survives reordering");
    Ok(OracleDetector::ordered_pair(a, b).is_none())
}

/// Runs the predictive pipeline over `trace`. Deterministic in
/// `(trace, geometry, cfg)`.
///
/// # Errors
///
/// Returns the [`ReplayError`] if the captured trace does not replay
/// under `geometry` (reordered valid schedules replay iff the original
/// does).
pub fn predict(
    trace: &Trace,
    geometry: Geometry,
    cfg: &PredictConfig,
) -> Result<PredictOutcome, ReplayError> {
    let mut oracle = OracleDetector::new(geometry);
    trace.replay(&mut oracle)?;
    let accesses = oracle.accesses();
    let (seg_ids, segments) = segment_ids(trace);

    // Candidate pairs: conflicting, cross-thread, ordered only by a
    // non-blocking edge. Deduplicated by code-level signature so a loop
    // body contributes one candidate, not one per iteration.
    /// Code-level candidate signature: address, both PCs, both accessor
    /// coordinates.
    type CandidateSig = (u64, u32, u32, (u8, u8, u8), (u8, u8, u8));
    let mut raw_candidates = 0usize;
    let mut seen: BTreeSet<CandidateSig> = BTreeSet::new();
    let mut candidates: Vec<(usize, usize, OrderReason)> = Vec::new();
    let mut by_addr: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, a) in accesses.iter().enumerate() {
        by_addr.entry(a.access.addr).or_default().push(i);
    }
    let mut addrs: Vec<&u64> = by_addr.keys().collect();
    addrs.sort_unstable();
    for addr in addrs {
        let idxs = &by_addr[addr];
        for (k, &xi) in idxs.iter().enumerate() {
            for &yi in &idxs[k + 1..] {
                let (x, y) = (&accesses[xi], &accesses[yi]);
                if x.thread == y.thread || x.epoch != y.epoch {
                    continue;
                }
                if !(x.access.kind.is_write() || y.access.kind.is_write()) {
                    continue;
                }
                let reason = match OracleDetector::ordered_pair(x, y) {
                    Some(r @ (OrderReason::Fence | OrderReason::AtomicScope)) => r,
                    _ => continue,
                };
                raw_candidates += 1;
                let sig = |a: &crate::OracleAccess| {
                    (
                        a.access.who.sm,
                        a.access.who.block_slot,
                        a.access.who.warp_slot,
                    )
                };
                if seen.insert((*addr, x.access.pc, y.access.pc, sig(x), sig(y))) {
                    candidates.push((xi, yi, reason));
                }
            }
        }
    }

    let space = ScheduleSpace::new(trace);
    let mut predictions = Vec::with_capacity(candidates.len());
    for (ci, (xi, yi, reason)) in candidates.into_iter().enumerate() {
        let (x, y) = (&accesses[xi], &accesses[yi]);
        let (ex, ey) = (x.event, y.event);
        let mut witness = None;
        let class = if x.locks.iter().any(|l| y.locks.contains(l)) {
            PredictionClass::LockMutex
        } else if match y.access.kind {
            AccessKind::Atomic { scope, .. } => {
                scope == Scope::Device || y.access.who.block_slot == x.access.who.block_slot
            }
            _ => false,
        } {
            // Reversed order would be AtomicScope-ordered too: the pair
            // is ordered under every schedule.
            PredictionClass::AtomicCommute
        } else {
            // Witness search: targeted hoist of y ahead of x, then
            // seeded random schedules.
            let targeted = hoist_schedule(&space, ey);
            let mut found = if pair_unordered_under(trace, geometry, &targeted, ex, ey)? {
                Some(targeted)
            } else {
                None
            };
            if found.is_none() {
                let mut rng = SplitMix64::new(
                    cfg.seed
                        .wrapping_add((ci as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                for _ in 0..cfg.fallback_schedules {
                    let s = space.random(&mut rng);
                    if pair_unordered_under(trace, geometry, &s, ex, ey)? {
                        found = Some(s);
                        break;
                    }
                }
            }
            match found {
                Some(schedule) => {
                    let fingerprint = schedule.fingerprint();
                    witness = Some(PredictWitness {
                        schedule,
                        fingerprint,
                    });
                    PredictionClass::Confirmed
                }
                None if space.forces(ex, ey) => PredictionClass::SyncForced,
                None => PredictionClass::Unconfirmed,
            }
        };
        predictions.push(Prediction {
            addr: x.access.addr,
            earlier_pc: x.access.pc,
            later_pc: y.access.pc,
            earlier_who: x.access.who,
            later_who: y.access.who,
            earlier_event: ex,
            later_event: ey,
            earlier_segment: seg_ids[ex],
            later_segment: seg_ids[ey],
            reason,
            class,
            witness,
        });
    }

    Ok(PredictOutcome {
        predictions,
        segments,
        raw_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomKind, FuzzConfig, MemAccess};

    fn acc(block: u8, warp: u8) -> Accessor {
        Accessor {
            sm: block / 8,
            block_slot: block,
            warp_slot: warp,
        }
    }

    fn store(addr: u64, pc: u32, who: Accessor) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            kind: AccessKind::Store,
            addr,
            strong: true,
            pc,
            who,
        })
    }

    fn load(addr: u64, pc: u32, who: Accessor) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            kind: AccessKind::Load,
            addr,
            strong: true,
            pc,
            who,
        })
    }

    fn atomic(addr: u64, pc: u32, who: Accessor, kind: AtomKind, scope: Scope) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            kind: AccessKind::Atomic { kind, scope },
            addr,
            strong: true,
            pc,
            who,
        })
    }

    fn fence(who: Accessor, scope: Scope) -> TraceEvent {
        TraceEvent::Fence {
            sm: who.sm,
            warp_slot: who.warp_slot,
            scope,
        }
    }

    fn geometry() -> Geometry {
        Geometry::paper_default()
    }

    fn run(events: Vec<TraceEvent>) -> PredictOutcome {
        let t: Trace = events.into_iter().collect();
        predict(&t, geometry(), &PredictConfig::default()).unwrap()
    }

    #[test]
    fn fence_published_pair_is_confirmed() {
        // Device-fence publication: race-free as captured, but only by
        // schedule luck — the predictor must confirm it with a witness.
        let p = acc(0, 0);
        let c = acc(8, 0);
        let out = run(vec![
            store(0x100, 1, p),
            fence(p, Scope::Device),
            atomic(0x200, 2, p, AtomKind::Exch, Scope::Device),
            atomic(0x200, 3, c, AtomKind::Other, Scope::Device),
            load(0x100, 4, c),
        ]);
        let payload: Vec<_> = out.predictions.iter().filter(|p| p.addr == 0x100).collect();
        assert_eq!(payload.len(), 1, "one payload candidate: {out:?}");
        assert_eq!(payload[0].class, PredictionClass::Confirmed);
        assert_eq!(payload[0].reason, OrderReason::Fence);
        let w = payload[0].witness.as_ref().expect("witness attached");
        // The witness really is a valid reordering that the oracle judges
        // racy for this pair.
        let t: Trace = vec![
            store(0x100, 1, p),
            fence(p, Scope::Device),
            atomic(0x200, 2, p, AtomKind::Exch, Scope::Device),
            atomic(0x200, 3, c, AtomKind::Other, Scope::Device),
            load(0x100, 4, c),
        ]
        .into_iter()
        .collect();
        let space = ScheduleSpace::new(&t);
        assert!(space.is_valid(&w.schedule));
    }

    #[test]
    fn barrier_separated_pair_is_not_a_candidate() {
        let a = acc(0, 0);
        let b = acc(0, 1);
        let out = run(vec![
            store(0x100, 1, a),
            load(0x40, 2, b),
            TraceEvent::Barrier {
                sm: 0,
                block_slot: 0,
            },
            load(0x100, 3, b),
        ]);
        assert!(
            out.predictions.is_empty(),
            "barrier-ordered pairs are never predicted: {out:?}"
        );
    }

    #[test]
    fn adequately_scoped_atomics_commute() {
        let a = acc(0, 0);
        let b = acc(8, 0);
        let out = run(vec![
            atomic(0x200, 1, a, AtomKind::Other, Scope::Device),
            atomic(0x200, 2, b, AtomKind::Other, Scope::Device),
        ]);
        assert_eq!(out.predictions.len(), 1);
        assert_eq!(out.predictions[0].class, PredictionClass::AtomicCommute);
    }

    #[test]
    fn common_lock_names_the_false_prediction() {
        // Two threads guard the data word with the same device-scoped
        // lock (CAS + fence acquire, fence + Exch release). The data
        // accesses are fence-ordered in the captured schedule; reordering
        // them ignores the spin-loop values, so the pair must land in
        // LockMutex, not Confirmed.
        let a = acc(0, 0);
        let b = acc(8, 0);
        let lock = 0x2000;
        let out = run(vec![
            atomic(lock, 1, a, AtomKind::Cas, Scope::Device),
            fence(a, Scope::Device),
            store(0x100, 2, a),
            fence(a, Scope::Device),
            atomic(lock, 3, a, AtomKind::Exch, Scope::Device),
            atomic(lock, 1, b, AtomKind::Cas, Scope::Device),
            fence(b, Scope::Device),
            store(0x100, 2, b),
            fence(b, Scope::Device),
            atomic(lock, 3, b, AtomKind::Exch, Scope::Device),
        ]);
        let data: Vec<_> = out.predictions.iter().filter(|p| p.addr == 0x100).collect();
        assert_eq!(data.len(), 1, "one data candidate: {out:?}");
        assert_eq!(data[0].class, PredictionClass::LockMutex);
    }

    #[test]
    fn segments_cut_at_sync_points() {
        let a = acc(0, 0);
        let out = run(vec![
            store(0x100, 1, a),
            fence(a, Scope::Block),
            store(0x104, 2, a),
            TraceEvent::Barrier {
                sm: 0,
                block_slot: 0,
            },
            store(0x108, 3, a),
        ]);
        assert_eq!(out.segments, 3, "fence and barrier each cut: {out:?}");
    }

    #[test]
    fn predictions_deterministic_and_never_unconfirmed_on_fuzz() {
        let cfg = PredictConfig::default();
        for seed in 0..12 {
            let t = FuzzConfig::default().generate(seed);
            let a = predict(&t, geometry(), &cfg).unwrap();
            let b = predict(&t, geometry(), &cfg).unwrap();
            assert_eq!(a.predictions.len(), b.predictions.len());
            for (pa, pb) in a.predictions.iter().zip(&b.predictions) {
                assert_eq!(pa.class, pb.class);
                assert_eq!(
                    pa.witness.as_ref().map(|w| w.fingerprint),
                    pb.witness.as_ref().map(|w| w.fingerprint)
                );
            }
            assert_eq!(
                a.count(PredictionClass::Unconfirmed),
                0,
                "seed {seed}: every prediction confirmed or excused: {:?}",
                a.unconfirmed()
            );
        }
    }
}
