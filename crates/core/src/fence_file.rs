//! The hardware fence file (paper Figure 6).
//!
//! One entry per hardware warp slot, holding two 6-bit wrapping counters:
//! the number of block-scope and device-scope fences the warp has executed.
//! A device-scope fence subsumes block scope, so it bumps *both* counters —
//! that way "has any fence of at-least-block scope happened since?" is a
//! plain equality check on the pair.

use crate::Geometry;

/// A fence-file entry: the warp's latest fence counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FenceCounters {
    /// Block-scope fence counter (6-bit wrapping).
    pub blk: u8,
    /// Device-scope fence counter (6-bit wrapping).
    pub dev: u8,
}

const FENCE_MASK: u8 = 0x3F;

/// The fence file: per-hardware-warp fence counters, indexed by
/// `(sm, warp_slot)`.
///
/// Size in the default geometry: 480 entries × 12 bits = 720 bytes, matching
/// the paper's hardware-overhead accounting (§IV-C).
#[derive(Debug, Clone)]
pub struct FenceFile {
    warps_per_sm: u32,
    entries: Vec<FenceCounters>,
}

impl FenceFile {
    /// Creates a zeroed fence file for `geometry`.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        FenceFile {
            warps_per_sm: geometry.warps_per_sm,
            entries: vec![FenceCounters::default(); geometry.total_warp_slots() as usize],
        }
    }

    fn index(&self, sm: u8, warp_slot: u8) -> usize {
        let idx = u32::from(sm) * self.warps_per_sm + u32::from(warp_slot);
        idx as usize
    }

    /// Records a fence executed by `(sm, warp_slot)` at `scope`.
    pub fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: scord_isa::Scope) {
        let idx = self.index(sm, warp_slot);
        let e = &mut self.entries[idx];
        match scope {
            scord_isa::Scope::Block => {
                e.blk = e.blk.wrapping_add(1) & FENCE_MASK;
            }
            scord_isa::Scope::Device => {
                // Device scope includes block scope.
                e.blk = e.blk.wrapping_add(1) & FENCE_MASK;
                e.dev = e.dev.wrapping_add(1) & FENCE_MASK;
            }
        }
    }

    /// Reads the current counters of `(sm, warp_slot)`.
    #[must_use]
    pub fn counters(&self, sm: u8, warp_slot: u8) -> FenceCounters {
        self.entries[self.index(sm, warp_slot)]
    }

    /// Overwrites the counters of `(sm, warp_slot)` — the fault injector's
    /// corruption/forced-wraparound hook. Values are masked to the 6-bit
    /// hardware width.
    pub fn set_counters(&mut self, sm: u8, warp_slot: u8, counters: FenceCounters) {
        let idx = self.index(sm, warp_slot);
        self.entries[idx] = FenceCounters {
            blk: counters.blk & FENCE_MASK,
            dev: counters.dev & FENCE_MASK,
        };
    }

    /// Zeroes every entry.
    pub fn reset(&mut self) {
        self.entries.fill(FenceCounters::default());
    }

    /// Hardware state size in bits (for the §IV-C overhead accounting).
    #[must_use]
    pub fn state_bits(&self) -> usize {
        self.entries.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_isa::Scope;

    #[test]
    fn counters_start_zero_and_advance_by_scope() {
        let mut f = FenceFile::new(Geometry::paper_default());
        assert_eq!(f.counters(3, 7), FenceCounters { blk: 0, dev: 0 });
        f.on_fence(3, 7, Scope::Block);
        assert_eq!(f.counters(3, 7), FenceCounters { blk: 1, dev: 0 });
        f.on_fence(3, 7, Scope::Device);
        assert_eq!(
            f.counters(3, 7),
            FenceCounters { blk: 2, dev: 1 },
            "device fence bumps both counters"
        );
        assert_eq!(
            f.counters(3, 8),
            FenceCounters::default(),
            "other warps unaffected"
        );
    }

    #[test]
    fn counters_wrap_at_six_bits() {
        let mut f = FenceFile::new(Geometry::paper_default());
        for _ in 0..64 {
            f.on_fence(0, 0, Scope::Block);
        }
        assert_eq!(
            f.counters(0, 0).blk,
            0,
            "64 fences wrap a 6-bit counter — the paper's theoretical false-positive source"
        );
    }

    #[test]
    fn state_size_matches_paper() {
        let f = FenceFile::new(Geometry::paper_default());
        assert_eq!(f.state_bits(), 480 * 12);
        assert_eq!(f.state_bits() / 8, 720, "720 bytes per §IV-C");
    }

    #[test]
    fn set_counters_masks_to_six_bits() {
        let mut f = FenceFile::new(Geometry::paper_default());
        f.set_counters(
            2,
            3,
            FenceCounters {
                blk: 0xFF,
                dev: 0x41,
            },
        );
        assert_eq!(
            f.counters(2, 3),
            FenceCounters {
                blk: 0x3F,
                dev: 0x01
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let mut f = FenceFile::new(Geometry::paper_default());
        f.on_fence(1, 1, Scope::Device);
        f.reset();
        assert_eq!(f.counters(1, 1), FenceCounters::default());
    }
}
