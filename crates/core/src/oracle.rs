//! A precise, scope-aware happens-before reference detector.
//!
//! ScoRD is deliberately lossy hardware: 16-bit lock blooms collide, 6-bit
//! fence counters wrap, the metadata word remembers only the *last* accessor,
//! and hardware slot ids alias when blocks are redispatched. Measuring those
//! losses (paper §V-D) needs an **exact** detector over the same event
//! stream. This module provides one: [`OracleDetector`] replays a
//! [`crate::Trace`] with per-thread vector clocks, scoped release/acquire
//! edges, exact lock sets and full per-address access history — no blooms,
//! no slot truncation, no single-owner overwrites.
//!
//! ## The oracle's ordering model
//!
//! A *thread* is one incarnation of a hardware warp slot: a
//! [`TraceEvent::WarpAssigned`](crate::TraceEvent) event retires the slot's
//! previous thread and starts a fresh one (this is what makes slot-reuse
//! aliasing visible as a divergence). Two conflicting accesses `X` (earlier)
//! and `Y` (later, in trace order) are **ordered** iff one of:
//!
//! 1. **program order** — same thread (same slot *and* same incarnation);
//! 2. **barrier order** — `X`'s clock is covered by `Y`'s thread's
//!    barrier-derived vector clock (`__syncthreads` joins every thread of the
//!    block; a kernel boundary resets all history device-wide);
//! 3. **scoped-fence order** — both `X` and `Y` are strong (volatile or
//!    atomic) and `X`'s clock is covered by `Y`'s thread's fence-derived
//!    vector clock. A fence by thread `t` at block scope *releases* `t`'s
//!    clock into its block's channel; at device scope into the device
//!    channel. Every **strong** access *acquires* the device channel plus
//!    its own block's channel. Block-scoped syncs therefore order only
//!    same-block threads while device-scoped syncs order all — and ordering
//!    is transitive through chains of fences, which ScoRD's pairwise
//!    counter check cannot see;
//! 4. **adequately-scoped atomic** — `X` is an atomic whose scope covers
//!    `Y`'s block (device scope, or block scope with `Y` in the same block)
//!    and `Y` is strong: atomics take effect at the scope's point of
//!    coherence, so no fence is needed for the *same-location* pair.
//!
//! Weak (non-volatile) accesses never participate in fence edges — the
//! compiler and write path are free to move them across fences — so a weak
//! access conflicting across threads races unless barrier-ordered, exactly
//! as the paper's Table IV (c) intends.
//!
//! ## Race checks
//!
//! Per access `Y` on address `a` the oracle checks, pairwise and exactly:
//!
//! * `Y` against the last write to `a` (loads and writes both);
//! * a write `Y` against **every** read of `a` since that write (ScoRD only
//!   remembers the last one — the single-owner metadata word);
//! * the scoped-lockset rule on the *last* accessor `Z` of `a`, mirroring
//!   Table IV (e)/(f) with exact `(lock address, scope)` sets: if neither
//!   side is an atomic, the pair is not program/barrier ordered, the two
//!   lock sets are jointly non-empty but disjoint, and the pair conflicts
//!   (`Y` store, or `Z` wrote), the access is reported. Lock sets come from
//!   exact CAS+fence / fence+EXCH inference with unbounded tables.
//!
//! The lock-inference side effects mirror [`crate::LockTable`] without the
//! capacity limit: `atomicCAS` registers a pending acquire, a fence of
//! matching-or-wider scope activates it, `atomicExch` releases it.

use std::collections::HashMap;

use scord_isa::Scope;

use crate::{
    AccessEffects, AccessKind, Accessor, AtomKind, Detector, DetectorError, Geometry, MemAccess,
    RaceKind, RaceLog, RaceReport,
};

/// A growable vector clock indexed by oracle thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The clock component for `thread` (0 when never joined).
    #[must_use]
    pub fn get(&self, thread: usize) -> u32 {
        self.0.get(thread).copied().unwrap_or(0)
    }

    /// Sets `thread`'s component to `value` (grows as needed).
    pub fn set(&mut self, thread: usize, value: u32) {
        if self.0.len() <= thread {
            self.0.resize(thread + 1, 0);
        }
        self.0[thread] = value;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(*o);
        }
    }
}

/// Why the oracle considers a pair of accesses ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderReason {
    /// Same thread (same hardware slot and incarnation).
    ProgramOrder,
    /// Barrier / kernel-boundary vector clock covers the earlier access.
    Barrier,
    /// Scoped-fence vector clock covers the earlier access (both strong).
    Fence,
    /// The earlier access is an atomic whose scope covers the later one.
    AtomicScope,
}

/// One access as the oracle recorded it.
///
/// The `sync`/`hb` snapshots are the accessing thread's vector clocks *at
/// this access* (after channel acquisition), so
/// [`OracleDetector::ordered_pair`] can re-derive any ordering decision
/// post-hoc — divergence classifiers rely on this.
#[derive(Debug, Clone)]
pub struct OracleAccess {
    /// Index of the driving event within the replayed stream.
    pub event: usize,
    /// Kernel epoch (incremented by each kernel boundary).
    pub epoch: usize,
    /// Oracle thread id (warp-slot incarnation).
    pub thread: usize,
    /// The thread's clock at this access.
    pub clock: u32,
    /// The underlying access.
    pub access: MemAccess,
    /// Effective strength (volatile or atomic).
    pub strong: bool,
    /// Exact `(lock address, scope)` pairs held (active) at access time.
    pub locks: Vec<(u64, Scope)>,
    /// Barrier-derived vector clock at access time.
    pub sync: VectorClock,
    /// Fence-derived vector clock at access time.
    pub hb: VectorClock,
}

/// One exact race: a later access conflicting with an earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleRace {
    /// Classification, using the same vocabulary as ScoRD's reports.
    pub kind: RaceKind,
    /// Index into [`OracleDetector::accesses`] of the later access.
    pub later: usize,
    /// Index into [`OracleDetector::accesses`] of the earlier access.
    pub earlier: usize,
}

#[derive(Debug, Clone)]
struct Thread {
    /// Global block slot the thread is currently mapped to (learned from
    /// its accesses; `None` until the first one).
    block: Option<u8>,
    clock: u32,
    /// Barrier/kernel-boundary-derived clock (orders any strength).
    sync: VectorClock,
    /// Fence-derived clock (superset of `sync`; orders strong pairs only).
    hb: VectorClock,
    /// Exact active locks: acquired via CAS + fence, not yet released.
    held: Vec<(u64, Scope)>,
    /// CAS'd lock candidates not yet activated by a fence.
    pending: Vec<(u64, Scope)>,
}

impl Thread {
    fn new() -> Self {
        Thread {
            block: None,
            clock: 0,
            sync: VectorClock::default(),
            hb: VectorClock::default(),
            held: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn bump(&mut self, id: usize) {
        self.clock += 1;
        self.sync.set(id, self.clock);
        self.hb.set(id, self.clock);
    }
}

#[derive(Debug, Clone, Default)]
struct AddrState {
    /// Index of the last write access (into `accesses`).
    last_write: Option<usize>,
    /// Every read since the last write.
    readers: Vec<usize>,
    /// The most recent access of any kind — the lockset partner, mirroring
    /// what ScoRD's single metadata word would describe.
    last_access: Option<usize>,
}

/// The exact reference detector. See the module docs for the model.
///
/// Drive it through the [`Detector`] trait (e.g. with
/// [`crate::Trace::replay`]); then read [`races`](Detector::races) for
/// ScoRD-shaped reports or [`detailed_races`](OracleDetector::detailed_races)
/// / [`accesses`](OracleDetector::accesses) for the exact pairs.
#[derive(Debug)]
pub struct OracleDetector {
    geometry: Geometry,
    threads: Vec<Thread>,
    /// Current incarnation per hardware slot `(sm, warp_slot)`.
    slots: HashMap<(u8, u8), usize>,
    /// Per-block-slot release channels.
    block_channel: HashMap<u8, VectorClock>,
    /// Device-wide release channel.
    device_channel: VectorClock,
    /// Per-block barrier legacy: the joined (sync, hb) clocks of the
    /// block's latest barrier. Every thread of a block participates in its
    /// `__syncthreads`, including warps that have not issued a memory
    /// access yet — such a warp inherits the legacy when it first maps
    /// into the block, instead of spuriously racing with pre-barrier
    /// accesses (which ScoRD correctly treats as barrier-separated).
    block_legacy: HashMap<u8, (VectorClock, VectorClock)>,
    addrs: HashMap<u64, AddrState>,
    accesses: Vec<OracleAccess>,
    detailed: Vec<OracleRace>,
    races: RaceLog,
    /// Events consumed so far (indexes the driving stream).
    events_seen: usize,
    /// Kernel epoch (bumped by each kernel boundary).
    epoch: usize,
}

impl OracleDetector {
    /// Creates an oracle for `geometry`.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        OracleDetector {
            geometry,
            threads: Vec::new(),
            slots: HashMap::new(),
            block_channel: HashMap::new(),
            device_channel: VectorClock::default(),
            block_legacy: HashMap::new(),
            addrs: HashMap::new(),
            accesses: Vec::new(),
            detailed: Vec::new(),
            races: RaceLog::new(usize::MAX),
            events_seen: 0,
            epoch: 0,
        }
    }

    /// Re-derives the ordering verdict for two recorded accesses, using
    /// the vector-clock snapshots taken at `y`'s access time. `x` must
    /// precede `y` in stream order. Accesses from different kernel epochs
    /// are always ordered (a kernel boundary is a device-wide sync).
    #[must_use]
    pub fn ordered_pair(x: &OracleAccess, y: &OracleAccess) -> Option<OrderReason> {
        if x.epoch != y.epoch {
            return Some(OrderReason::Barrier);
        }
        if x.thread == y.thread {
            return Some(OrderReason::ProgramOrder);
        }
        if x.clock <= y.sync.get(x.thread) {
            return Some(OrderReason::Barrier);
        }
        if let AccessKind::Atomic { scope, .. } = x.access.kind {
            let covered =
                scope == Scope::Device || x.access.who.block_slot == y.access.who.block_slot;
            return if covered && y.strong {
                Some(OrderReason::AtomicScope)
            } else {
                None
            };
        }
        if x.strong && y.strong && x.clock <= y.hb.get(x.thread) {
            return Some(OrderReason::Fence);
        }
        None
    }

    /// Every access consumed, in stream order.
    #[must_use]
    pub fn accesses(&self) -> &[OracleAccess] {
        &self.accesses
    }

    /// Every exact race found, with both pair members resolved.
    #[must_use]
    pub fn detailed_races(&self) -> &[OracleRace] {
        &self.detailed
    }

    /// Number of events consumed.
    #[must_use]
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    fn thread_for(&mut self, sm: u8, warp_slot: u8) -> usize {
        if let Some(&id) = self.slots.get(&(sm, warp_slot)) {
            return id;
        }
        let id = self.threads.len();
        self.threads.push(Thread::new());
        self.slots.insert((sm, warp_slot), id);
        id
    }

    fn validate_warp(&self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        let g = &self.geometry;
        if u32::from(sm) >= g.num_sms {
            return Err(DetectorError::SmOutOfRange {
                sm,
                num_sms: g.num_sms,
            });
        }
        if u32::from(warp_slot) >= g.warps_per_sm {
            return Err(DetectorError::WarpOutOfRange {
                warp_slot,
                warps_per_sm: g.warps_per_sm,
            });
        }
        Ok(())
    }

    fn validate_accessor(&self, who: Accessor) -> Result<(), DetectorError> {
        self.validate_warp(who.sm, who.warp_slot)?;
        let g = &self.geometry;
        if u32::from(who.block_slot) >= g.total_block_slots() {
            return Err(DetectorError::BlockOutOfRange {
                block_slot: who.block_slot,
                total_block_slots: g.total_block_slots(),
            });
        }
        if u32::from(who.block_slot) / g.blocks_per_sm != u32::from(who.sm) {
            return Err(DetectorError::AccessorInconsistent {
                who,
                blocks_per_sm: g.blocks_per_sm,
            });
        }
        Ok(())
    }

    /// Whether (and why) recorded access `x` is ordered before an access by
    /// `thread` with effective strength `y_strong` in block `y_block`.
    fn ordered(&self, x: &OracleAccess, thread: usize, y_strong: bool) -> Option<OrderReason> {
        if x.thread == thread {
            return Some(OrderReason::ProgramOrder);
        }
        let t = &self.threads[thread];
        if x.clock <= t.sync.get(x.thread) {
            return Some(OrderReason::Barrier);
        }
        if let AccessKind::Atomic { scope, .. } = x.access.kind {
            // Atomics order at their scope's point of coherence: adequately
            // scoped, the same-location pair needs no fence; inadequately
            // scoped, the update is invisible outside the block *whatever
            // follows it* (Table IV (d)) — fences do not repair it.
            let y_block = t.block.unwrap_or(u8::MAX);
            let covered = scope == Scope::Device || x.access.who.block_slot == y_block;
            return if covered && y_strong {
                Some(OrderReason::AtomicScope)
            } else {
                None
            };
        }
        if x.strong && y_strong && x.clock <= t.hb.get(x.thread) {
            return Some(OrderReason::Fence);
        }
        None
    }

    /// The race kind for an unordered conflicting pair.
    fn race_kind(x: &OracleAccess, y: &MemAccess, y_strong: bool) -> RaceKind {
        if let AccessKind::Atomic { scope, .. } = x.access.kind {
            if scope == Scope::Block && x.access.who.block_slot != y.who.block_slot {
                return RaceKind::ScopedAtomic;
            }
        }
        if !(x.strong && y_strong) {
            return RaceKind::NotStrong;
        }
        if x.access.who.block_slot == y.who.block_slot {
            RaceKind::MissingBlockFence
        } else {
            RaceKind::MissingDeviceFence
        }
    }

    fn report(&mut self, kind: RaceKind, earlier: usize, later: usize) {
        self.detailed.push(OracleRace {
            kind,
            later,
            earlier,
        });
        let x = &self.accesses[earlier];
        let y = &self.accesses[later];
        self.races.record(RaceReport {
            kind,
            pc: y.access.pc,
            addr: y.access.addr,
            who: y.access.who,
            prev_block: x.access.who.block_slot,
            prev_warp: x.access.who.warp_slot,
            conflict_scope: if x.access.who.block_slot == y.access.who.block_slot {
                Scope::Block
            } else {
                Scope::Device
            },
        });
    }
}

impl Detector for OracleDetector {
    fn on_barrier(&mut self, sm: u8, block_slot: u8) -> Result<(), DetectorError> {
        self.events_seen += 1;
        let g = &self.geometry;
        if u32::from(sm) >= g.num_sms {
            return Err(DetectorError::SmOutOfRange {
                sm,
                num_sms: g.num_sms,
            });
        }
        if u32::from(block_slot) >= g.total_block_slots() {
            return Err(DetectorError::BlockOutOfRange {
                block_slot,
                total_block_slots: g.total_block_slots(),
            });
        }
        // Join the barrier participants: every live thread currently mapped
        // to this block sees every other participant's history, for both the
        // sync and the fence relation.
        let participants: Vec<usize> = self
            .slots
            .values()
            .copied()
            .filter(|&id| self.threads[id].block == Some(block_slot))
            .collect();
        // Start from the block's previous legacy so warps that join the
        // block later (first access still to come) inherit the full
        // barrier history, not just this round's participants.
        let (mut sync, mut hb) = self.block_legacy.remove(&block_slot).unwrap_or_default();
        for &id in &participants {
            sync.join(&self.threads[id].sync);
            hb.join(&self.threads[id].hb);
        }
        for &id in &participants {
            self.threads[id].sync = sync.clone();
            self.threads[id].hb.join(&hb);
        }
        self.block_legacy.insert(block_slot, (sync, hb));
        Ok(())
    }

    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) -> Result<(), DetectorError> {
        self.events_seen += 1;
        self.validate_warp(sm, warp_slot)?;
        let id = self.thread_for(sm, warp_slot);
        // Activate pending lock acquires of matching-or-lesser scope,
        // mirroring LockTable::on_fence without the capacity limit.
        let Thread { held, pending, .. } = &mut self.threads[id];
        pending.retain(|&(addr, s)| {
            if scope.includes(s) {
                if !held.contains(&(addr, s)) {
                    held.push((addr, s));
                }
                false
            } else {
                true
            }
        });
        // Release this thread's history into the scope's channel.
        let hb = self.threads[id].hb.clone();
        match scope {
            Scope::Block => {
                if let Some(block) = self.threads[id].block {
                    self.block_channel.entry(block).or_default().join(&hb);
                }
            }
            Scope::Device => self.device_channel.join(&hb),
        }
        Ok(())
    }

    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        self.events_seen += 1;
        self.validate_warp(sm, warp_slot)?;
        // A fresh incarnation: a brand-new thread with empty history. The
        // old incarnation's accesses stay in the address states and can now
        // race with the new thread's.
        let id = self.threads.len();
        self.threads.push(Thread::new());
        self.slots.insert((sm, warp_slot), id);
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn on_access(&mut self, access: &MemAccess) -> Result<AccessEffects, DetectorError> {
        let event = self.events_seen;
        self.events_seen += 1;
        self.validate_accessor(access.who)?;
        if !access.addr.is_multiple_of(4) {
            return Err(DetectorError::MisalignedAddress { addr: access.addr });
        }
        let who = access.who;
        let id = self.thread_for(who.sm, who.warp_slot);
        if self.threads[id].block != Some(who.block_slot) {
            // First access in this block: the thread was part of the block
            // since dispatch, so it inherits the block's barrier legacy.
            self.threads[id].block = Some(who.block_slot);
            if let Some((sync, hb)) = self.block_legacy.get(&who.block_slot) {
                let (sync, hb) = (sync.clone(), hb.clone());
                self.threads[id].sync.join(&sync);
                self.threads[id].hb.join(&hb);
            }
        }
        self.threads[id].bump(id);
        let strong = access.effective_strong();
        if strong {
            // Acquire: the device channel plus the own block's channel.
            let dev = self.device_channel.clone();
            self.threads[id].hb.join(&dev);
            if let Some(ch) = self.block_channel.get(&who.block_slot) {
                let ch = ch.clone();
                self.threads[id].hb.join(&ch);
            }
        }

        let record = OracleAccess {
            event,
            epoch: self.epoch,
            thread: id,
            clock: self.threads[id].clock,
            access: *access,
            strong,
            locks: self.threads[id].held.clone(),
            sync: self.threads[id].sync.clone(),
            hb: self.threads[id].hb.clone(),
        };
        let y_idx = self.accesses.len();
        self.accesses.push(record);

        let is_write = access.kind.is_write();
        let is_atomic = access.kind.is_atomic();
        let state = self.addrs.entry(access.addr).or_default().clone();

        let mut found: Vec<(RaceKind, usize)> = Vec::new();
        // Happens-before family: Y against the last write, and a write Y
        // against every read since that write.
        let mut hb_partners: Vec<usize> = Vec::new();
        if let Some(w) = state.last_write {
            hb_partners.push(w);
        }
        if is_write {
            hb_partners.extend(state.readers.iter().copied());
        }
        for x_idx in hb_partners {
            let x = self.accesses[x_idx].clone();
            if self.ordered(&x, id, strong).is_none() {
                found.push((Self::race_kind(&x, access, strong), x_idx));
            }
        }

        // Scoped-lockset family, on the exact last accessor (Table IV e/f).
        if let Some(z_idx) = state.last_access {
            let z = self.accesses[z_idx].clone();
            let z_write = z.access.kind.is_write();
            let conflicting = is_write || z_write;
            if conflicting && !is_atomic && !z.access.kind.is_atomic() {
                let y_locks = &self.accesses[y_idx].locks;
                let joint_nonempty = !z.locks.is_empty() || !y_locks.is_empty();
                let disjoint = !z.locks.iter().any(|l| y_locks.contains(l));
                let sync_ordered = matches!(
                    self.ordered(&z, id, strong),
                    Some(OrderReason::ProgramOrder | OrderReason::Barrier)
                );
                if joint_nonempty && disjoint && !sync_ordered {
                    let kind = if is_write {
                        RaceKind::MissingLockStore
                    } else {
                        RaceKind::MissingLockLoad
                    };
                    found.push((kind, z_idx));
                }
            }
        }

        let races = found.len().min(u8::MAX as usize) as u8;
        for (kind, earlier) in found {
            self.report(kind, earlier, y_idx);
        }

        // Lock inference side effects.
        if let AccessKind::Atomic { kind, scope } = access.kind {
            let t = &mut self.threads[id];
            match kind {
                AtomKind::Cas => {
                    if !t.pending.contains(&(access.addr, scope)) {
                        t.pending.push((access.addr, scope));
                    }
                }
                AtomKind::Exch => {
                    t.held.retain(|&l| l != (access.addr, scope));
                    t.pending.retain(|&l| l != (access.addr, scope));
                }
                AtomKind::Other => {}
            }
        }

        // Address-state update.
        let state = self.addrs.get_mut(&access.addr).expect("entry created");
        let fresh = state.last_access.is_none();
        if is_write {
            state.last_write = Some(y_idx);
            state.readers.clear();
        } else {
            state.readers.push(y_idx);
        }
        state.last_access = Some(y_idx);

        Ok(AccessEffects {
            md_addr: 0,
            md_fresh: fresh,
            prelim_pass: races == 0,
            races,
        })
    }

    fn races(&self) -> &RaceLog {
        &self.races
    }

    fn reset(&mut self) {
        self.threads.clear();
        self.slots.clear();
        self.block_channel.clear();
        self.device_channel = VectorClock::default();
        self.block_legacy.clear();
        self.addrs.clear();
        self.accesses.clear();
        self.detailed.clear();
        self.races.reset();
        self.events_seen = 0;
        self.epoch = 0;
    }

    fn on_kernel_boundary(&mut self) {
        self.events_seen += 1;
        self.epoch += 1;
        // A device-wide synchronization: no pair spans the boundary, so all
        // per-address and per-thread history is dropped. The race log (and
        // the recorded accesses, for divergence classification) survive.
        self.threads.clear();
        self.slots.clear();
        self.block_channel.clear();
        self.device_channel = VectorClock::default();
        self.block_legacy.clear();
        self.addrs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(block: u8, warp: u8) -> Accessor {
        Accessor {
            sm: block / 8,
            block_slot: block,
            warp_slot: warp,
        }
    }

    fn mem(kind: AccessKind, addr: u64, strong: bool, pc: u32, who: Accessor) -> MemAccess {
        MemAccess {
            kind,
            addr,
            strong,
            pc,
            who,
        }
    }

    fn oracle() -> OracleDetector {
        OracleDetector::new(Geometry::paper_default())
    }

    #[test]
    fn unsynchronized_cross_block_sharing_races() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(8, 0)))
            .unwrap();
        assert_eq!(o.races().unique_count(), 1);
        assert_eq!(o.detailed_races()[0].kind, RaceKind::MissingDeviceFence);
    }

    #[test]
    fn device_fence_orders_strong_publication() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Device).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(8, 0)))
            .unwrap();
        assert!(o.races().is_empty(), "{:?}", o.detailed_races());
    }

    #[test]
    fn block_fence_is_a_scoped_race_cross_block_but_orders_same_block() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Block).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(0, 1)))
            .unwrap();
        assert!(o.races().is_empty(), "same-block consumer is ordered");
        o.on_access(&mem(AccessKind::Store, 0x200, true, 3, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Block).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x200, true, 4, acc(8, 0)))
            .unwrap();
        assert_eq!(
            o.races().unique_count(),
            1,
            "cross-block consumer races: the fence's scope was too narrow"
        );
    }

    #[test]
    fn weak_accesses_do_not_ride_fences() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, false, 1, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Device).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(8, 0)))
            .unwrap();
        assert_eq!(o.races().unique_count(), 1);
        assert_eq!(o.detailed_races()[0].kind, RaceKind::NotStrong);
    }

    #[test]
    fn barrier_orders_weak_same_block_accesses() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, false, 1, acc(0, 0)))
            .unwrap();
        o.on_access(&mem(AccessKind::Load, 0x40, false, 9, acc(0, 1)))
            .unwrap(); // maps warp 1 into block 0
        o.on_barrier(0, 0).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, false, 2, acc(0, 1)))
            .unwrap();
        assert!(o.races().is_empty(), "{:?}", o.detailed_races());
    }

    #[test]
    fn block_scoped_atomic_is_invisible_cross_block() {
        let mut o = oracle();
        let blk = AccessKind::Atomic {
            kind: AtomKind::Other,
            scope: Scope::Block,
        };
        o.on_access(&mem(blk, 0x40, true, 1, acc(0, 0))).unwrap();
        o.on_access(&mem(blk, 0x40, true, 2, acc(8, 0))).unwrap();
        assert_eq!(o.races().unique_count(), 1);
        assert_eq!(o.detailed_races()[0].kind, RaceKind::ScopedAtomic);
    }

    #[test]
    fn device_scoped_atomics_are_ordered_without_fences() {
        let mut o = oracle();
        let dev = AccessKind::Atomic {
            kind: AtomKind::Other,
            scope: Scope::Device,
        };
        o.on_access(&mem(dev, 0x40, true, 1, acc(0, 0))).unwrap();
        o.on_access(&mem(dev, 0x40, true, 2, acc(8, 0))).unwrap();
        assert!(o.races().is_empty());
    }

    #[test]
    fn fence_plus_exch_publishes_transitively_through_atomic_poll() {
        // The message-passing idiom: producer stores, device-fences, raises
        // a flag with atomicExch; the consumer polls the flag atomically and
        // then reads the data. The data pair is ordered through the chain.
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Device).unwrap();
        let exch = AccessKind::Atomic {
            kind: AtomKind::Exch,
            scope: Scope::Device,
        };
        o.on_access(&mem(exch, 0x200, true, 2, acc(0, 0))).unwrap();
        let poll = AccessKind::Atomic {
            kind: AtomKind::Other,
            scope: Scope::Device,
        };
        o.on_access(&mem(poll, 0x200, true, 3, acc(8, 0))).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 4, acc(8, 0)))
            .unwrap();
        assert!(o.races().is_empty(), "{:?}", o.detailed_races());
    }

    #[test]
    fn write_checks_every_reader_not_just_the_last() {
        // Reader 1 never synchronizes; reader 2 is fence-ordered. ScoRD's
        // single metadata word would only remember reader 2 and miss the
        // race with reader 1.
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(8, 0)))
            .unwrap();
        o.on_fence(1, 0, Scope::Device).unwrap();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 3, acc(16, 0)))
            .unwrap();
        let kinds: Vec<RaceKind> = o.detailed_races().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![RaceKind::MissingDeviceFence],
            "exactly the unsynchronized reader races"
        );
        let race = o.detailed_races()[0];
        assert_eq!(o.accesses()[race.earlier].access.pc, 1);
    }

    #[test]
    fn exact_lockset_flags_unlocked_writer() {
        let mut o = oracle();
        let cas = AccessKind::Atomic {
            kind: AtomKind::Cas,
            scope: Scope::Device,
        };
        let exch = AccessKind::Atomic {
            kind: AtomKind::Exch,
            scope: Scope::Device,
        };
        // Warp 0 takes the lock, writes, releases.
        o.on_access(&mem(cas, 0x1000, true, 1, acc(0, 0))).unwrap();
        o.on_fence(0, 0, Scope::Device).unwrap();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 2, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Device).unwrap();
        o.on_access(&mem(exch, 0x1000, true, 3, acc(0, 0))).unwrap();
        // Warp on another SM writes without the lock.
        o.on_access(&mem(AccessKind::Store, 0x100, true, 4, acc(8, 0)))
            .unwrap();
        let kinds: Vec<RaceKind> = o.detailed_races().iter().map(|r| r.kind).collect();
        assert!(
            kinds.contains(&RaceKind::MissingLockStore),
            "unlocked conflicting writer is a lockset race: {kinds:?}"
        );
    }

    #[test]
    fn common_exact_lock_suppresses_lockset_race() {
        let mut o = oracle();
        let cas = AccessKind::Atomic {
            kind: AtomKind::Cas,
            scope: Scope::Device,
        };
        let exch = AccessKind::Atomic {
            kind: AtomKind::Exch,
            scope: Scope::Device,
        };
        for (block, pc) in [(0u8, 1u32), (8, 10)] {
            o.on_access(&mem(cas, 0x1000, true, pc, acc(block, 0)))
                .unwrap();
            o.on_fence(block / 8, 0, Scope::Device).unwrap();
            o.on_access(&mem(AccessKind::Store, 0x100, true, pc + 1, acc(block, 0)))
                .unwrap();
            o.on_fence(block / 8, 0, Scope::Device).unwrap();
            o.on_access(&mem(exch, 0x1000, true, pc + 2, acc(block, 0)))
                .unwrap();
        }
        assert!(
            o.races().is_empty(),
            "lock-protected critical sections: {:?}",
            o.detailed_races()
        );
    }

    #[test]
    fn warp_reassignment_starts_a_fresh_thread() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_warp_assigned(0, 0).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(0, 0)))
            .unwrap();
        assert_eq!(
            o.races().unique_count(),
            1,
            "slot reuse is not program order for the oracle"
        );
    }

    #[test]
    fn kernel_boundary_separates_everything() {
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, false, 1, acc(0, 0)))
            .unwrap();
        o.on_kernel_boundary();
        o.on_access(&mem(AccessKind::Load, 0x100, false, 2, acc(8, 0)))
            .unwrap();
        assert!(o.races().is_empty());
    }

    #[test]
    fn transitive_fence_chain_orders_cross_block() {
        // w(0,0) stores, block-fences; w(0,1) (same block) strong-loads the
        // data (acquiring), then device-fences; w(8,0) strong-loads. The
        // chain orders the original store with the far reader — something
        // ScoRD's pairwise counter check cannot represent.
        let mut o = oracle();
        o.on_access(&mem(AccessKind::Store, 0x100, true, 1, acc(0, 0)))
            .unwrap();
        o.on_fence(0, 0, Scope::Block).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 2, acc(0, 1)))
            .unwrap();
        o.on_fence(0, 1, Scope::Device).unwrap();
        o.on_access(&mem(AccessKind::Load, 0x100, true, 3, acc(8, 0)))
            .unwrap();
        assert!(o.races().is_empty(), "{:?}", o.detailed_races());
    }

    #[test]
    fn geometry_violations_are_typed_errors() {
        let mut o = oracle();
        assert!(o.on_fence(99, 0, Scope::Device).is_err());
        assert!(o.on_barrier(0, 255).is_err());
        assert!(o
            .on_access(&mem(AccessKind::Load, 0x101, true, 1, acc(0, 0)))
            .is_err());
        assert!(o
            .on_access(&mem(
                AccessKind::Load,
                0x100,
                true,
                1,
                Accessor {
                    sm: 0,
                    block_slot: 9,
                    warp_slot: 0
                }
            ))
            .is_err());
    }
}
