//! Compact binary trace encoding for streaming ingest.
//!
//! The text format of [`crate::Trace`] is convenient for diffs and
//! minimized reproducers but is the bottleneck at service scale: parsing
//! dominates replay once traces stream over a socket. This module defines
//! the wire form the `scord-serve` server speaks — a versioned stream
//! header followed by length-prefixed, CRC-checksummed frames whose
//! payloads are packed-word event encodings:
//!
//! ```text
//! stream  := header frame*
//! header  := magic "SCRD" | version u16 LE | reserved u16 LE
//! frame   := payload_len u32 LE | frame_type u8 | payload | crc32 u32 LE
//! ```
//!
//! The CRC covers the frame-type byte and the payload, so a flipped bit
//! anywhere in a frame body is caught before any payload is interpreted;
//! a corrupted length prefix surfaces as [`WireError::FrameTooLarge`] or a
//! CRC mismatch on the misframed bytes. Every decode failure is a typed
//! [`WireError`] — malformed input can quarantine a connection but never
//! panic a process.
//!
//! Events pack into little-endian 64-bit words (the packed-word idiom):
//! loads, stores and atomics take two words (descriptor + address), all
//! other events one. Reserved bits must decode as zero, which both keeps
//! the encoding canonical (binary ↔ struct ↔ text round-trips are exact)
//! and catches corruption that slips past framing in tests that bypass
//! the CRC.

use std::fmt;

use scord_isa::Scope;

use crate::fault::{FaultInjector, FaultKind};
use crate::{AccessKind, Accessor, AtomKind, MemAccess, Trace, TraceEvent};

/// Stream magic: the first four bytes of every trace stream.
pub const MAGIC: [u8; 4] = *b"SCRD";
/// Wire-format version this build encodes and accepts.
pub const VERSION: u16 = 1;
/// Bytes in the stream header (magic + version + reserved).
pub const HEADER_BYTES: usize = 8;
/// Bytes of frame overhead (length prefix + type byte + CRC).
pub const FRAME_OVERHEAD: usize = 9;
/// Default ceiling on a single frame's payload, enforced before any
/// allocation so a corrupted (or hostile) length prefix cannot balloon
/// memory.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Frame types carried over the wire. Client-to-server types sit below
/// 0x80, server-to-client types at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Client → server: a batch of packed trace events.
    Events,
    /// Client → server: end of stream; requests the final report.
    Finish,
    /// Client → server (session protocol): a batch of packed trace events
    /// for one stream of a persistent session; the payload starts with a
    /// little-endian `u32` stream id.
    StreamEvents,
    /// Client → server (session protocol): end of one stream; the payload
    /// is the little-endian `u32` stream id. The connection stays open for
    /// further streams.
    StreamFinish,
    /// Server → client: incremental race report.
    Report,
    /// Server → client: final summary (possibly partial, on drain).
    Done,
    /// Server → client: typed protocol error; the connection is being
    /// closed.
    Error,
    /// Server → client: over the overload watermark; try again later.
    Busy,
    /// Server → client (session protocol): incremental race report for one
    /// stream; the payload starts with the `u32` stream id.
    StreamReport,
    /// Server → client (session protocol): final summary for one stream;
    /// the payload starts with the `u32` stream id. The connection stays
    /// open.
    StreamDone,
}

impl FrameType {
    /// The on-wire tag byte.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            FrameType::Events => 0x01,
            FrameType::Finish => 0x02,
            FrameType::StreamEvents => 0x03,
            FrameType::StreamFinish => 0x04,
            FrameType::Report => 0x81,
            FrameType::Done => 0x82,
            FrameType::Error => 0x83,
            FrameType::Busy => 0x84,
            FrameType::StreamReport => 0x85,
            FrameType::StreamDone => 0x86,
        }
    }

    /// Decodes a tag byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadFrameType`] for unassigned tags.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0x01 => FrameType::Events,
            0x02 => FrameType::Finish,
            0x03 => FrameType::StreamEvents,
            0x04 => FrameType::StreamFinish,
            0x81 => FrameType::Report,
            0x82 => FrameType::Done,
            0x83 => FrameType::Error,
            0x84 => FrameType::Busy,
            0x85 => FrameType::StreamReport,
            0x86 => FrameType::StreamDone,
            other => return Err(WireError::BadFrameType { ftype: other }),
        })
    }
}

/// A decoding failure. Every variant names what was wrong; none of the
/// decode paths can panic on arbitrary bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually received.
        got: [u8; 4],
    },
    /// The stream's version is not [`VERSION`].
    UnsupportedVersion {
        /// The version actually received.
        got: u16,
    },
    /// A frame's length prefix exceeds the configured ceiling.
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
        /// The ceiling in force.
        max: u32,
    },
    /// The input ended mid-header or mid-frame.
    Truncated {
        /// Bytes needed to finish the pending item.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame body did not match its checksum.
    CrcMismatch {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received body.
        got: u32,
    },
    /// An unassigned frame-type tag.
    BadFrameType {
        /// The offending tag byte.
        ftype: u8,
    },
    /// An event payload failed to decode.
    BadEvent {
        /// 0-based word index within the payload.
        word: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(f, "bad stream magic {got:02x?} (expected {MAGIC:02x?})")
            }
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {VERSION})"
                )
            }
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte ceiling"
                )
            }
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            WireError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: frame says {expected:#010x}, body hashes to {got:#010x}"
                )
            }
            WireError::BadFrameType { ftype } => write!(f, "unknown frame type {ftype:#04x}"),
            WireError::BadEvent { word, reason } => {
                write!(f, "bad event encoding at payload word {word}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- CRC-32 (IEEE 802.3, reflected) --------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) over `bytes` — the per-frame checksum.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- packed event words --------------------------------------------------

const TAG_LOAD: u64 = 0;
const TAG_STORE: u64 = 1;
const TAG_ATOMIC: u64 = 2;
const TAG_FENCE: u64 = 3;
const TAG_BARRIER: u64 = 4;
const TAG_WARP: u64 = 5;
const TAG_KERNEL: u64 = 6;

const STRONG_BIT: u64 = 1 << 4;
const SCOPE_DEV_BIT: u64 = 1 << 7;

fn pack_slots(sm: u8, block_slot: u8, warp_slot: u8) -> u64 {
    (u64::from(sm) << 8) | (u64::from(block_slot) << 16) | (u64::from(warp_slot) << 24)
}

fn scope_bit(scope: Scope) -> u64 {
    match scope {
        Scope::Block => 0,
        Scope::Device => SCOPE_DEV_BIT,
    }
}

/// Packs one event into one or two little-endian words appended to `out`.
fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    let mut push = |w: u64| out.extend_from_slice(&w.to_le_bytes());
    match *ev {
        TraceEvent::Access(a) => {
            let (tag, bits) = match a.kind {
                AccessKind::Load => (TAG_LOAD, 0),
                AccessKind::Store => (TAG_STORE, 0),
                AccessKind::Atomic { kind, scope } => {
                    let k = match kind {
                        AtomKind::Cas => 0u64,
                        AtomKind::Exch => 1,
                        AtomKind::Other => 2,
                    };
                    (TAG_ATOMIC, (k << 5) | scope_bit(scope))
                }
            };
            let strong = if a.strong { STRONG_BIT } else { 0 };
            push(
                tag | strong
                    | bits
                    | pack_slots(a.who.sm, a.who.block_slot, a.who.warp_slot)
                    | (u64::from(a.pc) << 32),
            );
            push(a.addr);
        }
        TraceEvent::Fence {
            sm,
            warp_slot,
            scope,
        } => {
            push(
                TAG_FENCE | scope_bit(scope) | (u64::from(sm) << 8) | (u64::from(warp_slot) << 24),
            );
        }
        TraceEvent::Barrier { sm, block_slot } => {
            push(TAG_BARRIER | (u64::from(sm) << 8) | (u64::from(block_slot) << 16));
        }
        TraceEvent::WarpAssigned { sm, warp_slot } => {
            push(TAG_WARP | (u64::from(sm) << 8) | (u64::from(warp_slot) << 24));
        }
        TraceEvent::KernelBoundary => push(TAG_KERNEL),
    }
}

/// Encodes a batch of events as an `Events` frame payload.
#[must_use]
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 8);
    for ev in events {
        encode_event(ev, &mut out);
    }
    out
}

/// Fields that must be zero for the encoding to be canonical.
fn reserved(word: u64, mask: u64, at: usize) -> Result<(), WireError> {
    if word & mask != 0 {
        return Err(WireError::BadEvent {
            word: at,
            reason: "reserved bits set",
        });
    }
    Ok(())
}

/// Decodes an `Events` frame payload back into events.
///
/// # Errors
///
/// Returns a [`WireError::BadEvent`] naming the offending word for
/// unknown tags, set reserved bits, or an access descriptor missing its
/// address word; the payload length must be a multiple of 8.
pub fn decode_events(payload: &[u8]) -> Result<Vec<TraceEvent>, WireError> {
    if !payload.len().is_multiple_of(8) {
        return Err(WireError::BadEvent {
            word: payload.len() / 8,
            reason: "payload is not a whole number of 64-bit words",
        });
    }
    let words: Vec<u64> = payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    let mut events = Vec::with_capacity(words.len());
    let mut i = 0;
    while i < words.len() {
        let w = words[i];
        let tag = w & 0xF;
        let sm = ((w >> 8) & 0xFF) as u8;
        let block_slot = ((w >> 16) & 0xFF) as u8;
        let warp_slot = ((w >> 24) & 0xFF) as u8;
        let pc = (w >> 32) as u32;
        let ev = match tag {
            TAG_LOAD | TAG_STORE | TAG_ATOMIC => {
                let kind = match tag {
                    TAG_LOAD | TAG_STORE => {
                        reserved(w, 0b1110_0000, i)?;
                        if tag == TAG_LOAD {
                            AccessKind::Load
                        } else {
                            AccessKind::Store
                        }
                    }
                    _ => {
                        let atom = match (w >> 5) & 0b11 {
                            0 => AtomKind::Cas,
                            1 => AtomKind::Exch,
                            2 => AtomKind::Other,
                            _ => {
                                return Err(WireError::BadEvent {
                                    word: i,
                                    reason: "unassigned atomic kind",
                                })
                            }
                        };
                        let scope = if w & SCOPE_DEV_BIT != 0 {
                            Scope::Device
                        } else {
                            Scope::Block
                        };
                        AccessKind::Atomic { kind: atom, scope }
                    }
                };
                let Some(&addr) = words.get(i + 1) else {
                    return Err(WireError::BadEvent {
                        word: i,
                        reason: "access descriptor missing its address word",
                    });
                };
                i += 1;
                TraceEvent::Access(MemAccess {
                    kind,
                    addr,
                    strong: w & STRONG_BIT != 0,
                    pc,
                    who: Accessor {
                        sm,
                        block_slot,
                        warp_slot,
                    },
                })
            }
            TAG_FENCE => {
                reserved(w, 0xFFFF_FFFF_0000_0000 | (0xFF << 16) | 0x70, i)?;
                TraceEvent::Fence {
                    sm,
                    warp_slot,
                    scope: if w & SCOPE_DEV_BIT != 0 {
                        Scope::Device
                    } else {
                        Scope::Block
                    },
                }
            }
            TAG_BARRIER => {
                reserved(w, 0xFFFF_FFFF_0000_0000 | (0xFF << 24) | 0xF0, i)?;
                TraceEvent::Barrier { sm, block_slot }
            }
            TAG_WARP => {
                reserved(w, 0xFFFF_FFFF_0000_0000 | (0xFF << 16) | 0xF0, i)?;
                TraceEvent::WarpAssigned { sm, warp_slot }
            }
            TAG_KERNEL => {
                reserved(w, !0xF, i)?;
                TraceEvent::KernelBoundary
            }
            _ => {
                return Err(WireError::BadEvent {
                    word: i,
                    reason: "unknown event tag",
                })
            }
        };
        events.push(ev);
        i += 1;
    }
    Ok(events)
}

// ---- framing -------------------------------------------------------------

/// Appends the 8-byte stream header to `out`.
pub fn encode_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
}

/// Appends one framed payload (length prefix, type byte, payload, CRC) to
/// `out`.
pub fn encode_frame(ftype: FrameType, payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("frame payload fits u32")
            .to_le_bytes(),
    );
    out.push(ftype.code());
    out.extend_from_slice(payload);
    let mut body = Vec::with_capacity(payload.len() + 1);
    body.push(ftype.code());
    body.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's type tag.
    pub ftype: FrameType,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// Encodes `trace` as a complete client stream: header, `Events` frames of
/// at most `events_per_frame` events, and a `Finish` frame. Returns the
/// individual wire chunks (header first) so callers can corrupt, batch or
/// concatenate them as needed.
///
/// # Panics
///
/// Panics if `events_per_frame` is zero.
#[must_use]
pub fn trace_to_frames(trace: &Trace, events_per_frame: usize) -> Vec<Vec<u8>> {
    assert!(events_per_frame > 0, "events_per_frame must be positive");
    let mut chunks = Vec::new();
    let mut header = Vec::with_capacity(HEADER_BYTES);
    encode_header(&mut header);
    chunks.push(header);
    for batch in trace.events().chunks(events_per_frame) {
        let mut frame = Vec::new();
        encode_frame(FrameType::Events, &encode_events(batch), &mut frame);
        chunks.push(frame);
    }
    let mut fin = Vec::new();
    encode_frame(FrameType::Finish, &[], &mut fin);
    chunks.push(fin);
    chunks
}

/// Incremental frame decoder: feed it bytes as they arrive, pull verified
/// frames out. One assembler handles exactly one stream.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    consumed: usize,
    header_pending: bool,
    max_frame: u32,
}

impl FrameAssembler {
    /// An assembler for a stream that starts with the versioned header
    /// (client → server direction).
    #[must_use]
    pub fn new() -> Self {
        FrameAssembler {
            buf: Vec::new(),
            consumed: 0,
            header_pending: true,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// An assembler for a headerless stream (server → client responses).
    #[must_use]
    pub fn headerless() -> Self {
        FrameAssembler {
            header_pending: false,
            ..FrameAssembler::new()
        }
    }

    /// Overrides the per-frame payload ceiling.
    #[must_use]
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Appends freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived connection does not accrete its
        // whole history.
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    fn avail(&self) -> &[u8] {
        &self.buf[self.consumed..]
    }

    /// Tries to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the caller should treat the stream as
    /// unrecoverable afterwards (framing sync is lost).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.header_pending {
            let a = self.avail();
            if a.len() < HEADER_BYTES {
                return Ok(None);
            }
            let got: [u8; 4] = a[..4].try_into().expect("4 bytes");
            if got != MAGIC {
                return Err(WireError::BadMagic { got });
            }
            let version = u16::from_le_bytes(a[4..6].try_into().expect("2 bytes"));
            if version != VERSION {
                return Err(WireError::UnsupportedVersion { got: version });
            }
            self.consumed += HEADER_BYTES;
            self.header_pending = false;
        }
        let a = self.avail();
        if a.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(a[..4].try_into().expect("4 bytes"));
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        let total = 4 + 1 + len as usize + 4;
        if a.len() < total {
            return Ok(None);
        }
        let body = &a[4..4 + 1 + len as usize];
        let expected = u32::from_le_bytes(a[total - 4..total].try_into().expect("4 bytes"));
        let got = crc32(body);
        if got != expected {
            return Err(WireError::CrcMismatch { expected, got });
        }
        let ftype = FrameType::from_code(body[0])?;
        let payload = body[1..].to_vec();
        self.consumed += total;
        Ok(Some(Frame { ftype, payload }))
    }

    /// Declares the stream finished: any buffered partial frame is a
    /// truncation error.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        let pending = self.pending_bytes();
        if pending > 0 || self.header_pending {
            let need = if self.header_pending {
                HEADER_BYTES
            } else {
                let a = self.avail();
                if a.len() >= 4 {
                    let len = u32::from_le_bytes(a[..4].try_into().expect("4 bytes"));
                    4 + 1 + len as usize + 4
                } else {
                    5
                }
            };
            return Err(WireError::Truncated {
                need,
                have: pending,
            });
        }
        Ok(())
    }
}

impl Default for FrameAssembler {
    fn default() -> Self {
        FrameAssembler::new()
    }
}

// ---- transport-level fault injection -------------------------------------

/// Applies the transport [`FaultKind`]s to a sequence of encoded wire
/// chunks — the degradation-audit extension for the wire: frame
/// truncation, bit flips, whole-frame duplication and adjacent-frame
/// reordering, all driven by the same seeded [`FaultInjector`] discipline
/// as the detector-side faults.
#[derive(Debug)]
pub struct FrameCorruptor {
    injector: FaultInjector,
}

impl FrameCorruptor {
    /// Wraps an injector armed with transport fault kinds.
    #[must_use]
    pub fn new(injector: FaultInjector) -> Self {
        FrameCorruptor { injector }
    }

    /// Injection counters so far.
    #[must_use]
    pub fn stats(&self) -> &crate::FaultStats {
        self.injector.stats()
    }

    /// Corrupts `chunks` (each one wire frame or the header) per the plan,
    /// returning the bytes to actually transmit. At most one fault fires
    /// per chunk; truncation is considered first, then bit flip,
    /// duplication and reordering (a swap with the previously emitted
    /// chunk).
    #[must_use]
    pub fn corrupt(&mut self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let mut c = chunk.clone();
            if self.injector.trigger(FaultKind::FrameTruncate) {
                if !c.is_empty() {
                    let keep = self.injector.pick(c.len());
                    c.truncate(keep);
                }
                out.push(c);
            } else if self.injector.trigger(FaultKind::FrameBitFlip) {
                if !c.is_empty() {
                    let byte = self.injector.pick(c.len());
                    let bit = self.injector.pick(8);
                    c[byte] ^= 1 << bit;
                }
                out.push(c);
            } else if self.injector.trigger(FaultKind::FrameDuplicate) {
                out.push(c.clone());
                out.push(c);
            } else if self.injector.trigger(FaultKind::FrameReorder) {
                let prev = out.pop();
                out.push(c);
                if let Some(p) = prev {
                    out.push(p);
                }
            } else {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, SplitMix64};
    use crate::FuzzConfig;

    fn sample_trace() -> Trace {
        FuzzConfig::default().generate(0xC0FFEE)
    }

    #[test]
    fn frame_type_codes_roundtrip_and_are_unique() {
        let all = [
            FrameType::Events,
            FrameType::Finish,
            FrameType::StreamEvents,
            FrameType::StreamFinish,
            FrameType::Report,
            FrameType::Done,
            FrameType::Error,
            FrameType::Busy,
            FrameType::StreamReport,
            FrameType::StreamDone,
        ];
        let mut seen = std::collections::HashSet::new();
        for t in all {
            assert!(seen.insert(t.code()), "duplicate code for {t:?}");
            assert_eq!(FrameType::from_code(t.code()).expect("assigned"), t);
            // Client→server tags stay below 0x80, server→client at or above.
            match t {
                FrameType::Events
                | FrameType::Finish
                | FrameType::StreamEvents
                | FrameType::StreamFinish => assert!(t.code() < 0x80),
                _ => assert!(t.code() >= 0x80),
            }
        }
        assert!(FrameType::from_code(0x7F).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn events_roundtrip_packed() {
        let trace = sample_trace();
        let payload = encode_events(trace.events());
        let back = decode_events(&payload).expect("canonical encoding decodes");
        assert_eq!(back.as_slice(), trace.events());
    }

    #[test]
    fn frames_roundtrip_through_assembler() {
        let trace = sample_trace();
        let chunks = trace_to_frames(&trace, 50);
        let mut asm = FrameAssembler::new();
        // Feed byte-by-byte to exercise partial-frame buffering.
        let stream: Vec<u8> = chunks.concat();
        let mut events = Vec::new();
        let mut finished = false;
        for b in stream {
            asm.push(&[b]);
            while let Some(frame) = asm.next_frame().expect("clean stream") {
                match frame.ftype {
                    FrameType::Events => {
                        events.extend(decode_events(&frame.payload).expect("valid events"));
                    }
                    FrameType::Finish => finished = true,
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        }
        asm.finish().expect("no partial frame left");
        assert!(finished);
        assert_eq!(events.as_slice(), trace.events());
    }

    #[test]
    fn header_is_checked() {
        let mut asm = FrameAssembler::new();
        asm.push(b"NOPE\x01\x00\x00\x00");
        let err = asm.next_frame().expect_err("bad magic");
        assert!(matches!(err, WireError::BadMagic { .. }));

        let mut asm = FrameAssembler::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        asm.push(&bytes);
        let err = asm.next_frame().expect_err("bad version");
        assert_eq!(err, WireError::UnsupportedVersion { got: 99 });
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut asm = FrameAssembler::headerless().with_max_frame(1024);
        asm.push(&u32::MAX.to_le_bytes());
        asm.push(&[0x01]);
        let err = asm.next_frame().expect_err("giant frame");
        assert_eq!(
            err,
            WireError::FrameTooLarge {
                len: u32::MAX,
                max: 1024
            }
        );
    }

    #[test]
    fn flipped_payload_bit_fails_the_crc() {
        let mut frame = Vec::new();
        encode_frame(
            FrameType::Events,
            &encode_events(sample_trace().events()),
            &mut frame,
        );
        frame[20] ^= 0x10; // somewhere in the payload
        let mut asm = FrameAssembler::headerless();
        asm.push(&frame);
        let err = asm.next_frame().expect_err("corrupt frame");
        assert!(matches!(err, WireError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        // Hand-build a frame with an unassigned type but a valid CRC.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.push(0x7F);
        frame.extend_from_slice(&crc32(&[0x7F]).to_le_bytes());
        let mut asm = FrameAssembler::headerless();
        asm.push(&frame);
        let err = asm.next_frame().expect_err("unknown type");
        assert_eq!(err, WireError::BadFrameType { ftype: 0x7F });
    }

    #[test]
    fn bad_event_payloads_are_typed() {
        // Unknown tag.
        let word = 0xFu64.to_le_bytes();
        let err = decode_events(&word).expect_err("unknown tag");
        assert!(matches!(err, WireError::BadEvent { word: 0, .. }));
        // Reserved bits set on a kernel boundary.
        let word = (TAG_KERNEL | (1 << 60)).to_le_bytes();
        assert!(decode_events(&word).is_err());
        // Access descriptor without its address word.
        let word = TAG_STORE.to_le_bytes();
        let err = decode_events(&word).expect_err("missing address");
        assert!(matches!(
            err,
            WireError::BadEvent {
                reason: "access descriptor missing its address word",
                ..
            }
        ));
        // Ragged payload.
        assert!(decode_events(&[1, 2, 3]).is_err());
    }

    #[test]
    fn truncated_stream_is_reported_on_finish() {
        let trace = sample_trace();
        let stream: Vec<u8> = trace_to_frames(&trace, 64).concat();
        let mut asm = FrameAssembler::new();
        asm.push(&stream[..stream.len() - 3]);
        while let Ok(Some(_)) = asm.next_frame() {}
        let err = asm.finish().expect_err("3 bytes missing");
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn corruptor_truncation_and_bitflips_are_caught() {
        let trace = sample_trace();
        let chunks = trace_to_frames(&trace, 8);
        for kind in [FaultKind::FrameTruncate, FaultKind::FrameBitFlip] {
            let plan = FaultPlan::single(kind, 400_000, 0xFA11);
            let mut corr = FrameCorruptor::new(FaultInjector::new(plan));
            let sent = corr.corrupt(&chunks);
            assert!(
                corr.stats().count(kind) > 0,
                "40% over ~30 frames must fire on {kind}"
            );
            let mut asm = FrameAssembler::new();
            let mut failed = false;
            'outer: for c in &sent {
                asm.push(c);
                loop {
                    match asm.next_frame() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => {
                            failed = true;
                            break 'outer;
                        }
                    }
                }
            }
            let failed = failed || asm.finish().is_err();
            assert!(failed, "{kind} at 30% must break framing or truncate");
        }
    }

    #[test]
    fn corruptor_duplicate_and_reorder_keep_frames_valid() {
        let trace = sample_trace();
        let chunks = trace_to_frames(&trace, 16);
        // Skip the header chunk: duplicating or reordering the stream
        // header is a connection-setup corruption, which the header check
        // covers separately; here we care about frame-level validity.
        let frames = &chunks[1..];
        for kind in [FaultKind::FrameDuplicate, FaultKind::FrameReorder] {
            let plan = FaultPlan::single(kind, 400_000, 0xD0D0);
            let mut corr = FrameCorruptor::new(FaultInjector::new(plan));
            let sent = corr.corrupt(frames);
            assert!(corr.stats().count(kind) > 0);
            let mut asm = FrameAssembler::headerless();
            let mut n = 0;
            for c in &sent {
                asm.push(c);
                while let Some(f) = asm.next_frame().expect("dup/reorder keep CRCs valid") {
                    let _ = f;
                    n += 1;
                }
            }
            asm.finish().expect("whole frames only");
            match kind {
                FaultKind::FrameDuplicate => assert!(n > frames.len()),
                _ => assert_eq!(n, sent.len()),
            }
        }
    }

    #[test]
    fn corruptor_is_deterministic_in_its_seed() {
        let chunks = trace_to_frames(&sample_trace(), 8);
        let plan = FaultPlan::new(
            7,
            200_000,
            crate::FaultKindSet::empty()
                .with(FaultKind::FrameTruncate)
                .with(FaultKind::FrameBitFlip)
                .with(FaultKind::FrameDuplicate)
                .with(FaultKind::FrameReorder),
        );
        let a = FrameCorruptor::new(FaultInjector::new(plan)).corrupt(&chunks);
        let b = FrameCorruptor::new(FaultInjector::new(plan)).corrupt(&chunks);
        assert_eq!(a, b);
    }

    #[test]
    fn random_garbage_never_panics_the_assembler() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..200 {
            let n = (rng.below(400) + 1) as usize;
            let bytes: Vec<u8> = (0..n).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
            let mut asm = FrameAssembler::headerless().with_max_frame(4096);
            asm.push(&bytes);
            // Either frames come out, more input is needed, or a typed
            // error — drive to quiescence without panicking.
            while let Ok(Some(_)) = asm.next_frame() {}
        }
    }
}
