//! Typed errors for malformed detector inputs.
//!
//! The detector is driven by an event stream that, in this repository, comes
//! from the simulator — but the crate is usable standalone, and under fault
//! injection the stream itself may be corrupted. Out-of-range hardware slot
//! ids or inconsistent accessor coordinates must surface as a typed error
//! rather than an index panic or, worse, a silent aliasing into another
//! warp's fence/lock state.

use std::fmt;

use crate::Accessor;

/// A malformed detector input: the event names hardware state that does not
/// exist in the configured geometry, or is internally inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorError {
    /// An event named an SM index outside the configured geometry.
    SmOutOfRange {
        /// The offending SM index.
        sm: u8,
        /// Configured number of SMs.
        num_sms: u32,
    },
    /// An event named a warp slot outside the per-SM warp file.
    WarpOutOfRange {
        /// The offending warp slot.
        warp_slot: u8,
        /// Configured warp slots per SM.
        warps_per_sm: u32,
    },
    /// An event named a block slot outside the device's block-slot table.
    BlockOutOfRange {
        /// The offending (global) block slot.
        block_slot: u8,
        /// Configured total block slots (SMs × blocks per SM).
        total_block_slots: u32,
    },
    /// An accessor's global block slot does not live on its claimed SM —
    /// honouring it would charge barriers and fences to the wrong hardware.
    AccessorInconsistent {
        /// The offending accessor.
        who: Accessor,
        /// Configured block slots per SM.
        blocks_per_sm: u32,
    },
    /// A global-memory access address that is not 4-byte aligned (the
    /// metadata granule); the metadata tables cannot represent it.
    MisalignedAddress {
        /// The offending byte address.
        addr: u64,
    },
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DetectorError::SmOutOfRange { sm, num_sms } => {
                write!(f, "SM index {sm} out of range (geometry has {num_sms} SMs)")
            }
            DetectorError::WarpOutOfRange {
                warp_slot,
                warps_per_sm,
            } => write!(
                f,
                "warp slot {warp_slot} out of range (geometry has {warps_per_sm} warp slots per SM)"
            ),
            DetectorError::BlockOutOfRange {
                block_slot,
                total_block_slots,
            } => write!(
                f,
                "block slot {block_slot} out of range (geometry has {total_block_slots} block slots)"
            ),
            DetectorError::AccessorInconsistent { who, blocks_per_sm } => write!(
                f,
                "accessor block slot {} does not belong to SM {} ({} block slots per SM)",
                who.block_slot, who.sm, blocks_per_sm
            ),
            DetectorError::MisalignedAddress { addr } => {
                write!(f, "access address 0x{addr:x} is not 4-byte aligned")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_values() {
        let e = DetectorError::SmOutOfRange {
            sm: 99,
            num_sms: 15,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("15"));
        let e = DetectorError::MisalignedAddress { addr: 0x1003 };
        assert!(e.to_string().contains("0x1003"));
        let e = DetectorError::AccessorInconsistent {
            who: Accessor {
                sm: 2,
                block_slot: 5,
                warp_slot: 0,
            },
            blocks_per_sm: 8,
        };
        let s = e.to_string();
        assert!(s.contains("block slot 5") && s.contains("SM 2"), "{s}");
    }
}
