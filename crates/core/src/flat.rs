//! A flat open-addressing hash table keyed by `u64`, tuned for the
//! detector's hot path.
//!
//! [`FlatMap`] replaces `std::collections::HashMap` where the key is a
//! dense-ish integer (metadata slot indices, cache-line addresses) and the
//! lookup sits on the per-access fast path. Design:
//!
//! * **Power-of-two capacity** with multiply-shift (Fibonacci) hashing:
//!   `slot = (key · 2^64/φ) >> (64 − log2 cap)`. One multiply, one shift —
//!   no SipHash state, no `BuildHasher` indirection.
//! * **Linear probing with backward-shift deletion**: removals re-compact
//!   the probe chain instead of leaving tombstones, so load factor — and
//!   therefore probe length — never degrades over a long simulation.
//! * **Inline entries, no boxing**: keys and values live in two parallel
//!   `Vec`s; an empty slot is marked by the key sentinel `u64::MAX` (no
//!   `Option` discriminant per slot). Keys must therefore be below
//!   `u64::MAX`, which holds for every user here (slot indices and line
//!   addresses are data addresses divided by ≥ 4).
//! * Values must implement [`Default`] so vacated slots can be filled
//!   without `unsafe`; the default value is never observed by lookups.
//!
//! Growth doubles the table at ⅞ load, re-inserting in place-free
//! open-addressing order. Iteration order is table order and therefore
//! depends on insertion history — callers that need deterministic output
//! must not iterate (none of the in-tree users do).

use std::fmt;
use std::mem;

/// Key sentinel marking an empty slot. User keys must be strictly below
/// this; see the module docs.
const EMPTY: u64 = u64::MAX;

/// `2^64 / φ`, the multiplier of Fibonacci hashing.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest non-zero capacity.
const MIN_CAP: usize = 16;

/// An open-addressing hash map from `u64` keys to inline `V` values.
///
/// ```
/// use scord_core::FlatMap;
/// let mut m: FlatMap<u32> = FlatMap::new();
/// assert_eq!(m.insert(7, 70), None);
/// assert_eq!(m.insert(7, 71), Some(70));
/// assert_eq!(m.get(7), Some(&71));
/// assert_eq!(m.remove(7), Some(71));
/// assert!(m.is_empty());
/// ```
#[derive(Clone)]
pub struct FlatMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    /// `64 − log2(capacity)`; unused while the table is unallocated.
    shift: u32,
}

impl<V> Default for FlatMap<V> {
    fn default() -> Self {
        FlatMap {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
            shift: 64,
        }
    }
}

impl<V> fmt::Debug for FlatMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatMap")
            .field("len", &self.len)
            .field("capacity", &self.keys.len())
            .finish()
    }
}

impl<V> FlatMap<V> {
    /// Creates an empty map. No allocation until the first insert.
    #[must_use]
    pub fn new() -> Self {
        FlatMap::default()
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (0 before the first insert; always a power of
    /// two afterwards).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Bytes of heap the table itself occupies: the parallel key and
    /// value arrays, sized by *capacity* (open addressing allocates every
    /// slot up front). Heap owned by individual values (e.g. `Vec`
    /// payloads) is not included — the footprint tracker uses this for
    /// inline-entry stores, where there is none.
    #[must_use]
    pub fn heap_bytes(&self) -> u64 {
        (self.keys.len() as u64) * (8 + mem::size_of::<V>() as u64)
    }

    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// Index of `key`, or `None`. The table always keeps at least one
    /// empty slot (⅞ load bound), so probing terminates.
    fn find(&self, key: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// A shared reference to the value for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.vals[i])
    }

    /// A mutable reference to the value for `key`.
    #[must_use]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.vals[i])
    }

    /// `true` if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Iterates over `(key, &value)` pairs in table order (see the module
    /// docs about determinism).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, v))
    }
}

impl<V: Default> FlatMap<V> {
    /// Creates a map that can hold `n` entries without growing.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut m = FlatMap::new();
        if n > 0 {
            // Smallest power of two keeping n entries under 7/8 load.
            let cap = (n * 8 / 7 + 1).next_power_of_two().max(MIN_CAP);
            m.allocate(cap);
        }
        m
    }

    fn allocate(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        self.keys = vec![EMPTY; cap];
        self.vals = Vec::with_capacity(cap);
        self.vals.resize_with(cap, V::default);
        self.shift = 64 - cap.trailing_zeros();
    }

    /// Ensures one more entry fits under the ⅞ load bound.
    fn reserve_one(&mut self) {
        if self.keys.is_empty() {
            self.allocate(MIN_CAP);
        } else if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = mem::take(&mut self.keys);
        let old_vals = mem::take(&mut self.vals);
        self.allocate(new_cap);
        let mask = self.mask();
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY {
                continue;
            }
            // Keys are unique, so probe straight to the first vacancy.
            let mut i = self.home(key);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = val;
        }
    }

    /// Inserts `key → val`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Debug-panics if `key` is the reserved sentinel `u64::MAX`.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the reserved empty-slot key");
        self.reserve_one();
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(mem::replace(&mut self.vals[i], val));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// The value for `key`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the reserved empty-slot key");
        self.reserve_one();
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                break;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = make();
                self.len += 1;
                break;
            }
            i = (i + 1) & mask;
        }
        &mut self.vals[i]
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion:
    /// later members of the probe chain slide into the hole, so no
    /// tombstone is left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let val = mem::take(&mut self.vals[hole]);
        let mask = self.mask();
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let h = self.home(k);
            // Move k into the hole iff the hole lies on k's probe path,
            // i.e. dist(home → hole) < dist(home → current slot).
            if (hole.wrapping_sub(h) & mask) < (j.wrapping_sub(h) & mask) {
                self.keys[hole] = k;
                self.vals[hole] = mem::take(&mut self.vals[j]);
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(val)
    }

    /// Removes every entry. Capacity (and any heap storage owned by stale
    /// values, e.g. `Vec` buffers) is retained for reuse; stale values are
    /// never observed by lookups and are overwritten on re-insertion.
    pub fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = EMPTY);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FlatMap::new();
        for i in 0..100u64 {
            assert_eq!(m.insert(i * 37, i), None);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            assert_eq!(m.get(i * 37), Some(&i));
        }
        assert_eq!(m.get(1), None);
        for i in 0..100u64 {
            assert_eq!(m.remove(i * 37), Some(i));
            assert_eq!(m.remove(i * 37), None);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut m = FlatMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&"b"));
    }

    #[test]
    fn get_or_insert_with_runs_once() {
        let mut m: FlatMap<Vec<u32>> = FlatMap::new();
        m.get_or_insert_with(9, Vec::new).push(1);
        m.get_or_insert_with(9, || panic!("slot exists")).push(2);
        assert_eq!(m.get(9), Some(&vec![1, 2]));
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut m = FlatMap::new();
        let n = 10_000u64;
        for i in 0..n {
            m.insert(i, i.wrapping_mul(3));
        }
        assert_eq!(m.len(), n as usize);
        assert!(m.capacity().is_power_of_two());
        // Load stays under 7/8 after growth.
        assert!(m.len() * 8 <= m.capacity() * 7);
        for i in 0..n {
            assert_eq!(m.get(i), Some(&i.wrapping_mul(3)));
        }
    }

    #[test]
    fn backward_shift_keeps_chains_findable() {
        // Keys engineered to collide: same home slot for a small table.
        let mut m = FlatMap::new();
        let keys: Vec<u64> = (0..12).map(|i| i * (1 << 40)).collect();
        for (v, &k) in keys.iter().enumerate() {
            m.insert(k, v);
        }
        // Remove from the middle of chains in a scrambled order and check
        // the survivors remain reachable after every single removal.
        let order = [5usize, 0, 11, 3, 8, 1, 9, 2, 7, 10, 4, 6];
        let mut gone = vec![false; keys.len()];
        for &idx in &order {
            assert_eq!(m.remove(keys[idx]), Some(idx));
            gone[idx] = true;
            for (i, &k) in keys.iter().enumerate() {
                let want = if gone[i] { None } else { Some(&i) };
                assert_eq!(m.get(k), want, "key {i} after removing {idx}");
            }
        }
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m = FlatMap::with_capacity(100);
        let cap = m.capacity();
        for i in 0..100u64 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(&50));
    }

    #[test]
    fn with_capacity_does_not_grow_below_n() {
        let mut m = FlatMap::with_capacity(1000);
        let cap = m.capacity();
        for i in 0..1000u64 {
            m.insert(i, ());
        }
        assert_eq!(m.capacity(), cap, "no growth while within capacity");
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut m = FlatMap::new();
        for i in 0..50u64 {
            m.insert(i * 11, i);
        }
        m.remove(22);
        let mut pairs: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
        pairs.sort_unstable();
        let want: Vec<(u64, u64)> = (0..50u64)
            .filter(|&i| i != 2)
            .map(|i| (i * 11, i))
            .collect();
        assert_eq!(pairs, want);
    }

    #[test]
    fn fill_to_capacity_growth_survives_mixed_churn() {
        // Hand-rolled SplitMix64 so the sequence is reproducible without
        // a rand dependency; mirrors the property-test style used by the
        // store-equivalence suite.
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut m = FlatMap::new();
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let r = next();
            let key = r % 512; // small key space forces collisions + churn
            match (r >> 32) % 3 {
                0 => {
                    assert_eq!(m.insert(key, r), shadow.insert(key, r));
                }
                1 => {
                    assert_eq!(m.remove(key), shadow.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), shadow.get(&key));
                }
            }
            assert_eq!(m.len(), shadow.len());
        }
        for (k, v) in &shadow {
            assert_eq!(m.get(*k), Some(v));
        }
    }
}
