//! Events observed by the race detector.
//!
//! The simulator (or any other driver) translates executed instructions into
//! these events. Everything the detector needs travels with the event; the
//! detector holds only the hardware state the paper describes (fence file,
//! lock tables, barrier counters) plus the in-memory metadata.

use scord_isa::Scope;

/// Identity of the hardware context performing an access.
///
/// ScoRD tracks accessors at *hardware slot* granularity because that is all
/// the 7-bit `BlockID` / 5-bit `WarpID` metadata fields can hold: the block
/// slot is `sm * blocks_per_sm + slot` (0–119 in the default configuration)
/// and the warp slot is the warp's scheduler slot within its SM (0–31).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Accessor {
    /// SM index.
    pub sm: u8,
    /// Global hardware block slot (`sm * blocks_per_sm + resident slot`).
    pub block_slot: u8,
    /// Hardware warp slot within the SM.
    pub warp_slot: u8,
}

/// The flavour of atomic operation, as far as lock inference cares.
///
/// The paper's lock table reacts to `atomicCAS` (acquire candidate) and
/// `atomicExch` (release); all other RMWs are plain atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomKind {
    /// `atomicCAS` — inserted into the lock table as a held-lock candidate.
    Cas,
    /// `atomicExch` — releases a matching lock-table entry.
    Exch,
    /// Any other RMW (`atomicAdd`, `atomicMin`, ...).
    Other,
}

/// What kind of memory access an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A global load.
    Load,
    /// A global store.
    Store,
    /// A scoped atomic RMW.
    Atomic {
        /// Lock-inference flavour.
        kind: AtomKind,
        /// Scope of the operation.
        scope: Scope,
    },
}

impl AccessKind {
    /// `true` for stores and atomics.
    #[must_use]
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Load)
    }

    /// `true` for atomics.
    #[must_use]
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::Atomic { .. })
    }
}

/// One 32-bit global-memory access by one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Kind of access.
    pub kind: AccessKind,
    /// Byte address (4-byte aligned).
    pub addr: u64,
    /// `true` for volatile loads/stores; atomics are inherently strong.
    pub strong: bool,
    /// Static instruction address (program counter) — reported with races.
    pub pc: u32,
    /// Who performed the access.
    pub who: Accessor,
}

impl MemAccess {
    /// Whether the access is *strong* in the paper's sense (volatile or
    /// atomic).
    #[must_use]
    pub fn effective_strong(&self) -> bool {
        self.strong || self.kind.is_atomic()
    }
}

/// A lane-attributed access for Independent-Thread-Scheduling mode
/// (paper §VI).
///
/// With ITS (Volta onward), threads of one warp can interleave on divergent
/// paths, so same-warp accesses are no longer program-ordered. The ITS
/// extension attributes each access to its lane and marks whether the warp
/// was diverged; [`crate::ScordDetector::on_access_its`] then treats
/// same-warp/different-lane accesses during divergence as potential
/// conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItsAccess {
    /// The underlying access.
    pub access: MemAccess,
    /// Lane (thread id within the warp) performing the access.
    pub lane: u8,
    /// `true` if the warp was diverged when the access executed.
    pub diverged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_are_writes_and_strong() {
        let kind = AccessKind::Atomic {
            kind: AtomKind::Other,
            scope: Scope::Device,
        };
        assert!(kind.is_write());
        assert!(kind.is_atomic());
        let a = MemAccess {
            kind,
            addr: 0,
            strong: false,
            pc: 0,
            who: Accessor {
                sm: 0,
                block_slot: 0,
                warp_slot: 0,
            },
        };
        assert!(a.effective_strong());
    }

    #[test]
    fn loads_are_not_writes() {
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Store.is_atomic());
    }
}
