//! Seeded fault injection for the detector pipeline.
//!
//! ScoRD's hardware is deliberately lossy: the direct-mapped metadata cache
//! drops aliased entries, 6-bit fence counters wrap, 16-bit lock blooms
//! collide and the 4-entry lock table evicts held locks. This module turns
//! those one-off honesty notes into a measurable resilience surface: a
//! [`FaultPlan`] names a set of [`FaultKind`]s and an injection rate, and a
//! [`FaultInjector`] (driven by the in-tree deterministic [`SplitMix64`]
//! PRNG) decides, event by event, whether to corrupt detector state —
//! metadata bit flips and forced evictions, fence-counter corruption,
//! lock-table invalidation, bloom-bit flips, and dropped / duplicated /
//! reordered detector events at the simulator's detector queue. The
//! transport kinds extend the same discipline to the wire: truncated,
//! bit-flipped, duplicated and reordered frames of the binary trace
//! encoding (see [`crate::wire`]).
//!
//! Everything is deterministic in the plan's seed, so a degradation sweep is
//! exactly reproducible. A detector built without a plan pays only an
//! `Option` check on the hot path.

use std::fmt;

/// A small, fast, deterministic PRNG (Steele, Lea & Flood's SplitMix64).
///
/// This is the repository's only randomness source — workload generation and
/// fault injection both use it, so builds need no external `rand` crate and
/// every run is reproducible from a `u64` seed.
///
/// ```
/// use scord_core::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly-distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform bool.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform integer in `[0, n)` via Lemire's widening-multiply trick.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        (((u128::from(self.next_u64())) * u128::from(n)) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// Derives an independent child generator (for giving each pipeline
    /// stage its own deterministic stream).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// `true` with probability `ppm / 1_000_000`.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.below(1_000_000) < u64::from(ppm)
    }
}

/// One injectable fault, mirroring a lossy hardware structure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one random bit of a loaded metadata entry (a soft error in the
    /// metadata region).
    MetadataBitFlip,
    /// Force-evict the metadata entry covering the accessed address before
    /// the lookup (an adversarial alias in the direct-mapped cache).
    MetadataEvict,
    /// Overwrite the fencing warp's 6-bit counters with random values —
    /// covers both corruption and forced wraparound, the paper's
    /// acknowledged false-positive source.
    FenceCorrupt,
    /// Invalidate one random entry of the accessing warp's lock table (an
    /// adversarial eviction from the 4-entry circular buffer).
    LockInvalidate,
    /// Flip one bit of the 16-bit lock bloom travelling with an access
    /// (an adversarial bloom collision).
    BloomFlip,
    /// Drop a detector event at the detector-unit queue.
    EventDrop,
    /// Duplicate a detector event at the detector-unit queue.
    EventDuplicate,
    /// Swap a detector event with its queue predecessor (local reordering).
    EventReorder,
    /// Cut a random suffix off an encoded wire frame (a mid-frame
    /// disconnect or a short read treated as final).
    FrameTruncate,
    /// Flip one random bit of an encoded wire frame (link-level
    /// corruption; the per-frame CRC must catch it).
    FrameBitFlip,
    /// Transmit a wire frame twice (a retransmission bug upstream).
    FrameDuplicate,
    /// Swap a wire frame with the previously transmitted one (an
    /// out-of-order delivery path).
    FrameReorder,
}

impl FaultKind {
    /// Every kind, in sweep order.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::MetadataBitFlip,
        FaultKind::MetadataEvict,
        FaultKind::FenceCorrupt,
        FaultKind::LockInvalidate,
        FaultKind::BloomFlip,
        FaultKind::EventDrop,
        FaultKind::EventDuplicate,
        FaultKind::EventReorder,
        FaultKind::FrameTruncate,
        FaultKind::FrameBitFlip,
        FaultKind::FrameDuplicate,
        FaultKind::FrameReorder,
    ];

    /// Stable short name (used by the harness's tables and CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MetadataBitFlip => "md-bitflip",
            FaultKind::MetadataEvict => "md-evict",
            FaultKind::FenceCorrupt => "fence-corrupt",
            FaultKind::LockInvalidate => "lock-invalidate",
            FaultKind::BloomFlip => "bloom-flip",
            FaultKind::EventDrop => "event-drop",
            FaultKind::EventDuplicate => "event-dup",
            FaultKind::EventReorder => "event-reorder",
            FaultKind::FrameTruncate => "frame-truncate",
            FaultKind::FrameBitFlip => "frame-bitflip",
            FaultKind::FrameDuplicate => "frame-dup",
            FaultKind::FrameReorder => "frame-reorder",
        }
    }

    const fn index(self) -> usize {
        match self {
            FaultKind::MetadataBitFlip => 0,
            FaultKind::MetadataEvict => 1,
            FaultKind::FenceCorrupt => 2,
            FaultKind::LockInvalidate => 3,
            FaultKind::BloomFlip => 4,
            FaultKind::EventDrop => 5,
            FaultKind::EventDuplicate => 6,
            FaultKind::EventReorder => 7,
            FaultKind::FrameTruncate => 8,
            FaultKind::FrameBitFlip => 9,
            FaultKind::FrameDuplicate => 10,
            FaultKind::FrameReorder => 11,
        }
    }

    const fn bit(self) -> u16 {
        1 << self.index()
    }

    /// `true` for the queue-level event faults (injected by the simulator's
    /// detector unit rather than by the detector itself).
    #[must_use]
    pub fn is_event_fault(self) -> bool {
        matches!(
            self,
            FaultKind::EventDrop | FaultKind::EventDuplicate | FaultKind::EventReorder
        )
    }

    /// `true` for the wire-level transport faults (injected by
    /// [`crate::wire::FrameCorruptor`] on encoded frames, not by the
    /// detector pipeline).
    #[must_use]
    pub fn is_transport_fault(self) -> bool {
        matches!(
            self,
            FaultKind::FrameTruncate
                | FaultKind::FrameBitFlip
                | FaultKind::FrameDuplicate
                | FaultKind::FrameReorder
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`FaultKind`]s, packed for `Copy`/`Eq` configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultKindSet(u16);

impl FaultKindSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        FaultKindSet(0)
    }

    /// Every kind.
    #[must_use]
    pub const fn all() -> Self {
        FaultKindSet((1 << 12) - 1)
    }

    /// A singleton set.
    #[must_use]
    pub const fn only(kind: FaultKind) -> Self {
        FaultKindSet(kind.bit())
    }

    /// This set plus `kind`.
    #[must_use]
    pub const fn with(self, kind: FaultKind) -> Self {
        FaultKindSet(self.0 | kind.bit())
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(self, kind: FaultKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// `true` when no kind is enabled.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A deterministic fault-injection campaign: which faults, how often, and
/// the seed that makes the run reproducible.
///
/// Rates are expressed in parts per million so the plan stays `Copy + Eq`
/// (usable inside `DetectorConfig` / `GpuConfig`). `rate_ppm = 10_000` means
/// each injection point fires with probability 1%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the injector's PRNG.
    pub seed: u64,
    /// Injection probability per opportunity, in parts per million.
    pub rate_ppm: u32,
    /// Which faults are armed.
    pub kinds: FaultKindSet,
}

impl FaultPlan {
    /// A plan arming `kinds` at `rate_ppm`, seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64, rate_ppm: u32, kinds: FaultKindSet) -> Self {
        FaultPlan {
            seed,
            rate_ppm,
            kinds,
        }
    }

    /// A single-fault plan (the harness's sweep cells).
    #[must_use]
    pub fn single(kind: FaultKind, rate_ppm: u32, seed: u64) -> Self {
        FaultPlan::new(seed, rate_ppm, FaultKindSet::only(kind))
    }
}

/// Per-kind injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    injected: [u64; 12],
}

impl FaultStats {
    /// Injections of one kind.
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections of every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Adds another stats block (detector-level + queue-level injectors).
    #[must_use]
    pub fn merged(&self, other: &FaultStats) -> FaultStats {
        let mut out = *self;
        for (o, i) in out.injected.iter_mut().zip(other.injected.iter()) {
            *o += i;
        }
        out
    }
}

/// What the detector-unit queue should do with an incoming event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventAction {
    /// Enqueue normally.
    Deliver,
    /// Silently drop the event.
    Drop,
    /// Enqueue the event twice.
    Duplicate,
    /// Swap the event with the current queue tail.
    Reorder,
}

/// The seeded decision engine executing a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: SplitMix64::new(plan.seed),
            stats: FaultStats::default(),
        }
    }

    /// Builds an injector on an independent stream derived from the plan's
    /// seed — the detector unit and the detector proper must not share a
    /// stream or their decisions would interleave non-reproducibly.
    #[must_use]
    pub fn derived(plan: FaultPlan, stream: u64) -> Self {
        let mut root = SplitMix64::new(plan.seed ^ stream.rotate_left(32));
        FaultInjector {
            plan,
            rng: root.fork(),
            stats: FaultStats::default(),
        }
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Rolls the dice for `kind`; counts and returns `true` on injection.
    pub fn trigger(&mut self, kind: FaultKind) -> bool {
        if self.plan.kinds.contains(kind) && self.rng.chance_ppm(self.plan.rate_ppm) {
            self.stats.injected[kind.index()] += 1;
            true
        } else {
            false
        }
    }

    /// A uniform index in `[0, n)` for choosing a victim bit/entry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }

    /// Flips one random bit of a 64-bit metadata word.
    pub fn flip_bit64(&mut self, bits: u64) -> u64 {
        bits ^ (1u64 << self.pick(64))
    }

    /// Flips one random bit of a 16-bit bloom filter.
    pub fn flip_bit16(&mut self, bits: u16) -> u16 {
        bits ^ (1u16 << self.pick(16))
    }

    /// Decides the fate of one detector-queue event. At most one action
    /// fires per event; drop is considered first, then duplication, then
    /// reordering.
    pub fn event_action(&mut self) -> EventAction {
        if self.trigger(FaultKind::EventDrop) {
            EventAction::Drop
        } else if self.trigger(FaultKind::EventDuplicate) {
            EventAction::Duplicate
        } else if self.trigger(FaultKind::EventReorder) {
            EventAction::Reorder
        } else {
            EventAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Reference values for the classic SplitMix64 stream from seed 0.
        let mut z = SplitMix64::new(0);
        assert_eq!(z.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(z.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        // below() stays in range and hits both halves.
        let mut r = SplitMix64::new(3);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            if v < 5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "{lo} vs {hi}");
    }

    #[test]
    fn chance_ppm_tracks_rate() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.chance_ppm(10_000)).count();
        // 1% of 100k = 1000 ± noise.
        assert!((700..1300).contains(&hits), "got {hits}");
        let mut r = SplitMix64::new(11);
        assert!(!(0..1000).any(|_| r.chance_ppm(0)), "rate 0 never fires");
    }

    #[test]
    fn kind_set_operations() {
        let s = FaultKindSet::empty()
            .with(FaultKind::MetadataBitFlip)
            .with(FaultKind::EventDrop);
        assert!(s.contains(FaultKind::MetadataBitFlip));
        assert!(s.contains(FaultKind::EventDrop));
        assert!(!s.contains(FaultKind::FenceCorrupt));
        assert!(FaultKindSet::empty().is_empty());
        for k in FaultKind::ALL {
            assert!(FaultKindSet::all().contains(k));
            assert!(FaultKindSet::only(k).contains(k));
        }
    }

    #[test]
    fn injector_is_deterministic_and_counts() {
        let plan = FaultPlan::single(FaultKind::MetadataBitFlip, 500_000, 99);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let da: Vec<bool> = (0..200)
            .map(|_| a.trigger(FaultKind::MetadataBitFlip))
            .collect();
        let db: Vec<bool> = (0..200)
            .map(|_| b.trigger(FaultKind::MetadataBitFlip))
            .collect();
        assert_eq!(da, db);
        let n = da.iter().filter(|x| **x).count() as u64;
        assert_eq!(a.stats().count(FaultKind::MetadataBitFlip), n);
        assert_eq!(a.stats().total(), n);
        assert!(n > 50, "50% rate must fire often, got {n}");
        // Disarmed kinds never fire, whatever the rate.
        assert!(!a.trigger(FaultKind::EventDrop));
        assert_eq!(a.stats().count(FaultKind::EventDrop), 0);
    }

    #[test]
    fn bit_flips_change_exactly_one_bit() {
        let plan = FaultPlan::single(FaultKind::MetadataBitFlip, 1_000_000, 1);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..100 {
            let flipped = inj.flip_bit64(0);
            assert_eq!(flipped.count_ones(), 1);
            let f16 = inj.flip_bit16(0xFFFF);
            assert_eq!(f16.count_ones(), 15);
        }
    }

    #[test]
    fn event_actions_follow_armed_kinds() {
        let plan = FaultPlan::single(FaultKind::EventDrop, 1_000_000, 5);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.event_action(), EventAction::Drop);
        let plan = FaultPlan::single(FaultKind::EventReorder, 1_000_000, 5);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.event_action(), EventAction::Reorder);
        let none = FaultPlan::new(5, 1_000_000, FaultKindSet::empty());
        let mut inj = FaultInjector::new(none);
        assert_eq!(inj.event_action(), EventAction::Deliver);
    }

    #[test]
    fn derived_streams_differ_from_the_root() {
        let plan = FaultPlan::single(FaultKind::EventDrop, 500_000, 42);
        let mut root = FaultInjector::new(plan);
        let mut derived = FaultInjector::derived(plan, 1);
        let a: Vec<bool> = (0..64)
            .map(|_| root.trigger(FaultKind::EventDrop))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| derived.trigger(FaultKind::EventDrop))
            .collect();
        assert_ne!(a, b, "independent decision streams");
    }

    #[test]
    fn merged_stats_add_per_kind() {
        let mut a = FaultStats::default();
        a.injected[FaultKind::EventDrop.index()] = 3;
        let mut b = FaultStats::default();
        b.injected[FaultKind::EventDrop.index()] = 4;
        b.injected[FaultKind::BloomFlip.index()] = 1;
        let m = a.merged(&b);
        assert_eq!(m.count(FaultKind::EventDrop), 7);
        assert_eq!(m.count(FaultKind::BloomFlip), 1);
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in FaultKind::ALL {
            assert!(seen.insert(k.name()));
        }
        assert!(FaultKind::EventDrop.is_event_fault());
        assert!(!FaultKind::MetadataBitFlip.is_event_fault());
    }
}
