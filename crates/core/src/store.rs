//! Metadata stores: the full per-granule layout and the paper's
//! direct-mapped software cache (§IV-B).
//!
//! Both layouts index metadata by a dense slot number, so the production
//! stores keep their entries in a [`FlatMap`] (open addressing, Fibonacci
//! hashing, inline entries) — the per-access `load`/`store` pair is the
//! detector's hottest path. The original `HashMap`-backed implementations
//! survive as [`ReferenceFullStore`] / [`ReferenceCachedStore`]; the
//! store-equivalence suite replays every captured and fuzzed trace through
//! both and asserts identical race reports.

use std::collections::HashMap;
use std::fmt;

use crate::{FlatMap, MetadataEntry, StoreKind};

/// Result of looking up the metadata entry covering a data address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataLookup {
    /// The entry contents. When `fresh` is set this is the initialized
    /// entry — either the location was never accessed, or (cached store) the
    /// slot's tag identified a different aliasing granule, in which case the
    /// paper discards the old contents and overwrites with the latest access.
    pub entry: MetadataEntry,
    /// `true` when no usable metadata existed for this address.
    pub fresh: bool,
    /// Byte address of the entry within the metadata region — used by the
    /// timing model to charge metadata traffic to L2/DRAM.
    pub md_addr: u64,
}

/// Storage for per-location metadata entries.
///
/// Implementations are *functionally sparse* (entries materialize on first
/// touch in the initialized state, exactly as if the whole region had been
/// initialized at boot) but report the hardware footprint their layout would
/// occupy.
/// Stores are `Send` so a detector (and the GPU owning it) can move across
/// host threads.
pub trait MetadataStore: fmt::Debug + Send {
    /// Looks up the entry covering data byte address `addr`.
    fn load(&self, addr: u64) -> MetadataLookup;

    /// Writes back the entry covering `addr` (stamping the slot tag where
    /// the layout has one).
    fn store(&mut self, addr: u64, entry: MetadataEntry);

    /// Re-initializes every entry (kernel-launch reset).
    fn reset(&mut self);

    /// Discards the entry covering `addr`, returning it to the initialized
    /// state — the fault injector's "adversarial alias" hook, and in the
    /// cached layout exactly what a tag-mismatching write-back does.
    fn evict(&mut self, addr: u64);

    /// Bytes of device memory one entry covers before aliasing.
    fn bytes_per_entry(&self) -> u64;

    /// Size of the metadata region in bytes for a device memory of
    /// `mem_bytes`.
    fn footprint_bytes(&self, mem_bytes: u64) -> u64;

    /// `true` if two data addresses share a metadata entry.
    fn aliases(&self, a: u64, b: u64) -> bool;

    /// Host-heap bytes the store's container actually occupies right now
    /// — as opposed to [`footprint_bytes`](MetadataStore::footprint_bytes),
    /// which is the *hardware* region the layout would reserve. This is
    /// what the paper-scale footprint tracker records so full-vs-cached
    /// scaling is measured, not assumed. Defaults to 0 for stores that do
    /// not account for themselves.
    fn resident_bytes(&self) -> u64 {
        0
    }

    /// Number of metadata entries currently materialized (0 for stores
    /// that do not account for themselves).
    fn resident_entries(&self) -> u64 {
        0
    }
}

/// Builds the store described by `kind`, placing the metadata region at
/// `metadata_base`.
#[must_use]
pub fn build_store(kind: StoreKind, metadata_base: u64) -> Box<dyn MetadataStore> {
    match kind {
        StoreKind::Full { granularity } => Box::new(FullStore::new(granularity, metadata_base)),
        StoreKind::Cached { ratio } => Box::new(CachedStore::new(ratio, metadata_base)),
    }
}

/// One entry per `granularity`-byte granule (the base design; Table VII's
/// 4/8/16-byte variants).
///
/// Coarser granularity shares an entry between neighbouring data words, which
/// the paper shows introduces *false positives* (different threads touching
/// different words look like conflicting accesses to one location).
#[derive(Debug, Clone)]
pub struct FullStore {
    granularity: u64,
    base: u64,
    entries: FlatMap<MetadataEntry>,
}

impl FullStore {
    /// Creates a store with one entry per `granularity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a multiple of 4.
    #[must_use]
    pub fn new(granularity: u64, base: u64) -> Self {
        assert!(
            granularity >= 4 && granularity.is_multiple_of(4),
            "granularity must be a positive multiple of 4, got {granularity}"
        );
        FullStore {
            granularity,
            base,
            entries: FlatMap::new(),
        }
    }

    fn slot(&self, addr: u64) -> u64 {
        addr / self.granularity
    }
}

impl MetadataStore for FullStore {
    fn load(&self, addr: u64) -> MetadataLookup {
        let slot = self.slot(addr);
        let md_addr = self.base + slot * 8;
        match self.entries.get(slot) {
            Some(&entry) => MetadataLookup {
                entry,
                fresh: false,
                md_addr,
            },
            None => MetadataLookup {
                entry: MetadataEntry::initialized(),
                fresh: true,
                md_addr,
            },
        }
    }

    fn store(&mut self, addr: u64, entry: MetadataEntry) {
        let slot = self.slot(addr);
        self.entries.insert(slot, entry);
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn evict(&mut self, addr: u64) {
        let slot = self.slot(addr);
        self.entries.remove(slot);
    }

    fn bytes_per_entry(&self) -> u64 {
        self.granularity
    }

    fn footprint_bytes(&self, mem_bytes: u64) -> u64 {
        mem_bytes.div_ceil(self.granularity) * 8
    }

    fn aliases(&self, a: u64, b: u64) -> bool {
        self.slot(a) == self.slot(b)
    }

    fn resident_bytes(&self) -> u64 {
        self.entries.heap_bytes()
    }

    fn resident_entries(&self) -> u64 {
        self.entries.len() as u64
    }
}

/// The paper's software cache of metadata: direct-mapped, one entry per
/// `ratio` 4-byte granules, 4-bit tag (§IV-B).
///
/// A tag mismatch means the resident entry describes a *different* data word;
/// the lookup reports `fresh` and the subsequent write-back evicts the old
/// contents. This trades rare false negatives (Table VI: 43/44 races caught)
/// for a 16× metadata-footprint reduction (200% → 12.5%).
#[derive(Debug, Clone)]
pub struct CachedStore {
    ratio: u64,
    base: u64,
    entries: FlatMap<MetadataEntry>,
}

impl CachedStore {
    /// Creates a cached store with one slot per `ratio` granules.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is 0 or exceeds 16 (the 4-bit tag cannot
    /// disambiguate more aliasing granules than that).
    #[must_use]
    pub fn new(ratio: u64, base: u64) -> Self {
        assert!(
            (1..=16).contains(&ratio),
            "cache ratio must be in 1..=16 (4-bit tag), got {ratio}"
        );
        CachedStore {
            ratio,
            base,
            entries: FlatMap::new(),
        }
    }

    fn slot_and_tag(&self, addr: u64) -> (u64, u8) {
        let granule = addr / 4;
        (granule / self.ratio, (granule % self.ratio) as u8)
    }
}

impl MetadataStore for CachedStore {
    fn load(&self, addr: u64) -> MetadataLookup {
        let (slot, tag) = self.slot_and_tag(addr);
        let md_addr = self.base + slot * 8;
        match self.entries.get(slot) {
            Some(&entry) if entry.tag() == tag => MetadataLookup {
                entry,
                fresh: false,
                md_addr,
            },
            _ => MetadataLookup {
                entry: MetadataEntry::initialized(),
                fresh: true,
                md_addr,
            },
        }
    }

    fn store(&mut self, addr: u64, mut entry: MetadataEntry) {
        let (slot, tag) = self.slot_and_tag(addr);
        entry.set_tag(tag);
        self.entries.insert(slot, entry);
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn evict(&mut self, addr: u64) {
        let (slot, _) = self.slot_and_tag(addr);
        self.entries.remove(slot);
    }

    fn bytes_per_entry(&self) -> u64 {
        4
    }

    fn footprint_bytes(&self, mem_bytes: u64) -> u64 {
        mem_bytes.div_ceil(4 * self.ratio) * 8
    }

    fn aliases(&self, a: u64, b: u64) -> bool {
        self.slot_and_tag(a).0 == self.slot_and_tag(b).0
    }

    fn resident_bytes(&self) -> u64 {
        self.entries.heap_bytes()
    }

    fn resident_entries(&self) -> u64 {
        self.entries.len() as u64
    }
}

/// Builds the `HashMap`-backed reference twin of the store described by
/// `kind` — same layout semantics as [`build_store`], different container.
/// Used by the store-equivalence suite as the behavioural oracle for the
/// flat production stores.
#[must_use]
pub fn build_reference_store(kind: StoreKind, metadata_base: u64) -> Box<dyn MetadataStore> {
    match kind {
        StoreKind::Full { granularity } => {
            Box::new(ReferenceFullStore::new(granularity, metadata_base))
        }
        StoreKind::Cached { ratio } => Box::new(ReferenceCachedStore::new(ratio, metadata_base)),
    }
}

/// The original `HashMap`-backed [`FullStore`], kept as a behavioural
/// reference for the flat production store.
#[derive(Debug, Clone)]
pub struct ReferenceFullStore {
    granularity: u64,
    base: u64,
    entries: HashMap<u64, MetadataEntry>,
}

impl ReferenceFullStore {
    /// Creates a reference store with one entry per `granularity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a multiple of 4.
    #[must_use]
    pub fn new(granularity: u64, base: u64) -> Self {
        assert!(
            granularity >= 4 && granularity.is_multiple_of(4),
            "granularity must be a positive multiple of 4, got {granularity}"
        );
        ReferenceFullStore {
            granularity,
            base,
            entries: HashMap::new(),
        }
    }

    fn slot(&self, addr: u64) -> u64 {
        addr / self.granularity
    }
}

impl MetadataStore for ReferenceFullStore {
    fn load(&self, addr: u64) -> MetadataLookup {
        let slot = self.slot(addr);
        let md_addr = self.base + slot * 8;
        match self.entries.get(&slot) {
            Some(&entry) => MetadataLookup {
                entry,
                fresh: false,
                md_addr,
            },
            None => MetadataLookup {
                entry: MetadataEntry::initialized(),
                fresh: true,
                md_addr,
            },
        }
    }

    fn store(&mut self, addr: u64, entry: MetadataEntry) {
        let slot = self.slot(addr);
        self.entries.insert(slot, entry);
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn evict(&mut self, addr: u64) {
        let slot = self.slot(addr);
        self.entries.remove(&slot);
    }

    fn bytes_per_entry(&self) -> u64 {
        self.granularity
    }

    fn footprint_bytes(&self, mem_bytes: u64) -> u64 {
        mem_bytes.div_ceil(self.granularity) * 8
    }

    fn aliases(&self, a: u64, b: u64) -> bool {
        self.slot(a) == self.slot(b)
    }
}

/// The original `HashMap`-backed [`CachedStore`], kept as a behavioural
/// reference for the flat production store.
#[derive(Debug, Clone)]
pub struct ReferenceCachedStore {
    ratio: u64,
    base: u64,
    entries: HashMap<u64, MetadataEntry>,
}

impl ReferenceCachedStore {
    /// Creates a reference cached store with one slot per `ratio` granules.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is 0 or exceeds 16 (the 4-bit tag cannot
    /// disambiguate more aliasing granules than that).
    #[must_use]
    pub fn new(ratio: u64, base: u64) -> Self {
        assert!(
            (1..=16).contains(&ratio),
            "cache ratio must be in 1..=16 (4-bit tag), got {ratio}"
        );
        ReferenceCachedStore {
            ratio,
            base,
            entries: HashMap::new(),
        }
    }

    fn slot_and_tag(&self, addr: u64) -> (u64, u8) {
        let granule = addr / 4;
        (granule / self.ratio, (granule % self.ratio) as u8)
    }
}

impl MetadataStore for ReferenceCachedStore {
    fn load(&self, addr: u64) -> MetadataLookup {
        let (slot, tag) = self.slot_and_tag(addr);
        let md_addr = self.base + slot * 8;
        match self.entries.get(&slot) {
            Some(&entry) if entry.tag() == tag => MetadataLookup {
                entry,
                fresh: false,
                md_addr,
            },
            _ => MetadataLookup {
                entry: MetadataEntry::initialized(),
                fresh: true,
                md_addr,
            },
        }
    }

    fn store(&mut self, addr: u64, mut entry: MetadataEntry) {
        let (slot, tag) = self.slot_and_tag(addr);
        entry.set_tag(tag);
        self.entries.insert(slot, entry);
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn evict(&mut self, addr: u64) {
        let (slot, _) = self.slot_and_tag(addr);
        self.entries.remove(&slot);
    }

    fn bytes_per_entry(&self) -> u64 {
        4
    }

    fn footprint_bytes(&self, mem_bytes: u64) -> u64 {
        mem_bytes.div_ceil(4 * self.ratio) * 8
    }

    fn aliases(&self, a: u64, b: u64) -> bool {
        self.slot_and_tag(a).0 == self.slot_and_tag(b).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touched(store: &mut dyn MetadataStore, addr: u64) -> MetadataEntry {
        let mut e = store.load(addr).entry;
        e.set_modified(true);
        e.set_blk_shared(false);
        e.set_dev_shared(false);
        e.set_block_id(7);
        store.store(addr, e);
        e
    }

    #[test]
    fn full_store_roundtrip_and_freshness() {
        let mut s = FullStore::new(4, 0x1000_0000);
        let l = s.load(64);
        assert!(l.fresh);
        assert!(l.entry.is_initialized());
        assert_eq!(l.md_addr, 0x1000_0000 + (64 / 4) * 8);
        touched(&mut s, 64);
        let l2 = s.load(64);
        assert!(!l2.fresh);
        assert_eq!(l2.entry.block_id(), 7);
        // neighbouring word has its own entry at 4-byte granularity
        assert!(s.load(68).fresh);
        assert!(!s.aliases(64, 68));
    }

    #[test]
    fn coarse_granularity_shares_entries() {
        let mut s = FullStore::new(16, 0);
        touched(&mut s, 64);
        let l = s.load(76);
        assert!(!l.fresh, "76 and 64 share a 16-byte granule");
        assert!(s.aliases(64, 76));
        assert!(!s.aliases(64, 80));
    }

    #[test]
    fn full_store_footprint_matches_overhead() {
        let s4 = FullStore::new(4, 0);
        assert_eq!(s4.footprint_bytes(1 << 20), 2 << 20, "200% overhead");
        let s16 = FullStore::new(16, 0);
        assert_eq!(s16.footprint_bytes(1 << 20), 1 << 19, "50% overhead");
    }

    #[test]
    fn cached_store_tag_hit_and_alias_eviction() {
        let mut s = CachedStore::new(16, 0x2000);
        touched(&mut s, 0); // granule 0, slot 0, tag 0
        let hit = s.load(0);
        assert!(!hit.fresh);
        assert_eq!(hit.entry.block_id(), 7);

        // granule 1 (addr 4) maps to the same slot with tag 1 → miss.
        let miss = s.load(4);
        assert!(miss.fresh, "tag mismatch must report fresh");
        assert!(s.aliases(0, 4));

        // Writing addr 4 evicts addr 0's entry.
        touched(&mut s, 4);
        assert!(s.load(0).fresh, "aliased entry was overwritten");
        assert!(!s.load(4).fresh);
    }

    #[test]
    fn cached_store_distinct_slots_do_not_alias() {
        let mut s = CachedStore::new(16, 0);
        touched(&mut s, 0);
        assert!(!s.aliases(0, 64), "64 bytes = granule 16 = next slot");
        assert!(s.load(64).fresh);
        touched(&mut s, 64);
        assert!(!s.load(0).fresh, "separate slot untouched by eviction");
    }

    #[test]
    fn cached_store_footprint_is_one_sixteenth() {
        let s = CachedStore::new(16, 0);
        assert_eq!(s.footprint_bytes(1 << 20), 1 << 17, "12.5% overhead");
    }

    #[test]
    fn evict_returns_entry_to_initialized_state() {
        let mut f = FullStore::new(4, 0);
        touched(&mut f, 64);
        f.evict(64);
        assert!(f.load(64).fresh, "evicted full-store entry is fresh");

        let mut c = CachedStore::new(16, 0);
        touched(&mut c, 0);
        touched(&mut c, 64); // separate slot
        c.evict(0);
        assert!(c.load(0).fresh, "evicted cached entry is fresh");
        assert!(!c.load(64).fresh, "other slots untouched by eviction");
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = CachedStore::new(16, 0);
        touched(&mut s, 0);
        s.reset();
        assert!(s.load(0).fresh);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn full_store_rejects_bad_granularity() {
        let _ = FullStore::new(6, 0);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn cached_store_rejects_bad_ratio() {
        let _ = CachedStore::new(17, 0);
    }

    #[test]
    fn resident_accounting_tracks_materialized_entries() {
        let mut s = FullStore::new(4, 0);
        assert_eq!(s.resident_entries(), 0);
        assert_eq!(s.resident_bytes(), 0, "no heap before the first touch");
        for i in 0..100u64 {
            touched(&mut s, i * 4);
        }
        assert_eq!(s.resident_entries(), 100);
        let bytes = s.resident_bytes();
        assert!(bytes > 0);
        // Capacity-based: clearing keeps the allocation, so bytes hold.
        s.reset();
        assert_eq!(s.resident_entries(), 0);
        assert_eq!(s.resident_bytes(), bytes, "reset retains capacity");
        // The reference twins don't account for themselves (default 0).
        let r = build_reference_store(StoreKind::Full { granularity: 4 }, 0);
        assert_eq!(r.resident_bytes(), 0);
    }

    #[test]
    fn build_store_dispatches_on_kind() {
        let f = build_store(StoreKind::Full { granularity: 8 }, 0);
        assert_eq!(f.bytes_per_entry(), 8);
        let c = build_store(StoreKind::Cached { ratio: 16 }, 0);
        assert_eq!(c.bytes_per_entry(), 4);
    }

    /// Drives a flat store and its `HashMap` reference twin through the
    /// same randomized load/store/evict/reset schedule and demands
    /// lookup-identical behaviour at every step.
    fn churn_equivalence(kind: StoreKind) {
        let mut flat = build_store(kind, 0x4000);
        let mut reference = build_reference_store(kind, 0x4000);
        assert_eq!(flat.bytes_per_entry(), reference.bytes_per_entry());
        assert_eq!(
            flat.footprint_bytes(1 << 20),
            reference.footprint_bytes(1 << 20)
        );
        let mut state = 0x5EED_1234u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for step in 0..20_000u32 {
            let r = next();
            let addr = (r % 4096) & !3; // word-aligned, aliasing-prone range
            match (r >> 32) % 8 {
                0 => {
                    flat.evict(addr);
                    reference.evict(addr);
                }
                1 if step % 977 == 0 => {
                    flat.reset();
                    reference.reset();
                }
                2 | 3 => {
                    let mut e = MetadataEntry::initialized();
                    e.set_modified(r & 1 == 0);
                    e.set_block_id((r >> 8) as u8 & 0xF);
                    flat.store(addr, e);
                    reference.store(addr, e);
                }
                _ => {}
            }
            assert_eq!(
                flat.load(addr),
                reference.load(addr),
                "lookup diverged at step {step}, addr {addr:#x}"
            );
        }
    }

    #[test]
    fn flat_full_store_matches_reference_under_churn() {
        churn_equivalence(StoreKind::Full { granularity: 4 });
        churn_equivalence(StoreKind::Full { granularity: 16 });
    }

    #[test]
    fn flat_cached_store_matches_reference_under_churn() {
        churn_equivalence(StoreKind::Cached { ratio: 16 });
        churn_equivalence(StoreKind::Cached { ratio: 4 });
    }
}
