//! Seeded random trace generator for differential testing.
//!
//! [`FuzzConfig::generate`] emits a small multi-block, multi-warp
//! [`Trace`] mixing the idioms of the paper's microbenchmark suite:
//! scoped fences, scoped atomics, `atomicCAS`+fence lock acquires,
//! fence+`atomicExch` releases, fence-then-flag producer/consumer
//! publication (the suite's `grid_sync` shape), barriers, warp
//! reassignment and kernel boundaries.
//!
//! Races are injected by *decision*, not by construction: every
//! synchronisation choice (fence scope, fence presence, access
//! strength, lock discipline, flag-slot reuse) is made correctly
//! unless a draw against [`FuzzConfig::race_pct`] flips it. At
//! `race_pct = 0` the generated program is well-synchronised under
//! both the scoped happens-before *and* the lockset discipline — any
//! detector report on such a trace is a false positive — while higher
//! rates mix wrongly-scoped fences, missing fences, weak accesses,
//! unguarded critical-section data and flag reuse into otherwise
//! correct idioms.
//!
//! Every decision draws from one [`SplitMix64`] stream, so a seed
//! reproduces the byte-identical trace on any platform: a divergence
//! report only needs `(seed, case)` to be replayable, and
//! [`Trace::to_text`] makes it shareable.
//!
//! The address space is partitioned so a differential classifier can
//! tell idioms apart by address alone: contended shared words (only
//! touched by *wrong* decisions and atomics), lock words, lock-guarded
//! data words (lock *i* guards exactly guard word *i*), publication
//! flags, published payload words, a free-for-all atomic pool, and
//! per-warp private words. The pools are deliberately cramped because
//! small state spaces collide: lock-table evictions, metadata-cache
//! aliasing and cross-block scope mistakes all need *repeat* traffic
//! to show up.

use scord_isa::Scope;

use crate::fault::SplitMix64;
use crate::{AccessKind, Accessor, AtomKind, MemAccess, Trace, TraceEvent};

/// Base of the contended shared-data pool (wrong-decision traffic and
/// the occasional atomic land here).
pub const DATA_BASE: u64 = 0x1000;
/// Base of the lock words (CAS/Exch targets).
pub const LOCK_BASE: u64 = 0x2000;
/// Base of the lock-guarded data words; guard word *i* belongs to lock *i*.
pub const GUARD_BASE: u64 = 0x3000;
/// Base of the producer/consumer publication flags.
pub const FLAG_BASE: u64 = 0x4000;
/// Base of the published payload words (one per flag).
pub const PUB_BASE: u64 = 0x5000;
/// Base of the free-for-all atomic pool.
pub const ATOM_BASE: u64 = 0x6000;
/// Base of the per-warp private words (64 words per warp slot).
pub const PRIV_BASE: u64 = 0x8000;

/// Shape and mischief level of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// SMs used (1..=15 under the paper geometry).
    pub sms: u8,
    /// Blocks resident per SM (1..=8; block slot `sm * 8 + block`).
    pub blocks_per_sm: u8,
    /// Warps per block (`blocks_per_sm * warps_per_block` ≤ 32 per SM).
    pub warps_per_block: u8,
    /// Contended shared data words.
    pub shared_words: u32,
    /// Lock words; lock *i* guards guard word *i*.
    pub locks: u32,
    /// Producer/consumer flag (and payload) words reused by *wrong*
    /// publication rounds; correct rounds take a fresh slot.
    pub flags: u32,
    /// Target number of events (multi-event idioms overshoot slightly).
    pub events: u32,
    /// Percent of synchronisation decisions deliberately made wrong —
    /// the race-injection rate. 0 generates only well-synchronised
    /// programs; 100 generates chaos.
    pub race_pct: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            sms: 2,
            blocks_per_sm: 2,
            warps_per_block: 2,
            shared_words: 6,
            locks: 2,
            flags: 2,
            events: 240,
            race_pct: 30,
        }
    }
}

impl FuzzConfig {
    /// Generates one trace. The same `(config, seed)` pair always
    /// produces the identical event sequence.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not fit the paper geometry
    /// (see the field docs) or has an empty address pool.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(
            (1..=15).contains(&self.sms),
            "sms must be in 1..=15, got {}",
            self.sms
        );
        assert!(
            (1..=8).contains(&self.blocks_per_sm),
            "blocks_per_sm must be in 1..=8, got {}",
            self.blocks_per_sm
        );
        assert!(
            self.warps_per_block >= 1
                && u32::from(self.blocks_per_sm) * u32::from(self.warps_per_block) <= 32,
            "warps_per_block must be >= 1 with blocks_per_sm * warps_per_block <= 32"
        );
        assert!(
            self.shared_words >= 1 && self.locks >= 1 && self.flags >= 1,
            "every address pool needs at least one word"
        );
        let mut g = Gen::new(self, SplitMix64::new(seed));
        g.assign_all_warps();
        while g.trace.len() < self.events as usize {
            g.step();
        }
        g.trace
    }
}

/// One warp incarnation's generator-side state.
struct Warp {
    who: Accessor,
    /// Lock indices this warp holds (CAS emitted; release pending).
    held: Vec<u32>,
    /// Incarnation counter: reassignment moves the warp to a fresh
    /// private range, like a new block getting new thread-local data.
    inc: u32,
}

struct Gen<'a> {
    cfg: &'a FuzzConfig,
    rng: SplitMix64,
    trace: Trace,
    pc: u32,
    warps: Vec<Warp>,
    /// Lock index → holding warp, so acquires stay mutually exclusive
    /// (races come from scope mistakes, not from broken lock logic).
    owner: Vec<Option<usize>>,
    /// Next fresh publication slot for correctly-synchronised rounds.
    pub_next: u64,
}

impl<'a> Gen<'a> {
    fn new(cfg: &'a FuzzConfig, rng: SplitMix64) -> Self {
        let mut warps = Vec::new();
        for sm in 0..cfg.sms {
            for b in 0..cfg.blocks_per_sm {
                for w in 0..cfg.warps_per_block {
                    warps.push(Warp {
                        who: Accessor {
                            sm,
                            block_slot: sm * 8 + b,
                            warp_slot: b * cfg.warps_per_block + w,
                        },
                        held: Vec::new(),
                        inc: 0,
                    });
                }
            }
        }
        Gen {
            cfg,
            rng,
            trace: Trace::new(),
            pc: 0x400,
            warps,
            owner: vec![None; cfg.locks as usize],
            pub_next: 0,
        }
    }

    /// Draws one wrong/right synchronisation decision.
    fn wrong(&mut self) -> bool {
        self.rng.below(100) < u64::from(self.cfg.race_pct)
    }

    fn fresh_pc(&mut self) -> u32 {
        let pc = self.pc;
        self.pc += 4;
        pc
    }

    fn pick_warp(&mut self) -> usize {
        self.rng.below(self.warps.len() as u64) as usize
    }

    /// A warp holding no locks, if any exist (lock-holders carry a lock
    /// bloom that would taint unrelated idioms' metadata).
    fn pick_free_warp(&mut self) -> Option<usize> {
        let free: Vec<usize> = (0..self.warps.len())
            .filter(|&i| self.warps[i].held.is_empty())
            .collect();
        if free.is_empty() {
            return None;
        }
        Some(free[self.rng.below(free.len() as u64) as usize])
    }

    fn emit_access(&mut self, w: usize, kind: AccessKind, addr: u64, strong: bool) {
        let pc = self.fresh_pc();
        self.trace.push(TraceEvent::Access(MemAccess {
            kind,
            addr,
            strong,
            pc,
            who: self.warps[w].who,
        }));
    }

    fn emit_fence(&mut self, w: usize, scope: Scope) {
        let who = self.warps[w].who;
        self.trace.push(TraceEvent::Fence {
            sm: who.sm,
            warp_slot: who.warp_slot,
            scope,
        });
    }

    /// Emits the device fence a correct idiom wants here; a wrong
    /// decision narrows it to block scope or drops it entirely.
    fn sync_fence(&mut self, w: usize) {
        if self.wrong() {
            if self.rng.next_bool() {
                self.emit_fence(w, Scope::Block);
            }
            // else: no fence at all.
        } else {
            self.emit_fence(w, Scope::Device);
        }
    }

    fn assign_all_warps(&mut self) {
        for i in 0..self.warps.len() {
            let who = self.warps[i].who;
            self.trace.push(TraceEvent::WarpAssigned {
                sm: who.sm,
                warp_slot: who.warp_slot,
            });
        }
    }

    fn load_or_store(&mut self) -> AccessKind {
        if self.rng.next_bool() {
            AccessKind::Store
        } else {
            AccessKind::Load
        }
    }

    fn step(&mut self) {
        match self.rng.below(100) {
            0..=33 => self.plain_access(),
            34..=43 => self.lone_fence(),
            44..=53 => self.atomic_op(),
            54..=63 => self.lock_acquire(),
            64..=71 => self.lock_release(),
            72..=79 => self.critical_access(),
            80..=85 => self.rogue_guard_access(),
            86..=90 => self.barrier(),
            91..=95 => self.producer_consumer(),
            96..=97 => self.kernel_boundary(),
            _ => self.reassign_warp(),
        }
    }

    /// A load/store. Correct decisions stay on the warp's private words
    /// (program-ordered by definition); wrong ones hit the contended
    /// shared pool, sometimes weakly — unordered conflicts either way.
    fn plain_access(&mut self) {
        let w = self.pick_warp();
        let kind = self.load_or_store();
        if self.wrong() {
            let addr = DATA_BASE + 4 * self.rng.below(u64::from(self.cfg.shared_words));
            let strong = !self.wrong();
            self.emit_access(w, kind, addr, strong);
        } else {
            let word = self.rng.below(8);
            let warp = &self.warps[w];
            let addr = PRIV_BASE + 4 * (w as u64 * 64 + u64::from(warp.inc % 8) * 8 + word);
            self.emit_access(w, kind, addr, true);
        }
    }

    fn lone_fence(&mut self) {
        let w = self.pick_warp();
        let scope = if self.wrong() {
            Scope::Block
        } else {
            Scope::Device
        };
        self.emit_fence(w, scope);
    }

    /// A scoped atomic on the free-for-all pool (occasionally on the
    /// contended pool, where it meets wrongly-placed plain accesses).
    /// Adequately-scoped atomics to one location order themselves; a
    /// wrong decision narrows the scope to block, which is invisible
    /// across blocks (Table IV (d)).
    fn atomic_op(&mut self) {
        let w = self.pick_warp();
        let addr = if self.rng.below(4) == 0 {
            DATA_BASE + 4 * self.rng.below(u64::from(self.cfg.shared_words))
        } else {
            ATOM_BASE + 4 * self.rng.below(u64::from(self.cfg.locks + self.cfg.flags))
        };
        let scope = if self.wrong() {
            Scope::Block
        } else {
            Scope::Device
        };
        self.emit_access(
            w,
            AccessKind::Atomic {
                kind: AtomKind::Other,
                scope,
            },
            addr,
            true,
        );
    }

    /// `atomicCAS(lock)` + fence: the paper's lock-acquire idiom. A
    /// wrong decision block-scopes the activating fence or drops it
    /// (the lock then never activates in the lock table).
    fn lock_acquire(&mut self) {
        let lock = self.rng.below(u64::from(self.cfg.locks)) as u32;
        if self.owner[lock as usize].is_some() {
            return;
        }
        let w = self.pick_warp();
        self.emit_access(
            w,
            AccessKind::Atomic {
                kind: AtomKind::Cas,
                scope: Scope::Device,
            },
            LOCK_BASE + 4 * u64::from(lock),
            true,
        );
        self.sync_fence(w);
        self.owner[lock as usize] = Some(w);
        self.warps[w].held.push(lock);
    }

    /// Fence + `atomicExch(lock)`: the release idiom. A wrong decision
    /// drops or mis-scopes the pre-release fence, so the next holder
    /// is not ordered after this critical section.
    fn lock_release(&mut self) {
        let Some((w, lock)) = self.random_held() else {
            return;
        };
        self.sync_fence(w);
        self.emit_access(
            w,
            AccessKind::Atomic {
                kind: AtomKind::Exch,
                scope: Scope::Device,
            },
            LOCK_BASE + 4 * u64::from(lock),
            true,
        );
        self.warps[w].held.retain(|&l| l != lock);
        self.owner[lock as usize] = None;
    }

    fn random_held(&mut self) -> Option<(usize, u32)> {
        let holders: Vec<usize> = (0..self.warps.len())
            .filter(|&i| !self.warps[i].held.is_empty())
            .collect();
        if holders.is_empty() {
            return None;
        }
        let w = holders[self.rng.below(holders.len() as u64) as usize];
        let held = &self.warps[w].held;
        let lock = held[self.rng.below(held.len() as u64) as usize];
        Some((w, lock))
    }

    /// An in-critical-section access to the guard word of a held lock.
    fn critical_access(&mut self) {
        let Some((w, lock)) = self.random_held() else {
            self.plain_access();
            return;
        };
        let kind = self.load_or_store();
        self.emit_access(w, kind, GUARD_BASE + 4 * u64::from(lock), true);
    }

    /// The classic lockset violation: an access to some lock's guard
    /// word *without* holding the lock. Only fires as an injected wrong
    /// decision; otherwise it degrades to a plain access.
    fn rogue_guard_access(&mut self) {
        if !self.wrong() {
            self.plain_access();
            return;
        }
        let w = self.pick_warp();
        let lock = self.rng.below(u64::from(self.cfg.locks));
        let kind = self.load_or_store();
        self.emit_access(w, kind, GUARD_BASE + 4 * lock, true);
    }

    fn barrier(&mut self) {
        let w = self.pick_warp();
        let who = self.warps[w].who;
        self.trace.push(TraceEvent::Barrier {
            sm: who.sm,
            block_slot: who.block_slot,
        });
    }

    /// Store payload, fence, `atomicExch` a flag; a second warp then
    /// polls the flag atomically and reads the payload — the suite's
    /// `grid_sync` publication shape. Correct rounds take a fresh
    /// payload/flag slot; wrong decisions reuse a slot from the small
    /// pool (write-after-read conflicts), mis-scope or drop the fence,
    /// weaken the payload accesses, or publish the flag with a plain
    /// store instead of an atomic.
    fn producer_consumer(&mut self) {
        let (Some(p), Some(c)) = (self.pick_free_warp(), self.pick_free_warp()) else {
            self.plain_access();
            return;
        };
        let slot = if self.wrong() {
            self.rng.below(u64::from(self.cfg.flags))
        } else {
            let s = self.pub_next;
            self.pub_next += 1;
            s
        };
        let payload = PUB_BASE + 4 * slot;
        let flag = FLAG_BASE + 4 * slot;
        let strong_payload = !self.wrong();
        self.emit_access(p, AccessKind::Store, payload, strong_payload);
        self.sync_fence(p);
        if self.wrong() {
            self.emit_access(p, AccessKind::Store, flag, true);
        } else {
            self.emit_access(
                p,
                AccessKind::Atomic {
                    kind: AtomKind::Exch,
                    scope: Scope::Device,
                },
                flag,
                true,
            );
        }
        self.emit_access(
            c,
            AccessKind::Atomic {
                kind: AtomKind::Other,
                scope: Scope::Device,
            },
            flag,
            true,
        );
        self.emit_access(c, AccessKind::Load, payload, strong_payload);
    }

    /// Kernel boundary: device-wide synchronisation. All locks drop and
    /// every warp slot is reassigned for the next launch.
    fn kernel_boundary(&mut self) {
        self.trace.push(TraceEvent::KernelBoundary);
        for warp in &mut self.warps {
            warp.held.clear();
        }
        for o in &mut self.owner {
            *o = None;
        }
        self.assign_all_warps();
    }

    /// Reassigns one warp slot mid-kernel: a fresh incarnation reuses
    /// the hardware slot (ScoRD then aliases it to the old one in
    /// program order) but gets a fresh private range. Held locks are
    /// abandoned, not released.
    fn reassign_warp(&mut self) {
        let w = self.pick_warp();
        for &lock in &self.warps[w].held {
            self.owner[lock as usize] = None;
        }
        self.warps[w].held.clear();
        self.warps[w].inc += 1;
        let who = self.warps[w].who;
        self.trace.push(TraceEvent::WarpAssigned {
            sm: who.sm,
            warp_slot: who.warp_slot,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleDetector;
    use crate::{Detector, DetectorConfig, ScordDetector};

    #[test]
    fn deterministic_per_seed() {
        let cfg = FuzzConfig::default();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a.to_text(), b.to_text());
        let c = cfg.generate(43);
        assert_ne!(a.to_text(), c.to_text(), "different seeds diverge");
    }

    #[test]
    fn round_trips_through_text() {
        let trace = FuzzConfig::default().generate(7);
        let text = trace.to_text();
        let back = Trace::from_text(&text).expect("generated traces parse");
        assert_eq!(trace.events(), back.events());
    }

    #[test]
    fn replays_cleanly_into_scord() {
        let trace = FuzzConfig::default().generate(11);
        let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
        trace
            .replay(&mut det)
            .expect("fuzz traces satisfy the geometry invariants");
    }

    #[test]
    fn race_free_config_is_clean_under_scord_and_oracle() {
        // race_pct 0: every fence device-scoped, every access strong,
        // guard words only touched under their lock, publication via
        // fresh slots and atomic flags. Neither the lossy detector nor
        // the precise oracle should report anything.
        let cfg = FuzzConfig {
            race_pct: 0,
            events: 400,
            ..FuzzConfig::default()
        };
        for seed in 0..8 {
            let trace = cfg.generate(seed);
            let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
            trace.replay(&mut det).expect("valid trace");
            assert_eq!(
                det.races().unique_count(),
                0,
                "seed {seed}: ScoRD must be clean on a well-synchronised trace"
            );
            let mut oracle = OracleDetector::new(DetectorConfig::paper_default(1 << 20).geometry);
            trace.replay(&mut oracle).expect("valid trace");
            assert_eq!(
                oracle.races().unique_count(),
                0,
                "seed {seed}: oracle must be clean on a well-synchronised trace"
            );
        }
    }

    #[test]
    fn racey_config_produces_races() {
        let cfg = FuzzConfig {
            race_pct: 60,
            ..FuzzConfig::default()
        };
        let mut total = 0;
        for seed in 0..8 {
            let trace = cfg.generate(seed);
            let mut oracle = OracleDetector::new(DetectorConfig::paper_default(1 << 20).geometry);
            trace.replay(&mut oracle).expect("valid trace");
            total += oracle.races().unique_count();
        }
        assert!(total > 0, "high injection rate must surface races");
    }

    #[test]
    fn respects_geometry_bounds() {
        let cfg = FuzzConfig {
            sms: 15,
            blocks_per_sm: 8,
            warps_per_block: 4,
            ..FuzzConfig::default()
        };
        let trace = cfg.generate(3);
        for ev in trace.events() {
            if let TraceEvent::Access(a) = ev {
                assert!(a.who.sm < 15);
                assert!(a.who.block_slot / 8 == a.who.sm);
                assert!(a.who.warp_slot < 32);
                assert_eq!(a.addr % 4, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "blocks_per_sm")]
    fn rejects_oversized_geometry() {
        let cfg = FuzzConfig {
            blocks_per_sm: 9,
            ..FuzzConfig::default()
        };
        let _ = cfg.generate(0);
    }
}
