//! Bounded exploration of a trace's warp-schedule space.
//!
//! A captured [`Trace`] is one interleaving of per-warp-slot event
//! sequences — the schedule the simulator's warp scheduler happened to
//! pick. Following GPUMC's stateless model checking of GPU interleavings,
//! this module treats the trace as a *partial* order and replays it under
//! systematically varied schedules, using the exact scoped-HB oracle
//! ([`crate::OracleDetector`]) as the per-interleaving judge: every race
//! the explorer reports comes with a concrete witness schedule that is a
//! valid reordering of the captured execution.
//!
//! ## The schedule model
//!
//! [`ScheduleSpace`] decomposes a trace into mandatory-order constraints;
//! any topological order of the resulting DAG is a *valid schedule*:
//!
//! * **slot chains** — events of one hardware warp slot (accesses, fences
//!   and `WarpAssigned` reassignments, across incarnations) stay in
//!   program order: a hardware slot is sequential;
//! * **barrier cuts** — a `Barrier` event for block *b* is blocking
//!   synchronization: no slot currently mapped to *b* (or not yet mapped
//!   to any block — it may still join *b*, exactly the oracle's
//!   block-legacy rule) may move an event across it in either direction;
//! * **kernel cuts** — a `KernelBoundary` is a device-wide cut: no event
//!   of any slot crosses it.
//!
//! Everything else — in particular the order between *different* slots'
//! events, including fence release/acquire and same-location atomic
//! orders — is a schedule artifact the explorer is free to vary. That is
//! deliberately value-blind: the trace records no loaded values, so a
//! flag poll scheduled before its producer's publication is a valid
//! schedule here even though the real consumer would have spun longer.
//! The predictive backend ([`crate::predict`]) names the cases where that
//! blindness matters (e.g. lock-mutual-exclusion) and the harness audit
//! requires every reported race to carry a concrete witness schedule, so
//! the model's reach and its limits are both measured rather than
//! assumed.
//!
//! ## Determinism
//!
//! Schedule generation draws only from a caller-seeded [`SplitMix64`];
//! the ready set is kept in ascending event order, so `(trace, seed,
//! bound)` reproduces the identical schedule sequence — and therefore the
//! identical race verdicts — on any host.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::fault::SplitMix64;
use crate::{Geometry, OracleDetector, ReplayError, Trace, TraceEvent};

/// Race identity used across schedules: `(addr, pc, block_slot,
/// warp_slot)` of the access that exposed the race — the same key the
/// differential audit uses, so explorer findings line up with the diff
/// taxonomy.
pub type RaceKey = (u64, u32, u8, u8);

/// A valid reordering of a trace: position `k` of the schedule runs the
/// original trace's event `order[k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<u32>,
}

impl Schedule {
    /// The identity schedule over `n` events (the captured interleaving).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Schedule {
            order: (0..n as u32).collect(),
        }
    }

    /// Original event index executed at each schedule position.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Schedule length (equals the trace length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for the empty schedule.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Position of original event `idx` within this schedule.
    #[must_use]
    pub fn position_of(&self, idx: usize) -> usize {
        self.order
            .iter()
            .position(|&e| e as usize == idx)
            .expect("event index within schedule")
    }

    /// A 64-bit fingerprint of the event order, for deduplication: two
    /// schedules that execute events in the same sequence hash equal.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &e in &self.order {
            h ^= u64::from(e).wrapping_add(0x2545_F491_4F6C_DD1D);
            h = h.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        h
    }

    /// The trace this schedule executes: `trace`'s events, permuted.
    #[must_use]
    pub fn apply(&self, trace: &Trace) -> Trace {
        self.order
            .iter()
            .map(|&e| trace.events()[e as usize])
            .collect()
    }
}

/// The mandatory-order DAG of one trace (see the module docs for the
/// constraint model). Shared by the bounded explorer and the predictive
/// detector's witness construction.
#[derive(Debug)]
pub struct ScheduleSpace {
    /// Mandatory predecessors per event.
    preds: Vec<Vec<u32>>,
    /// Mandatory successors per event (the transpose of `preds`).
    succs: Vec<Vec<u32>>,
}

impl ScheduleSpace {
    /// Builds the mandatory-order DAG for `trace`.
    #[must_use]
    pub fn new(trace: &Trace) -> Self {
        let n = trace.events().len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Last emitted constraint node per slot `(sm, warp_slot)`.
        let mut slot_last: HashMap<(u8, u8), u32> = HashMap::new();
        // Block each slot is currently mapped to (learned from accesses,
        // like the oracle's per-thread block field).
        let mut slot_block: HashMap<(u8, u8), u8> = HashMap::new();
        let link = |preds: &mut Vec<Vec<u32>>,
                    slot_last: &mut HashMap<(u8, u8), u32>,
                    slot: (u8, u8),
                    idx: u32| {
            if let Some(&p) = slot_last.get(&slot) {
                preds[idx as usize].push(p);
            }
            slot_last.insert(slot, idx);
        };
        for (i, ev) in trace.events().iter().enumerate() {
            let i = i as u32;
            match *ev {
                TraceEvent::Access(a) => {
                    let slot = (a.who.sm, a.who.warp_slot);
                    link(&mut preds, &mut slot_last, slot, i);
                    slot_block.insert(slot, a.who.block_slot);
                }
                TraceEvent::Fence { sm, warp_slot, .. }
                | TraceEvent::WarpAssigned { sm, warp_slot } => {
                    link(&mut preds, &mut slot_last, (sm, warp_slot), i);
                    if matches!(ev, TraceEvent::WarpAssigned { .. }) {
                        // A fresh incarnation has no block yet; it may
                        // still join any block of its SM.
                        slot_block.remove(&(sm, warp_slot));
                    }
                }
                TraceEvent::Barrier { sm, block_slot } => {
                    // Cut every slot that is (or may still become) a
                    // member of this block: mapped slots by their learned
                    // block, unmapped slots of the same SM by the
                    // oracle's block-legacy rule.
                    let cut: Vec<(u8, u8)> = slot_last
                        .keys()
                        .copied()
                        .filter(|slot| match slot_block.get(slot) {
                            Some(&b) => b == block_slot,
                            None => slot.0 == sm,
                        })
                        .collect();
                    for slot in cut {
                        link(&mut preds, &mut slot_last, slot, i);
                    }
                    // The barrier itself anchors the block's slot chains:
                    // future events of member slots order after it.
                    slot_last.insert((sm, 0xFF), i);
                    // Re-route: every member slot's chain now passes
                    // through the barrier node.
                    let members: Vec<(u8, u8)> = slot_block
                        .iter()
                        .filter(|(_, &b)| b == block_slot)
                        .map(|(&s, _)| s)
                        .collect();
                    for slot in members {
                        slot_last.insert(slot, i);
                    }
                    // Unmapped same-SM slots also resume after the cut.
                    let unmapped: Vec<(u8, u8)> = slot_last
                        .keys()
                        .copied()
                        .filter(|s| s.0 == sm && s.1 != 0xFF && !slot_block.contains_key(s))
                        .collect();
                    for slot in unmapped {
                        slot_last.insert(slot, i);
                    }
                }
                TraceEvent::KernelBoundary => {
                    // Global cut: everything so far precedes it, and every
                    // slot resumes after it.
                    let all: Vec<(u8, u8)> = slot_last.keys().copied().collect();
                    for slot in all {
                        link(&mut preds, &mut slot_last, slot, i);
                    }
                    slot_last.clear();
                    slot_last.insert((0xFF, 0xFF), i);
                    slot_block.clear();
                }
            }
            // Events with no slot history yet still order after the last
            // global cut, if any.
            if preds[i as usize].is_empty() {
                if let Some(&k) = slot_last.get(&(0xFF, 0xFF)) {
                    if k != i {
                        preds[i as usize].push(k);
                    }
                }
            }
            preds[i as usize].sort_unstable();
            preds[i as usize].dedup();
        }
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p as usize].push(i as u32);
            }
        }
        ScheduleSpace { preds, succs }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Mandatory predecessors of event `i`.
    #[must_use]
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.preds[i]
    }

    /// Whether `order` is a permutation of all events that respects every
    /// mandatory edge.
    #[must_use]
    pub fn is_valid(&self, schedule: &Schedule) -> bool {
        let n = self.len();
        if schedule.order.len() != n {
            return false;
        }
        let mut pos = vec![usize::MAX; n];
        for (k, &e) in schedule.order.iter().enumerate() {
            let e = e as usize;
            if e >= n || pos[e] != usize::MAX {
                return false;
            }
            pos[e] = k;
        }
        self.preds
            .iter()
            .enumerate()
            .all(|(i, ps)| ps.iter().all(|&p| pos[p as usize] < pos[i]))
    }

    /// `true` when event `from` mandatorily precedes event `to` in every
    /// valid schedule (DAG reachability).
    #[must_use]
    pub fn forces(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        // Events only point forward in original-trace order, so a simple
        // worklist over successors terminates.
        let mut seen = vec![false; self.len()];
        let mut work = vec![from as u32];
        while let Some(e) = work.pop() {
            for &s in &self.succs[e as usize] {
                let s = s as usize;
                if s == to {
                    return true;
                }
                if !seen[s] && s < to {
                    seen[s] = true;
                    work.push(s as u32);
                }
            }
        }
        false
    }

    /// A seeded random valid schedule: Kahn's algorithm picking uniformly
    /// among ready events. Deterministic in the RNG state.
    #[must_use]
    pub fn random(&self, rng: &mut SplitMix64) -> Schedule {
        self.schedule_by(
            |ready, rng| ready[rng.below(ready.len() as u64) as usize],
            rng,
        )
    }

    /// A schedule built by repeatedly asking `pick` to choose among the
    /// ready events (ascending original order). `pick` may consult the
    /// RNG; passing a closure that ignores it gives a deterministic
    /// targeted schedule.
    #[must_use]
    pub fn schedule_by(
        &self,
        mut pick: impl FnMut(&[u32], &mut SplitMix64) -> u32,
        rng: &mut SplitMix64,
    ) -> Schedule {
        let n = self.len();
        let mut missing: Vec<u32> = self.preds.iter().map(|p| p.len() as u32).collect();
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&i| missing[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while !ready.is_empty() {
            let e = pick(&ready, rng);
            let at = ready.iter().position(|&r| r == e).expect("picked ready");
            ready.remove(at);
            order.push(e);
            for &s in &self.succs[e as usize] {
                missing[s as usize] -= 1;
                if missing[s as usize] == 0 {
                    let at = ready.partition_point(|&r| r < s);
                    ready.insert(at, s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "mandatory-order DAG must be acyclic");
        Schedule { order }
    }
}

/// How many interleavings to explore and from which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Schedule bound: how many interleavings (beyond the captured one)
    /// to generate. Duplicates — by fingerprint — are skipped, so small
    /// schedule spaces cost less than the bound suggests.
    pub bound: u32,
    /// Root seed for schedule generation.
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { bound: 64, seed: 1 }
    }
}

/// Where a race key was first witnessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Index of the witnessing schedule (0 = the captured interleaving).
    pub schedule: usize,
    /// Fingerprint of the witnessing schedule.
    pub fingerprint: u64,
}

/// Result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Events per interleaving (the trace length).
    pub events: usize,
    /// Interleavings actually replayed (after fingerprint dedup),
    /// including the captured one.
    pub schedules_run: usize,
    /// Distinct schedule fingerprints seen (equals `schedules_run`).
    pub distinct: usize,
    /// Oracle race keys of the captured interleaving.
    pub baseline: BTreeSet<RaceKey>,
    /// Every race key found across all interleavings, with its first
    /// witness schedule.
    pub found: BTreeMap<RaceKey, Witness>,
}

impl ExploreOutcome {
    /// Keys found only under a reordered schedule — what exploration adds
    /// over judging the captured interleaving alone.
    #[must_use]
    pub fn beyond_baseline(&self) -> BTreeSet<RaceKey> {
        self.found
            .keys()
            .filter(|k| !self.baseline.contains(k))
            .copied()
            .collect()
    }
}

/// Oracle race keys of one trace (later access of each detailed race).
///
/// # Errors
///
/// Returns the [`ReplayError`] if the trace does not replay under
/// `geometry`.
pub fn oracle_keys(trace: &Trace, geometry: Geometry) -> Result<BTreeSet<RaceKey>, ReplayError> {
    let mut oracle = OracleDetector::new(geometry);
    trace.replay(&mut oracle)?;
    let acc = oracle.accesses();
    Ok(oracle
        .detailed_races()
        .iter()
        .map(|r| {
            let y = &acc[r.later];
            (
                y.access.addr,
                y.access.pc,
                y.access.who.block_slot,
                y.access.who.warp_slot,
            )
        })
        .collect())
}

/// Replays `trace` under up to `cfg.bound` seeded schedule perturbations
/// (plus the captured interleaving), judging each with a fresh oracle.
///
/// Deterministic in `(trace, geometry, cfg)`.
///
/// # Errors
///
/// Returns the first [`ReplayError`] — a reordered valid schedule replays
/// iff the original does, so an error here means the captured trace
/// itself is malformed for `geometry`.
pub fn explore(
    trace: &Trace,
    geometry: Geometry,
    cfg: &ExploreConfig,
) -> Result<ExploreOutcome, ReplayError> {
    let space = ScheduleSpace::new(trace);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut seen = BTreeSet::new();
    let mut found: BTreeMap<RaceKey, Witness> = BTreeMap::new();
    let mut schedules_run = 0;

    let identity = Schedule::identity(trace.len());
    let baseline = oracle_keys(trace, geometry)?;
    let fp0 = identity.fingerprint();
    seen.insert(fp0);
    schedules_run += 1;
    for &k in &baseline {
        found.insert(
            k,
            Witness {
                schedule: 0,
                fingerprint: fp0,
            },
        );
    }

    for i in 0..cfg.bound {
        let schedule = space.random(&mut rng);
        let fp = schedule.fingerprint();
        if !seen.insert(fp) {
            continue;
        }
        let permuted = schedule.apply(trace);
        let keys = oracle_keys(&permuted, geometry)?;
        schedules_run += 1;
        for k in keys {
            found.entry(k).or_insert(Witness {
                schedule: i as usize + 1,
                fingerprint: fp,
            });
        }
    }

    Ok(ExploreOutcome {
        events: trace.len(),
        schedules_run,
        distinct: seen.len(),
        baseline,
        found,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, Accessor, AtomKind, MemAccess};
    use scord_isa::Scope;

    fn acc(block: u8, warp: u8) -> Accessor {
        Accessor {
            sm: block / 8,
            block_slot: block,
            warp_slot: warp,
        }
    }

    fn store(addr: u64, pc: u32, who: Accessor) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            kind: AccessKind::Store,
            addr,
            strong: true,
            pc,
            who,
        })
    }

    fn load(addr: u64, pc: u32, who: Accessor) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            kind: AccessKind::Load,
            addr,
            strong: true,
            pc,
            who,
        })
    }

    fn geometry() -> Geometry {
        Geometry::paper_default()
    }

    /// Producer publishes with a device fence and an atomic flag; the
    /// consumer polls the flag and reads the payload. Race-free as
    /// captured, but the fence edge is a schedule artifact.
    fn publication_trace() -> Trace {
        let p = acc(0, 0);
        let c = acc(8, 0);
        vec![
            store(0x100, 1, p),
            TraceEvent::Fence {
                sm: 0,
                warp_slot: 0,
                scope: Scope::Device,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Atomic {
                    kind: AtomKind::Exch,
                    scope: Scope::Device,
                },
                addr: 0x200,
                strong: true,
                pc: 2,
                who: p,
            }),
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Atomic {
                    kind: AtomKind::Other,
                    scope: Scope::Device,
                },
                addr: 0x200,
                strong: true,
                pc: 3,
                who: c,
            }),
            load(0x100, 4, c),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn identity_schedule_is_valid() {
        let t = publication_trace();
        let space = ScheduleSpace::new(&t);
        assert!(space.is_valid(&Schedule::identity(t.len())));
    }

    #[test]
    fn random_schedules_are_valid_and_deterministic() {
        let t = crate::FuzzConfig::default().generate(5);
        let space = ScheduleSpace::new(&t);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..16 {
            let sa = space.random(&mut a);
            let sb = space.random(&mut b);
            assert!(space.is_valid(&sa));
            assert_eq!(sa, sb, "same seed, same schedule");
        }
        let mut c = SplitMix64::new(10);
        let first_a = space.random(&mut SplitMix64::new(9));
        let first_c = space.random(&mut c);
        assert_ne!(first_a, first_c, "different seeds diverge");
    }

    #[test]
    fn barrier_cuts_pin_participants() {
        // store by (0,0); barrier of block 0; load by (0,1). The load can
        // never be scheduled before the barrier, nor the store after it.
        let t: Trace = vec![
            store(0x100, 1, acc(0, 0)),
            load(0x40, 2, acc(0, 1)),
            TraceEvent::Barrier {
                sm: 0,
                block_slot: 0,
            },
            load(0x100, 3, acc(0, 1)),
        ]
        .into_iter()
        .collect();
        let space = ScheduleSpace::new(&t);
        assert!(space.forces(0, 2), "store precedes the barrier");
        assert!(space.forces(2, 3), "post-barrier load follows it");
        assert!(space.forces(0, 3), "transitively ordered through the cut");
        let mut rng = SplitMix64::new(3);
        for _ in 0..32 {
            let s = space.random(&mut rng);
            let pos_b = s.position_of(2);
            assert!(s.position_of(0) < pos_b && pos_b < s.position_of(3));
        }
    }

    #[test]
    fn kernel_cut_is_global() {
        let t: Trace = vec![
            store(0x100, 1, acc(0, 0)),
            TraceEvent::KernelBoundary,
            load(0x100, 2, acc(8, 0)),
        ]
        .into_iter()
        .collect();
        let space = ScheduleSpace::new(&t);
        assert!(space.forces(0, 1) && space.forces(1, 2));
    }

    #[test]
    fn cross_slot_events_are_reorderable() {
        let t = publication_trace();
        let space = ScheduleSpace::new(&t);
        // The consumer's poll (event 3) is not forced after the
        // producer's fence (event 1) — that order was a schedule
        // artifact.
        assert!(!space.forces(1, 3));
        assert!(!space.forces(3, 1));
        // But program order within each slot is mandatory.
        assert!(space.forces(0, 1) && space.forces(3, 4));
    }

    #[test]
    fn fingerprints_distinguish_orders() {
        let t = publication_trace();
        let space = ScheduleSpace::new(&t);
        let id = Schedule::identity(t.len());
        let mut rng = SplitMix64::new(1);
        let mut fps = BTreeSet::new();
        fps.insert(id.fingerprint());
        let mut distinct_orders = BTreeSet::new();
        distinct_orders.insert(id.order().to_vec());
        for _ in 0..64 {
            let s = space.random(&mut rng);
            distinct_orders.insert(s.order().to_vec());
            fps.insert(s.fingerprint());
        }
        assert_eq!(fps.len(), distinct_orders.len(), "fingerprint = order");
        assert!(fps.len() > 1, "the space has more than one schedule");
    }

    #[test]
    fn explorer_finds_the_publication_race() {
        // As captured, the publication idiom is race-free (fence +
        // atomic hand-off); under a reordered schedule the payload pair
        // races. The explorer must surface it with a witness.
        let t = publication_trace();
        let out = explore(
            &t,
            geometry(),
            &ExploreConfig {
                bound: 64,
                seed: 11,
            },
        )
        .unwrap();
        assert!(out.baseline.is_empty(), "captured interleaving is clean");
        let beyond = out.beyond_baseline();
        assert!(
            beyond.iter().any(|k| k.0 == 0x100),
            "payload race found under a reordered schedule: {beyond:?}"
        );
        let w = out.found[beyond.iter().find(|k| k.0 == 0x100).unwrap()];
        assert!(w.schedule > 0, "witness is a non-captured schedule");
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let t = crate::FuzzConfig::default().generate(21);
        let cfg = ExploreConfig { bound: 24, seed: 7 };
        let a = explore(&t, geometry(), &cfg).unwrap();
        let b = explore(&t, geometry(), &cfg).unwrap();
        assert_eq!(a.found, b.found);
        assert_eq!(a.schedules_run, b.schedules_run);
        assert_eq!(a.distinct, b.distinct);
    }

    #[test]
    fn fuzzed_schedules_replay_cleanly() {
        // Reordering must never break replayability: same events, same
        // geometry.
        let t = crate::FuzzConfig::default().generate(33);
        let space = ScheduleSpace::new(&t);
        let mut rng = SplitMix64::new(2);
        for _ in 0..8 {
            let s = space.random(&mut rng);
            assert!(space.is_valid(&s));
            let mut oracle = OracleDetector::new(geometry());
            s.apply(&t).replay(&mut oracle).expect("valid reordering");
        }
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::{AccessKind, Accessor, MemAccess};

    /// A warp slot that first appears *after* a barrier is not ordered by
    /// it: the mandatory-order DAG only ties a barrier to warps seen
    /// before it, so the explorer may legally schedule the late warp's
    /// access ahead of the pre-barrier store and surface the race the
    /// baseline schedule hides. Pins that behaviour (the "unseen-slot
    /// barrier cut") so a future DAG change that silently starts forcing
    /// the edge — and stops finding these races — fails loudly.
    #[test]
    fn probe_unseen_slot_barrier_cut() {
        let t: Trace = vec![
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Store,
                addr: 0x100,
                strong: true,
                pc: 1,
                who: Accessor {
                    sm: 0,
                    block_slot: 0,
                    warp_slot: 0,
                },
            }),
            TraceEvent::Barrier {
                sm: 0,
                block_slot: 0,
            },
            TraceEvent::Access(MemAccess {
                kind: AccessKind::Load,
                addr: 0x100,
                strong: true,
                pc: 2,
                who: Accessor {
                    sm: 0,
                    block_slot: 0,
                    warp_slot: 1,
                },
            }),
        ]
        .into_iter()
        .collect();
        let space = ScheduleSpace::new(&t);
        assert!(
            !space.forces(1, 2),
            "a barrier must not order a warp slot it never saw"
        );
        let out = explore(
            &t,
            Geometry::paper_default(),
            &ExploreConfig { bound: 64, seed: 3 },
        )
        .unwrap();
        assert!(
            out.baseline.is_empty(),
            "the as-recorded schedule orders store before load"
        );
        assert_eq!(
            out.beyond_baseline().len(),
            2,
            "reordering across the uncut barrier exposes both directions \
             of the store/load conflict"
        );
    }
}
