//! Baseline detectors for the capability comparison of Table VIII.
//!
//! The paper compares ScoRD against prior GPU race detectors. Two of them
//! are reproducible as *scope-erasing* variants of the same machinery:
//!
//! | Detector        | Fences | Locks | Scoped fences | Scoped atomics |
//! |-----------------|--------|-------|---------------|----------------|
//! | HAccRG-like     | ✓      | ✓     | ✗             | ✗              |
//! | Barracuda-like  | ✓      | ✓     | ✓             | ✗              |
//! | ScoRD           | ✓      | ✓     | ✓             | ✓              |
//!
//! (LDetector — value-snapshot diffing with no fence/atomic awareness — is
//! qualitatively different and is represented in the harness's Table VIII
//! output as a static row, as in the paper.)

use crate::{DetectorConfig, ScordDetector};

/// Which detector model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectorKind {
    /// Full ScoRD: scope-aware happens-before + scoped lockset.
    Scord,
    /// Barracuda/CURD-like: scoped fences honoured, atomic scopes ignored
    /// (every atomic treated as device scope).
    BarracudaLike,
    /// HAccRG-like: hardware happens-before with no scope awareness at all
    /// (fences and atomics both treated as device scope).
    HaccrgLike,
}

impl DetectorKind {
    /// All reproducible detector models.
    pub const ALL: [DetectorKind; 3] = [
        DetectorKind::Scord,
        DetectorKind::BarracudaLike,
        DetectorKind::HaccrgLike,
    ];

    /// Human-readable name matching Table VIII's rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Scord => "ScoRD",
            DetectorKind::BarracudaLike => "Barracuda-like",
            DetectorKind::HaccrgLike => "HAccRG-like",
        }
    }

    /// `true` if the model detects scoped-fence races.
    #[must_use]
    pub fn detects_scoped_fences(self) -> bool {
        !matches!(self, DetectorKind::HaccrgLike)
    }

    /// `true` if the model detects scoped-atomic races.
    #[must_use]
    pub fn detects_scoped_atomics(self) -> bool {
        matches!(self, DetectorKind::Scord)
    }
}

/// Builds the detector model `kind` over `config`.
///
/// ```
/// use scord_core::{build_detector, Detector, DetectorConfig, DetectorKind};
/// let det = build_detector(DetectorKind::BarracudaLike,
///                          DetectorConfig::paper_default(1 << 20));
/// assert_eq!(det.races().unique_count(), 0);
/// ```
#[must_use]
pub fn build_detector(kind: DetectorKind, config: DetectorConfig) -> ScordDetector {
    match kind {
        DetectorKind::Scord => ScordDetector::new(config),
        DetectorKind::BarracudaLike => ScordDetector::with_scope_handling(config, true, false),
        DetectorKind::HaccrgLike => ScordDetector::with_scope_handling(config, true, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, Accessor, AtomKind, Detector, MemAccess};
    use scord_isa::Scope;

    fn acc(block: u8, sm: u8) -> Accessor {
        Accessor {
            sm,
            block_slot: block,
            warp_slot: 0,
        }
    }

    /// Two blocks exchange through a block-scoped atomic — a scoped-atomic
    /// race only ScoRD sees.
    fn scoped_atomic_race(det: &mut ScordDetector) -> usize {
        det.on_access(&MemAccess {
            kind: AccessKind::Atomic {
                kind: AtomKind::Other,
                scope: Scope::Block,
            },
            addr: 0x40,
            strong: true,
            pc: 1,
            who: acc(0, 0),
        })
        .unwrap();
        det.on_access(&MemAccess {
            kind: AccessKind::Atomic {
                kind: AtomKind::Other,
                scope: Scope::Block,
            },
            addr: 0x40,
            strong: true,
            pc: 2,
            who: acc(8, 1),
        })
        .unwrap();
        det.races().unique_count()
    }

    /// Producer publishes with only a block-scope fence, consumer is in
    /// another block — a scoped-fence race Barracuda-like also sees.
    fn scoped_fence_race(det: &mut ScordDetector) -> usize {
        det.on_access(&MemAccess {
            kind: AccessKind::Store,
            addr: 0x80,
            strong: true,
            pc: 3,
            who: acc(0, 0),
        })
        .unwrap();
        det.on_fence(0, 0, Scope::Block).unwrap();
        det.on_access(&MemAccess {
            kind: AccessKind::Load,
            addr: 0x80,
            strong: true,
            pc: 4,
            who: acc(8, 1),
        })
        .unwrap();
        det.races().unique_count()
    }

    #[test]
    fn scord_catches_both_scoped_races() {
        let mut det = build_detector(DetectorKind::Scord, DetectorConfig::paper_default(1 << 20));
        assert_eq!(scoped_atomic_race(&mut det), 1);
        assert_eq!(scoped_fence_race(&mut det), 2);
    }

    #[test]
    fn barracuda_like_misses_scoped_atomics_only() {
        let mut det = build_detector(
            DetectorKind::BarracudaLike,
            DetectorConfig::paper_default(1 << 20),
        );
        assert_eq!(scoped_atomic_race(&mut det), 0, "atomic scopes erased");
        assert_eq!(scoped_fence_race(&mut det), 1, "fence scopes honoured");
    }

    #[test]
    fn haccrg_like_misses_all_scoped_races() {
        let mut det = build_detector(
            DetectorKind::HaccrgLike,
            DetectorConfig::paper_default(1 << 20),
        );
        assert_eq!(scoped_atomic_race(&mut det), 0);
        assert_eq!(scoped_fence_race(&mut det), 0, "block fence looks global");
    }

    #[test]
    fn all_models_catch_plain_missing_sync() {
        for kind in DetectorKind::ALL {
            let mut det = build_detector(kind, DetectorConfig::paper_default(1 << 20));
            det.on_access(&MemAccess {
                kind: AccessKind::Store,
                addr: 0xC0,
                strong: true,
                pc: 5,
                who: acc(0, 0),
            })
            .unwrap();
            det.on_access(&MemAccess {
                kind: AccessKind::Load,
                addr: 0xC0,
                strong: true,
                pc: 6,
                who: acc(8, 1),
            })
            .unwrap();
            assert_eq!(
                det.races().unique_count(),
                1,
                "{} must catch unsynchronized sharing",
                kind.name()
            );
        }
    }

    #[test]
    fn capability_matrix_matches_table8() {
        assert!(DetectorKind::Scord.detects_scoped_fences());
        assert!(DetectorKind::Scord.detects_scoped_atomics());
        assert!(DetectorKind::BarracudaLike.detects_scoped_fences());
        assert!(!DetectorKind::BarracudaLike.detects_scoped_atomics());
        assert!(!DetectorKind::HaccrgLike.detects_scoped_fences());
        assert!(!DetectorKind::HaccrgLike.detects_scoped_atomics());
    }
}
