//! Detector configuration.

use crate::FaultPlan;

/// Hardware geometry the detector's tables are sized for.
///
/// Matches Table V of the paper by default: 15 SMs, 8 resident blocks per SM,
/// 32 warp slots per SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Resident threadblock slots per SM.
    pub blocks_per_sm: u32,
    /// Hardware warp slots per SM.
    pub warps_per_sm: u32,
}

impl Geometry {
    /// The paper's default geometry (Table V).
    #[must_use]
    pub fn paper_default() -> Self {
        Geometry {
            num_sms: 15,
            blocks_per_sm: 8,
            warps_per_sm: 32,
        }
    }

    /// Total hardware block slots.
    #[must_use]
    pub fn total_block_slots(&self) -> u32 {
        self.num_sms * self.blocks_per_sm
    }

    /// Total hardware warp slots (the fence file size).
    #[must_use]
    pub fn total_warp_slots(&self) -> u32 {
        self.num_sms * self.warps_per_sm
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

/// How per-location metadata is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// One entry per `granularity`-byte granule of device memory.
    ///
    /// `granularity = 4` is the paper's base design (200% memory overhead);
    /// 8 and 16 are the coarser variants of Table VII (100% / 50% overhead,
    /// trading false positives for space).
    Full {
        /// Bytes of data covered by one entry.
        granularity: u64,
    },
    /// The paper's software cache: a direct-mapped store with one entry per
    /// `ratio` 4-byte granules, disambiguated by a 4-bit tag (12.5% overhead
    /// at the default `ratio = 16`). Aliasing granules overwrite each other,
    /// which can cause (rare) false negatives but never false positives.
    Cached {
        /// Granules sharing one entry slot.
        ratio: u64,
    },
}

impl StoreKind {
    /// Metadata memory overhead as a fraction of tracked data size.
    ///
    /// ```
    /// use scord_core::StoreKind;
    /// assert_eq!(StoreKind::Full { granularity: 4 }.overhead_fraction(), 2.0);
    /// assert_eq!(StoreKind::Cached { ratio: 16 }.overhead_fraction(), 0.125);
    /// ```
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        match *self {
            StoreKind::Full { granularity } => 8.0 / granularity as f64,
            StoreKind::Cached { ratio } => 8.0 / (4.0 * ratio as f64),
        }
    }
}

/// Full configuration of a [`crate::ScordDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Hardware geometry.
    pub geometry: Geometry,
    /// Metadata organisation.
    pub store: StoreKind,
    /// Size of the tracked device-memory region in bytes.
    pub mem_bytes: u64,
    /// Base physical address of the metadata region (used only for timing
    /// attribution of metadata traffic).
    pub metadata_base: u64,
    /// Entries in each per-warp lock table (4 in the paper).
    pub lock_table_entries: usize,
    /// Maximum number of full race records retained (unique counting is
    /// unaffected).
    pub max_race_records: usize,
    /// Optional fault-injection campaign. `None` (the default) costs one
    /// branch per event on the hot path.
    pub fault: Option<FaultPlan>,
}

impl DetectorConfig {
    /// The paper's default: cached store at ratio 16, 4-entry lock tables.
    #[must_use]
    pub fn paper_default(mem_bytes: u64) -> Self {
        DetectorConfig {
            geometry: Geometry::paper_default(),
            store: StoreKind::Cached { ratio: 16 },
            mem_bytes,
            metadata_base: mem_bytes, // metadata region sits after data
            lock_table_entries: 4,
            max_race_records: 4096,
            fault: None,
        }
    }

    /// The same configuration with a fault-injection plan armed.
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        DetectorConfig {
            fault: Some(plan),
            ..self
        }
    }

    /// The base design without metadata caching (4-byte granularity,
    /// 200% overhead) — the first bar of Figures 8/9 and Table VI's
    /// "Base design w/o metadata caching" column.
    #[must_use]
    pub fn base_design(mem_bytes: u64) -> Self {
        DetectorConfig {
            store: StoreKind::Full { granularity: 4 },
            ..Self::paper_default(mem_bytes)
        }
    }

    /// A coarse-granularity variant for the Table VII sweep.
    #[must_use]
    pub fn with_granularity(mem_bytes: u64, granularity: u64) -> Self {
        DetectorConfig {
            store: StoreKind::Full { granularity },
            ..Self::paper_default(mem_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table5() {
        let g = Geometry::paper_default();
        assert_eq!(g.total_block_slots(), 120);
        assert_eq!(g.total_warp_slots(), 480);
    }

    #[test]
    fn overheads_match_table7() {
        assert_eq!(
            StoreKind::Full { granularity: 4 }.overhead_fraction(),
            2.0,
            "200%"
        );
        assert_eq!(
            StoreKind::Full { granularity: 8 }.overhead_fraction(),
            1.0,
            "100%"
        );
        assert_eq!(
            StoreKind::Full { granularity: 16 }.overhead_fraction(),
            0.5,
            "50%"
        );
        assert_eq!(
            StoreKind::Cached { ratio: 16 }.overhead_fraction(),
            0.125,
            "12.5%"
        );
    }

    #[test]
    fn config_constructors() {
        let c = DetectorConfig::paper_default(1 << 20);
        assert_eq!(c.store, StoreKind::Cached { ratio: 16 });
        assert_eq!(c.lock_table_entries, 4);
        let b = DetectorConfig::base_design(1 << 20);
        assert_eq!(b.store, StoreKind::Full { granularity: 4 });
        let g8 = DetectorConfig::with_granularity(1 << 20, 8);
        assert_eq!(g8.store, StoreKind::Full { granularity: 8 });
    }
}
