//! # scord-core
//!
//! The ScoRD scoped race detector (Kamath, George & Basu, *ScoRD: A Scoped
//! Race Detector for GPUs*, ISCA 2020), reimplemented as a library.
//!
//! ScoRD detects global-memory races in GPU programs — including *scoped
//! races*, where a synchronization operation exists but its scope does not
//! cover both the producer and the consumer. It combines:
//!
//! * **happens-before detection** extended with scopes, using per-location
//!   metadata ([`MetadataEntry`]) and a per-warp fence file ([`FenceFile`]),
//!   to catch races due to insufficiently-scoped atomics and fences or
//!   missing synchronization, and
//! * **lockset detection** extended with scopes, inferring lock/unlock from
//!   `atomicCAS`+fence / fence+`atomicExch` pairs ([`LockTable`]) and
//!   intersecting 16-bit lock bloom filters.
//!
//! The detector is driven by a stream of [`MemAccess`] / fence / barrier
//! events. In this repository the stream comes from the `scord-sim` GPU
//! simulator, but the crate is self-contained: any driver producing the event
//! types can use it (see the doc example on [`ScordDetector`]).
//!
//! Metadata can live in a full per-granule layout or in the paper's
//! direct-mapped software cache that cuts the memory overhead from 200% to
//! 12.5% ([`StoreKind`]); the scope-blind baseline detectors of the paper's
//! Table VIII are available through [`build_detector`].

#![warn(missing_docs)]

mod baselines;
mod config;
mod detector;
mod error;
mod event;
pub mod explore;
pub mod fault;
mod fence_file;
mod flat;
pub mod fuzz;
mod lock_table;
mod metadata;
pub mod oracle;
pub mod predict;
mod report;
mod store;
mod trace;
pub mod wire;

pub use baselines::{build_detector, DetectorKind};
pub use config::{DetectorConfig, Geometry, StoreKind};
pub use detector::{AccessEffects, Detector, ScordDetector};
pub use error::DetectorError;
pub use event::{AccessKind, Accessor, AtomKind, ItsAccess, MemAccess};
pub use explore::{ExploreConfig, ExploreOutcome, RaceKey, Schedule, ScheduleSpace};
pub use fault::{
    EventAction, FaultInjector, FaultKind, FaultKindSet, FaultPlan, FaultStats, SplitMix64,
};
pub use fence_file::{FenceCounters, FenceFile};
pub use flat::FlatMap;
pub use fuzz::FuzzConfig;
pub use lock_table::{bloom_bit, lock_hash, LockTable, LockTables};
pub use metadata::{MetadataEntry, BLOCK_ID_BITS, WARP_ID_BITS};
pub use oracle::{OracleAccess, OracleDetector, OracleRace, OrderReason, VectorClock};
pub use predict::{PredictConfig, PredictOutcome, PredictWitness, Prediction, PredictionClass};
pub use report::{RaceKind, RaceLog, RaceReport};
pub use store::{
    build_reference_store, build_store, CachedStore, FullStore, MetadataLookup, MetadataStore,
    ReferenceCachedStore, ReferenceFullStore,
};
pub use trace::{ParseTraceError, RecordingDetector, ReplayError, Trace, TraceEvent};
pub use wire::{Frame, FrameAssembler, FrameCorruptor, FrameType, WireError};
