//! The ScoRD detection pipeline (paper §IV-A).
//!
//! Per global-memory access the detector:
//!
//! 1. loads the metadata entry covering the address,
//! 2. runs the **preliminary checks** (Table III) that filter trivially
//!    race-free accesses — first touch after (re-)initialization, program
//!    order within one warp, or a barrier separating same-block accesses,
//! 3. if those fail, runs the **happens-before checks** (Table IV (a)–(d))
//!    against the fence file and the **lockset check** (Table IV (e)/(f))
//!    against the lock bloom filters, and
//! 4. unconditionally updates the metadata with the latest access.
//!
//! Metadata update discipline (reconciling §IV-A with Figure 7): every access
//! refreshes the accessor identity, fence/barrier snapshots and lock bloom;
//! stores and atomics *set* `Modified` while loads *clear* it. Clearing on
//! loads is what makes a once-published value readable by many consumers
//! without false positives — the first reader is checked against the writer,
//! after which the location is in a read-only epoch until the next store.

use scord_isa::Scope;

use crate::{
    build_store, AccessKind, Accessor, AtomKind, DetectorConfig, DetectorError, FaultInjector,
    FaultKind, FaultStats, FenceCounters, FenceFile, LockTables, MemAccess, MetadataStore,
    RaceKind, RaceLog, RaceReport, Trace,
};

/// Per-access outcome, consumed by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEffects {
    /// Metadata-region byte address read and written for this access.
    pub md_addr: u64,
    /// The metadata lookup found no usable entry (never-touched, or a tag
    /// mismatch in the cached store).
    pub md_fresh: bool,
    /// The preliminary checks classified the access as trivially race-free.
    pub prelim_pass: bool,
    /// Number of races reported by this access (0–2: one happens-before,
    /// one lockset).
    pub races: u8,
}

/// A race detector attachable to the simulator.
///
/// All detectors consume the same event stream; the baselines of Table VIII
/// are scope-erasing wrappers around [`ScordDetector`].
///
/// Every event-facing method validates its inputs against the configured
/// geometry and returns a [`DetectorError`] for malformed events — the
/// detector must survive a corrupted event stream without panicking or
/// silently aliasing one warp's state into another's.
///
/// Detectors are `Send`: a [`crate::ScordDetector`] (and the Table VIII
/// baselines wrapping it) travels with its GPU when simulations are sharded
/// across host threads.
pub trait Detector: std::fmt::Debug + Send {
    /// A barrier (`__syncthreads`) completed for the block in `block_slot`.
    fn on_barrier(&mut self, sm: u8, block_slot: u8) -> Result<(), DetectorError>;

    /// A warp executed a scoped fence.
    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) -> Result<(), DetectorError>;

    /// A warp slot was (re)assigned to a fresh threadblock — clears its
    /// inferred-lock state.
    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) -> Result<(), DetectorError>;

    /// One lane's global-memory access.
    fn on_access(&mut self, access: &MemAccess) -> Result<AccessEffects, DetectorError>;

    /// The accumulated race buffer.
    fn races(&self) -> &RaceLog;

    /// Clears all detector state (metadata, fence file, lock tables,
    /// barrier counters and the race log) for a fresh run.
    fn reset(&mut self);

    /// A kernel launch boundary: a device-wide synchronization point.
    ///
    /// Resets metadata and hardware sync state so accesses from the previous
    /// kernel cannot produce false conflicts, but keeps the accumulated race
    /// log (one application may span several kernels).
    fn on_kernel_boundary(&mut self);

    /// Fault-injection counters, when the detector runs under a
    /// [`crate::FaultPlan`]. `None` for detectors without an injector.
    fn fault_stats(&self) -> Option<&FaultStats> {
        None
    }

    /// The event trace accumulated so far, for detectors that record one
    /// (see [`crate::RecordingDetector`]). `None` for non-recording
    /// detectors.
    fn trace(&self) -> Option<&Trace> {
        None
    }

    /// `(host-heap bytes, live entries)` of the metadata store backing
    /// this detector, for the paper-scale footprint tracker. `None` for
    /// detectors whose store does not account for itself (the Table VIII
    /// scope-erasing baselines inherit [`ScordDetector`]'s accounting).
    fn store_usage(&self) -> Option<(u64, u64)> {
        None
    }
}

/// The ScoRD detector.
///
/// ```
/// use scord_core::{
///     AccessKind, Accessor, Detector, DetectorConfig, MemAccess, ScordDetector,
/// };
///
/// let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
/// let writer = Accessor { sm: 0, block_slot: 0, warp_slot: 0 };
/// let reader = Accessor { sm: 1, block_slot: 8, warp_slot: 0 };
/// // A store in block 0 followed by a load in another block with no
/// // intervening device fence is a device-scope race.
/// det.on_access(&MemAccess {
///     kind: AccessKind::Store, addr: 0x100, strong: true, pc: 1, who: writer,
/// }).unwrap();
/// det.on_access(&MemAccess {
///     kind: AccessKind::Load, addr: 0x100, strong: true, pc: 2, who: reader,
/// }).unwrap();
/// assert_eq!(det.races().unique_count(), 1);
/// ```
#[derive(Debug)]
pub struct ScordDetector {
    config: DetectorConfig,
    store: Box<dyn MetadataStore>,
    fence_file: FenceFile,
    lock_tables: LockTables,
    barrier_ids: Vec<u8>,
    races: RaceLog,
    erase_atomic_scope: bool,
    erase_fence_scope: bool,
    injector: Option<FaultInjector>,
}

impl ScordDetector {
    /// Builds a detector for `config`.
    #[must_use]
    pub fn new(config: DetectorConfig) -> Self {
        Self::with_scope_handling(config, false, false)
    }

    /// Builds a detector for `config` that keeps its metadata in `store`
    /// instead of the one `config.store` describes. The store-equivalence
    /// suite uses this to replay identical traces through the flat
    /// production store and its `HashMap` reference twin
    /// (`build_reference_store`).
    #[must_use]
    pub fn with_store(config: DetectorConfig, store: Box<dyn MetadataStore>) -> Self {
        let mut d = Self::new(config);
        d.store = store;
        d
    }

    /// Builds a detector that optionally *erases* scope information, for the
    /// baseline detectors of Table VIII:
    ///
    /// * `erase_atomic_scope`: every atomic is treated as device-scoped
    ///   (Barracuda/CURD-like — scoped-atomic races are invisible);
    /// * `erase_fence_scope`: every fence is treated as device-scoped as
    ///   well (HAccRG-like — all scoped races are invisible).
    #[must_use]
    pub fn with_scope_handling(
        config: DetectorConfig,
        erase_atomic_scope: bool,
        erase_fence_scope: bool,
    ) -> Self {
        let store = build_store(config.store, config.metadata_base);
        ScordDetector {
            store,
            fence_file: FenceFile::new(config.geometry),
            lock_tables: LockTables::new(config.geometry, config.lock_table_entries),
            barrier_ids: vec![0; config.geometry.total_block_slots() as usize],
            races: RaceLog::new(config.max_race_records),
            erase_atomic_scope,
            erase_fence_scope,
            injector: config.fault.map(FaultInjector::new),
            config,
        }
    }

    /// The configuration this detector was built with.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Metadata footprint in bytes for the configured device-memory size.
    #[must_use]
    pub fn metadata_footprint_bytes(&self) -> u64 {
        self.store.footprint_bytes(self.config.mem_bytes)
    }

    /// Total detector hardware state in bits (fence file + lock tables +
    /// barrier counters), for the paper's §IV-C accounting (~2.9 KB).
    #[must_use]
    pub fn hardware_state_bits(&self) -> usize {
        self.fence_file.state_bits() + self.lock_tables.state_bits() + self.barrier_ids.len() * 8
    }

    fn effective_atomic_scope(&self, scope: Scope) -> Scope {
        if self.erase_atomic_scope {
            Scope::Device
        } else {
            scope
        }
    }

    fn effective_fence_scope(&self, scope: Scope) -> Scope {
        if self.erase_fence_scope {
            Scope::Device
        } else {
            scope
        }
    }

    fn sm_of_block_slot(&self, block_slot: u8) -> u8 {
        (u32::from(block_slot) / self.config.geometry.blocks_per_sm) as u8
    }

    fn validate_warp(&self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        let g = &self.config.geometry;
        if u32::from(sm) >= g.num_sms {
            return Err(DetectorError::SmOutOfRange {
                sm,
                num_sms: g.num_sms,
            });
        }
        if u32::from(warp_slot) >= g.warps_per_sm {
            return Err(DetectorError::WarpOutOfRange {
                warp_slot,
                warps_per_sm: g.warps_per_sm,
            });
        }
        Ok(())
    }

    fn validate_block(&self, sm: u8, block_slot: u8) -> Result<(), DetectorError> {
        let g = &self.config.geometry;
        if u32::from(sm) >= g.num_sms {
            return Err(DetectorError::SmOutOfRange {
                sm,
                num_sms: g.num_sms,
            });
        }
        if u32::from(block_slot) >= g.total_block_slots() {
            return Err(DetectorError::BlockOutOfRange {
                block_slot,
                total_block_slots: g.total_block_slots(),
            });
        }
        Ok(())
    }

    fn validate_accessor(&self, who: Accessor) -> Result<(), DetectorError> {
        self.validate_warp(who.sm, who.warp_slot)?;
        self.validate_block(who.sm, who.block_slot)?;
        // The global block slot must live on the claimed SM, or barriers and
        // fences would be charged to the wrong hardware.
        if self.sm_of_block_slot(who.block_slot) != who.sm {
            return Err(DetectorError::AccessorInconsistent {
                who,
                blocks_per_sm: self.config.geometry.blocks_per_sm,
            });
        }
        Ok(())
    }

    fn report(&mut self, kind: RaceKind, access: &MemAccess, md: crate::MetadataEntry) -> u8 {
        let same_block = md.block_id() == access.who.block_slot;
        self.races.record(RaceReport {
            kind,
            pc: access.pc,
            addr: access.addr,
            who: access.who,
            prev_block: md.block_id(),
            prev_warp: md.warp_id(),
            conflict_scope: if same_block {
                Scope::Block
            } else {
                Scope::Device
            },
        });
        1
    }
}

impl Detector for ScordDetector {
    fn on_barrier(&mut self, sm: u8, block_slot: u8) -> Result<(), DetectorError> {
        self.validate_block(sm, block_slot)?;
        let b = &mut self.barrier_ids[block_slot as usize];
        *b = b.wrapping_add(1);
        Ok(())
    }

    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) -> Result<(), DetectorError> {
        self.validate_warp(sm, warp_slot)?;
        let scope = self.effective_fence_scope(scope);
        self.fence_file.on_fence(sm, warp_slot, scope);
        self.lock_tables.table_mut(sm, warp_slot).on_fence(scope);
        if let Some(inj) = self.injector.as_mut() {
            if inj.trigger(FaultKind::FenceCorrupt) {
                let corrupted = FenceCounters {
                    blk: inj.pick(64) as u8,
                    dev: inj.pick(64) as u8,
                };
                self.fence_file.set_counters(sm, warp_slot, corrupted);
            }
        }
        Ok(())
    }

    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        self.validate_warp(sm, warp_slot)?;
        self.lock_tables.table_mut(sm, warp_slot).reset();
        Ok(())
    }

    fn on_access(&mut self, access: &MemAccess) -> Result<AccessEffects, DetectorError> {
        self.check_access(access, None)
    }

    fn races(&self) -> &RaceLog {
        &self.races
    }

    fn reset(&mut self) {
        self.store.reset();
        self.fence_file.reset();
        self.lock_tables.reset();
        self.barrier_ids.fill(0);
        self.races.reset();
        // A fresh injector stream, so back-to-back runs are identical.
        self.injector = self.config.fault.map(FaultInjector::new);
    }

    fn on_kernel_boundary(&mut self) {
        self.store.reset();
        self.fence_file.reset();
        self.lock_tables.reset();
        self.barrier_ids.fill(0);
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    fn store_usage(&self) -> Option<(u64, u64)> {
        Some((self.store.resident_bytes(), self.store.resident_entries()))
    }
}

impl ScordDetector {
    /// An access in Independent-Thread-Scheduling mode (paper §VI): the
    /// accessor's lane is recorded in the metadata's unused bits, and
    /// same-warp accesses by *different lanes during divergence* are
    /// treated as potential conflicts instead of program-ordered.
    pub fn on_access_its(
        &mut self,
        its: &crate::ItsAccess,
    ) -> Result<AccessEffects, DetectorError> {
        debug_assert!(its.lane < 32, "lane must be a warp lane index");
        self.check_access(&its.access, Some((its.lane, its.diverged)))
    }

    #[allow(clippy::too_many_lines)]
    fn check_access(
        &mut self,
        access: &MemAccess,
        its: Option<(u8, bool)>,
    ) -> Result<AccessEffects, DetectorError> {
        let who = access.who;
        self.validate_accessor(who)?;
        if !access.addr.is_multiple_of(4) {
            return Err(DetectorError::MisalignedAddress { addr: access.addr });
        }

        // Fault hook: an adversarial alias evicts the covering metadata
        // entry just before the lookup.
        if let Some(inj) = self.injector.as_mut() {
            if inj.trigger(FaultKind::MetadataEvict) {
                self.store.evict(access.addr);
            }
        }

        let mut bloom = self.lock_tables.table(who.sm, who.warp_slot).bloom();
        let cur_barrier = self.barrier_ids[who.block_slot as usize];
        let cur_fences = self.fence_file.counters(who.sm, who.warp_slot);

        let lookup = self.store.load(access.addr);
        let mut md = lookup.entry;

        // Fault hooks: a soft error flips one bit of the loaded entry; a
        // bloom collision flips one bit of the access's lock summary; an
        // adversarial eviction invalidates a random lock-table entry.
        if let Some(inj) = self.injector.as_mut() {
            if !lookup.fresh && inj.trigger(FaultKind::MetadataBitFlip) {
                md = crate::MetadataEntry::from_bits(inj.flip_bit64(md.to_bits()));
            }
            if inj.trigger(FaultKind::BloomFlip) {
                bloom = inj.flip_bit16(bloom);
            }
            if inj.trigger(FaultKind::LockInvalidate) {
                let idx = inj.pick(self.config.lock_table_entries);
                self.lock_tables
                    .table_mut(who.sm, who.warp_slot)
                    .invalidate_entry(idx);
            }
        }

        let fresh = lookup.fresh || md.is_initialized();

        let cur_is_load = !access.kind.is_write();
        let cur_is_atomic = access.kind.is_atomic();

        // ITS (§VI): same-warp accesses are only program-ordered when they
        // come from the same *lane*, or when neither side was diverged.
        let same_thread = match its {
            Some((lane, diverged)) if diverged || md.diverged() => md.lane_id() == lane,
            _ => true,
        };

        // ---- preliminary checks (Table III) ----------------------------
        let prelim_pass = if fresh {
            true // (a) first access after (re-)initialization
        } else {
            let program_order = md.warp_id() == who.warp_slot
                && md.block_id() == who.block_slot
                && same_thread
                && !md.blk_shared()
                && !md.dev_shared(); // (b)
            let barrier_sep = md.block_id() == who.block_slot
                && md.barrier_id() != cur_barrier
                && !md.dev_shared(); // (c)
            program_order || barrier_sep
        };

        // ---- race checks (Table IV) -------------------------------------
        let mut races = 0u8;
        if !prelim_pass {
            let same_block = md.block_id() == who.block_slot;
            let same_warp = same_block && md.warp_id() == who.warp_slot && same_thread;
            // A fault-corrupted entry can record out-of-range ids; truncate
            // into the geometry the way the hardware's index wires would,
            // rather than reading past the fence file.
            let g = self.config.geometry;
            let prev_block = u32::from(md.block_id()) % g.total_block_slots();
            let prev_sm = (prev_block / g.blocks_per_sm) as u8;
            let prev_warp = (u32::from(md.warp_id()) % g.warps_per_sm) as u8;
            let prev_ff = self.fence_file.counters(prev_sm, prev_warp);

            // Happens-before family: skipped for load-after-load.
            // Load-after-load is never a conflict.
            let hb_relevant = !cur_is_load || md.modified();
            if hb_relevant {
                if md.is_atom() {
                    // (d) scoped-atomic race: a block-scoped atomic is
                    // invisible outside its block, whatever follows it.
                    if md.scope() == Scope::Block && !same_block {
                        races += self.report(RaceKind::ScopedAtomic, access, md);
                    } else if !same_warp && !(md.strong() && (access.strong || cur_is_atomic)) {
                        // (c) still applies: a *weak* access conflicting
                        // with an atomically-updated location is unordered.
                        races += self.report(RaceKind::NotStrong, access, md);
                    }
                    // Otherwise: atomics take effect at the shared cache, so
                    // an adequately-scoped atomic needs no fence to be seen.
                } else {
                    let hb_race = if same_block {
                        // (a) block-level conflict with no fence of any scope
                        // executed by the previous accessor since its access.
                        (!same_warp)
                            && md.blk_fence_id() == prev_ff.blk
                            && md.dev_fence_id() == prev_ff.dev
                    } else {
                        // (b) cross-block conflict with no *device* fence.
                        md.dev_fence_id() == prev_ff.dev
                    };
                    if hb_race {
                        let kind = if same_block {
                            RaceKind::MissingBlockFence
                        } else {
                            RaceKind::MissingDeviceFence
                        };
                        races += self.report(kind, access, md);
                    } else if !same_warp && !(md.strong() && (access.strong || cur_is_atomic)) {
                        // (c) fences only order strong operations: a
                        // conflicting weak access races even across a fence.
                        races += self.report(RaceKind::NotStrong, access, md);
                    }
                }
            }

            // Lockset family (e)/(f): loads/stores to data guarded by
            // inferred locks. Atomic accesses are the locks themselves.
            if !cur_is_atomic && !md.is_atom() && (md.lock_bloom() != 0 || bloom != 0) {
                let common = md.lock_bloom() & bloom;
                if cur_is_load {
                    if md.modified() && common == 0 {
                        races += self.report(RaceKind::MissingLockLoad, access, md);
                    }
                } else if common == 0 {
                    races += self.report(RaceKind::MissingLockStore, access, md);
                }
            }
        }

        // ---- lock inference side effects --------------------------------
        if let AccessKind::Atomic { kind, scope } = access.kind {
            let scope = self.effective_atomic_scope(scope);
            let table = self.lock_tables.table_mut(who.sm, who.warp_slot);
            match kind {
                AtomKind::Cas => table.on_cas(access.addr, scope),
                AtomKind::Exch => table.on_exch(access.addr, scope),
                AtomKind::Other => {}
            }
        }

        // ---- metadata update --------------------------------------------
        let old_block = md.block_id();
        let old_warp = md.warp_id();
        if fresh {
            md = crate::MetadataEntry::from_bits(0);
            md.set_strong(access.effective_strong());
        } else {
            if !access.effective_strong() {
                md.set_strong(false);
            }
            if cur_is_load {
                if old_block != who.block_slot {
                    md.set_dev_shared(true);
                } else if old_warp != who.warp_slot {
                    md.set_blk_shared(true);
                }
            }
        }
        md.set_block_id(who.block_slot);
        md.set_warp_id(who.warp_slot);
        if let Some((lane, diverged)) = its {
            md.set_lane_id(lane);
            md.set_diverged(diverged);
        }
        md.set_barrier_id(cur_barrier);
        md.set_blk_fence_id(cur_fences.blk);
        md.set_dev_fence_id(cur_fences.dev);
        md.set_lock_bloom(bloom);
        md.set_modified(access.kind.is_write());
        match access.kind {
            AccessKind::Atomic { scope, .. } => {
                md.set_is_atom(true);
                md.set_scope(self.effective_atomic_scope(scope));
            }
            _ => md.set_is_atom(false),
        }
        self.store.store(access.addr, md);

        Ok(AccessEffects {
            md_addr: lookup.md_addr,
            md_fresh: lookup.fresh,
            prelim_pass,
            races,
        })
    }
}
