//! The ScoRD detection pipeline (paper §IV-A).
//!
//! Per global-memory access the detector:
//!
//! 1. loads the metadata entry covering the address,
//! 2. runs the **preliminary checks** (Table III) that filter trivially
//!    race-free accesses — first touch after (re-)initialization, program
//!    order within one warp, or a barrier separating same-block accesses,
//! 3. if those fail, runs the **happens-before checks** (Table IV (a)–(d))
//!    against the fence file and the **lockset check** (Table IV (e)/(f))
//!    against the lock bloom filters, and
//! 4. unconditionally updates the metadata with the latest access.
//!
//! Metadata update discipline (reconciling §IV-A with Figure 7): every access
//! refreshes the accessor identity, fence/barrier snapshots and lock bloom;
//! stores and atomics *set* `Modified` while loads *clear* it. Clearing on
//! loads is what makes a once-published value readable by many consumers
//! without false positives — the first reader is checked against the writer,
//! after which the location is in a read-only epoch until the next store.

use scord_isa::Scope;

use crate::{
    build_store, AccessKind, AtomKind, DetectorConfig, FenceFile, LockTables, MemAccess,
    MetadataStore, RaceKind, RaceLog, RaceReport,
};

/// Per-access outcome, consumed by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEffects {
    /// Metadata-region byte address read and written for this access.
    pub md_addr: u64,
    /// The metadata lookup found no usable entry (never-touched, or a tag
    /// mismatch in the cached store).
    pub md_fresh: bool,
    /// The preliminary checks classified the access as trivially race-free.
    pub prelim_pass: bool,
    /// Number of races reported by this access (0–2: one happens-before,
    /// one lockset).
    pub races: u8,
}

/// A race detector attachable to the simulator.
///
/// All detectors consume the same event stream; the baselines of Table VIII
/// are scope-erasing wrappers around [`ScordDetector`].
pub trait Detector: std::fmt::Debug {
    /// A barrier (`__syncthreads`) completed for the block in `block_slot`.
    fn on_barrier(&mut self, sm: u8, block_slot: u8);

    /// A warp executed a scoped fence.
    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope);

    /// A warp slot was (re)assigned to a fresh threadblock — clears its
    /// inferred-lock state.
    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8);

    /// One lane's global-memory access.
    fn on_access(&mut self, access: &MemAccess) -> AccessEffects;

    /// The accumulated race buffer.
    fn races(&self) -> &RaceLog;

    /// Clears all detector state (metadata, fence file, lock tables,
    /// barrier counters and the race log) for a fresh run.
    fn reset(&mut self);

    /// A kernel launch boundary: a device-wide synchronization point.
    ///
    /// Resets metadata and hardware sync state so accesses from the previous
    /// kernel cannot produce false conflicts, but keeps the accumulated race
    /// log (one application may span several kernels).
    fn on_kernel_boundary(&mut self);
}

/// The ScoRD detector.
///
/// ```
/// use scord_core::{
///     AccessKind, Accessor, Detector, DetectorConfig, MemAccess, ScordDetector,
/// };
///
/// let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
/// let writer = Accessor { sm: 0, block_slot: 0, warp_slot: 0 };
/// let reader = Accessor { sm: 1, block_slot: 8, warp_slot: 0 };
/// // A store in block 0 followed by a load in another block with no
/// // intervening device fence is a device-scope race.
/// det.on_access(&MemAccess {
///     kind: AccessKind::Store, addr: 0x100, strong: true, pc: 1, who: writer,
/// });
/// det.on_access(&MemAccess {
///     kind: AccessKind::Load, addr: 0x100, strong: true, pc: 2, who: reader,
/// });
/// assert_eq!(det.races().unique_count(), 1);
/// ```
#[derive(Debug)]
pub struct ScordDetector {
    config: DetectorConfig,
    store: Box<dyn MetadataStore>,
    fence_file: FenceFile,
    lock_tables: LockTables,
    barrier_ids: Vec<u8>,
    races: RaceLog,
    erase_atomic_scope: bool,
    erase_fence_scope: bool,
}

impl ScordDetector {
    /// Builds a detector for `config`.
    #[must_use]
    pub fn new(config: DetectorConfig) -> Self {
        Self::with_scope_handling(config, false, false)
    }

    /// Builds a detector that optionally *erases* scope information, for the
    /// baseline detectors of Table VIII:
    ///
    /// * `erase_atomic_scope`: every atomic is treated as device-scoped
    ///   (Barracuda/CURD-like — scoped-atomic races are invisible);
    /// * `erase_fence_scope`: every fence is treated as device-scoped as
    ///   well (HAccRG-like — all scoped races are invisible).
    #[must_use]
    pub fn with_scope_handling(
        config: DetectorConfig,
        erase_atomic_scope: bool,
        erase_fence_scope: bool,
    ) -> Self {
        let store = build_store(config.store, config.metadata_base);
        ScordDetector {
            store,
            fence_file: FenceFile::new(config.geometry),
            lock_tables: LockTables::new(config.geometry, config.lock_table_entries),
            barrier_ids: vec![0; config.geometry.total_block_slots() as usize],
            races: RaceLog::new(config.max_race_records),
            config,
            erase_atomic_scope,
            erase_fence_scope,
        }
    }

    /// The configuration this detector was built with.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Metadata footprint in bytes for the configured device-memory size.
    #[must_use]
    pub fn metadata_footprint_bytes(&self) -> u64 {
        self.store.footprint_bytes(self.config.mem_bytes)
    }

    /// Total detector hardware state in bits (fence file + lock tables +
    /// barrier counters), for the paper's §IV-C accounting (~2.9 KB).
    #[must_use]
    pub fn hardware_state_bits(&self) -> usize {
        self.fence_file.state_bits() + self.lock_tables.state_bits() + self.barrier_ids.len() * 8
    }

    fn effective_atomic_scope(&self, scope: Scope) -> Scope {
        if self.erase_atomic_scope {
            Scope::Device
        } else {
            scope
        }
    }

    fn effective_fence_scope(&self, scope: Scope) -> Scope {
        if self.erase_fence_scope {
            Scope::Device
        } else {
            scope
        }
    }

    fn sm_of_block_slot(&self, block_slot: u8) -> u8 {
        (u32::from(block_slot) / self.config.geometry.blocks_per_sm) as u8
    }

    fn report(&mut self, kind: RaceKind, access: &MemAccess, md: crate::MetadataEntry) -> u8 {
        let same_block = md.block_id() == access.who.block_slot;
        self.races.record(RaceReport {
            kind,
            pc: access.pc,
            addr: access.addr,
            who: access.who,
            prev_block: md.block_id(),
            prev_warp: md.warp_id(),
            conflict_scope: if same_block {
                Scope::Block
            } else {
                Scope::Device
            },
        });
        1
    }
}

impl Detector for ScordDetector {
    fn on_barrier(&mut self, _sm: u8, block_slot: u8) {
        let b = &mut self.barrier_ids[block_slot as usize];
        *b = b.wrapping_add(1);
    }

    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) {
        let scope = self.effective_fence_scope(scope);
        self.fence_file.on_fence(sm, warp_slot, scope);
        self.lock_tables.table_mut(sm, warp_slot).on_fence(scope);
    }

    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) {
        self.lock_tables.table_mut(sm, warp_slot).reset();
    }

    fn on_access(&mut self, access: &MemAccess) -> AccessEffects {
        self.check_access(access, None)
    }

    fn races(&self) -> &RaceLog {
        &self.races
    }

    fn reset(&mut self) {
        self.store.reset();
        self.fence_file.reset();
        self.lock_tables.reset();
        self.barrier_ids.fill(0);
        self.races.reset();
    }

    fn on_kernel_boundary(&mut self) {
        self.store.reset();
        self.fence_file.reset();
        self.lock_tables.reset();
        self.barrier_ids.fill(0);
    }
}

impl ScordDetector {
    /// An access in Independent-Thread-Scheduling mode (paper §VI): the
    /// accessor's lane is recorded in the metadata's unused bits, and
    /// same-warp accesses by *different lanes during divergence* are
    /// treated as potential conflicts instead of program-ordered.
    pub fn on_access_its(&mut self, its: &crate::ItsAccess) -> AccessEffects {
        debug_assert!(its.lane < 32, "lane must be a warp lane index");
        self.check_access(&its.access, Some((its.lane, its.diverged)))
    }

    #[allow(clippy::too_many_lines)]
    fn check_access(
        &mut self,
        access: &MemAccess,
        its: Option<(u8, bool)>,
    ) -> AccessEffects {
        let who = access.who;
        debug_assert!(
            access.addr.is_multiple_of(4),
            "global accesses are 4-byte aligned (got 0x{:x})",
            access.addr
        );

        let bloom = self.lock_tables.table(who.sm, who.warp_slot).bloom();
        let cur_barrier = self.barrier_ids[who.block_slot as usize];
        let cur_fences = self.fence_file.counters(who.sm, who.warp_slot);

        let lookup = self.store.load(access.addr);
        let mut md = lookup.entry;
        let fresh = lookup.fresh || md.is_initialized();

        let cur_is_load = !access.kind.is_write();
        let cur_is_atomic = access.kind.is_atomic();

        // ITS (§VI): same-warp accesses are only program-ordered when they
        // come from the same *lane*, or when neither side was diverged.
        let same_thread = match its {
            Some((lane, diverged)) if diverged || md.diverged() => md.lane_id() == lane,
            _ => true,
        };

        // ---- preliminary checks (Table III) ----------------------------
        let prelim_pass = if fresh {
            true // (a) first access after (re-)initialization
        } else {
            let program_order = md.warp_id() == who.warp_slot
                && md.block_id() == who.block_slot
                && same_thread
                && !md.blk_shared()
                && !md.dev_shared(); // (b)
            let barrier_sep = md.block_id() == who.block_slot
                && md.barrier_id() != cur_barrier
                && !md.dev_shared(); // (c)
            program_order || barrier_sep
        };

        // ---- race checks (Table IV) -------------------------------------
        let mut races = 0u8;
        if !prelim_pass {
            let same_block = md.block_id() == who.block_slot;
            let same_warp =
                same_block && md.warp_id() == who.warp_slot && same_thread;
            let prev_sm = self.sm_of_block_slot(md.block_id());
            let prev_ff = self.fence_file.counters(prev_sm, md.warp_id());

            // Happens-before family: skipped for load-after-load.
            // Load-after-load is never a conflict.
            let hb_relevant = !cur_is_load || md.modified();
            if hb_relevant {
                if md.is_atom() {
                    // (d) scoped-atomic race: a block-scoped atomic is
                    // invisible outside its block, whatever follows it.
                    if md.scope() == Scope::Block && !same_block {
                        races += self.report(RaceKind::ScopedAtomic, access, md);
                    } else if !same_warp
                        && !(md.strong() && (access.strong || cur_is_atomic))
                    {
                        // (c) still applies: a *weak* access conflicting
                        // with an atomically-updated location is unordered.
                        races += self.report(RaceKind::NotStrong, access, md);
                    }
                    // Otherwise: atomics take effect at the shared cache, so
                    // an adequately-scoped atomic needs no fence to be seen.
                } else {
                    let hb_race = if same_block {
                        // (a) block-level conflict with no fence of any scope
                        // executed by the previous accessor since its access.
                        (!same_warp)
                            && md.blk_fence_id() == prev_ff.blk
                            && md.dev_fence_id() == prev_ff.dev
                    } else {
                        // (b) cross-block conflict with no *device* fence.
                        md.dev_fence_id() == prev_ff.dev
                    };
                    if hb_race {
                        let kind = if same_block {
                            RaceKind::MissingBlockFence
                        } else {
                            RaceKind::MissingDeviceFence
                        };
                        races += self.report(kind, access, md);
                    } else if !same_warp
                        && !(md.strong() && (access.strong || cur_is_atomic))
                    {
                        // (c) fences only order strong operations: a
                        // conflicting weak access races even across a fence.
                        races += self.report(RaceKind::NotStrong, access, md);
                    }
                }
            }

            // Lockset family (e)/(f): loads/stores to data guarded by
            // inferred locks. Atomic accesses are the locks themselves.
            if !cur_is_atomic && !md.is_atom() && (md.lock_bloom() != 0 || bloom != 0) {
                let common = md.lock_bloom() & bloom;
                if cur_is_load {
                    if md.modified() && common == 0 {
                        races += self.report(RaceKind::MissingLockLoad, access, md);
                    }
                } else if common == 0 {
                    races += self.report(RaceKind::MissingLockStore, access, md);
                }
            }
        }

        // ---- lock inference side effects --------------------------------
        if let AccessKind::Atomic { kind, scope } = access.kind {
            let scope = self.effective_atomic_scope(scope);
            let table = self.lock_tables.table_mut(who.sm, who.warp_slot);
            match kind {
                AtomKind::Cas => table.on_cas(access.addr, scope),
                AtomKind::Exch => table.on_exch(access.addr, scope),
                AtomKind::Other => {}
            }
        }

        // ---- metadata update --------------------------------------------
        let old_block = md.block_id();
        let old_warp = md.warp_id();
        if fresh {
            md = crate::MetadataEntry::from_bits(0);
            md.set_strong(access.effective_strong());
        } else {
            if !access.effective_strong() {
                md.set_strong(false);
            }
            if cur_is_load {
                if old_block != who.block_slot {
                    md.set_dev_shared(true);
                } else if old_warp != who.warp_slot {
                    md.set_blk_shared(true);
                }
            }
        }
        md.set_block_id(who.block_slot);
        md.set_warp_id(who.warp_slot);
        if let Some((lane, diverged)) = its {
            md.set_lane_id(lane);
            md.set_diverged(diverged);
        }
        md.set_barrier_id(cur_barrier);
        md.set_blk_fence_id(cur_fences.blk);
        md.set_dev_fence_id(cur_fences.dev);
        md.set_lock_bloom(bloom);
        md.set_modified(access.kind.is_write());
        match access.kind {
            AccessKind::Atomic { scope, .. } => {
                md.set_is_atom(true);
                md.set_scope(self.effective_atomic_scope(scope));
            }
            _ => md.set_is_atom(false),
        }
        self.store.store(access.addr, md);

        AccessEffects {
            md_addr: lookup.md_addr,
            md_fresh: lookup.fresh,
            prelim_pass,
            races,
        }
    }
}
