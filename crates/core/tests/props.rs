//! Randomized-property tests for the detector's data structures and for
//! soundness invariants of the detection algorithm ("properly synchronized
//! executions report no races").
//!
//! Driven by the in-tree deterministic [`SplitMix64`] generator rather than
//! an external property-testing crate, so the suite builds fully offline and
//! every run explores exactly the same inputs. On failure the message names
//! the iteration's seed; re-running reproduces it.

use scord_core::{
    bloom_bit, lock_hash, AccessKind, Accessor, AtomKind, Detector, DetectorConfig, FullStore,
    LockTable, MemAccess, MetadataEntry, MetadataStore, ScordDetector, SplitMix64, Trace,
    TraceEvent,
};
use scord_isa::Scope;

const MEM: u64 = 1 << 20;
const ITERS: u64 = 128;

fn accessor(block: u8, warp: u8) -> Accessor {
    Accessor {
        sm: block / 8,
        block_slot: block,
        warp_slot: warp,
    }
}

/// Runs `body` for `ITERS` deterministic cases, each with its own stream.
fn for_each_case(test_seed: u64, body: impl Fn(&mut SplitMix64)) {
    for case in 0..ITERS {
        let mut rng = SplitMix64::new(test_seed ^ (case.wrapping_mul(0x9E37_79B9)));
        body(&mut rng);
    }
}

// -----------------------------------------------------------------------
// Metadata entry bitfield properties
// -----------------------------------------------------------------------

#[test]
fn metadata_fields_roundtrip() {
    for_each_case(0x1001, |rng| {
        let tag = rng.below(16) as u8;
        let block = rng.below(128) as u8;
        let warp = rng.below(32) as u8;
        let dev = rng.below(64) as u8;
        let blk = rng.below(64) as u8;
        let bar = rng.below(256) as u8;
        let bloom = rng.next_u64() as u16;
        let modified = rng.next_bool();
        let blk_shared = rng.next_bool();
        let dev_shared = rng.next_bool();
        let is_atom = rng.next_bool();
        let strong = rng.next_bool();
        let device_scope = rng.next_bool();

        let mut e = MetadataEntry::from_bits(0);
        e.set_tag(tag);
        e.set_block_id(block);
        e.set_warp_id(warp);
        e.set_dev_fence_id(dev);
        e.set_blk_fence_id(blk);
        e.set_barrier_id(bar);
        e.set_lock_bloom(bloom);
        e.set_modified(modified);
        e.set_blk_shared(blk_shared);
        e.set_dev_shared(dev_shared);
        e.set_is_atom(is_atom);
        e.set_strong(strong);
        e.set_scope(if device_scope {
            Scope::Device
        } else {
            Scope::Block
        });

        assert_eq!(e.tag(), tag);
        assert_eq!(e.block_id(), block);
        assert_eq!(e.warp_id(), warp);
        assert_eq!(e.dev_fence_id(), dev);
        assert_eq!(e.blk_fence_id(), blk);
        assert_eq!(e.barrier_id(), bar);
        assert_eq!(e.lock_bloom(), bloom);
        assert_eq!(e.modified(), modified);
        assert_eq!(e.blk_shared(), blk_shared);
        assert_eq!(e.dev_shared(), dev_shared);
        assert_eq!(e.is_atom(), is_atom);
        assert_eq!(e.strong(), strong);
        assert_eq!(e.scope() == Scope::Device, device_scope);
        // Serialization through raw bits is lossless.
        assert_eq!(MetadataEntry::from_bits(e.to_bits()), e);
    });
}

#[test]
fn lock_hash_fits_six_bits_and_bloom_sets_one_bit() {
    for_each_case(0x1002, |rng| {
        let h = lock_hash(rng.next_u64() & !3);
        assert!(h < 64);
        for scope in [Scope::Block, Scope::Device] {
            assert_eq!(bloom_bit(h, scope).count_ones(), 1);
        }
    });
}

#[test]
fn bloom_separates_scopes() {
    for_each_case(0x1003, |rng| {
        let h = lock_hash(rng.next_u64() & !3);
        assert_ne!(bloom_bit(h, Scope::Block), bloom_bit(h, Scope::Device));
    });
}

// -----------------------------------------------------------------------
// Metadata store properties
// -----------------------------------------------------------------------

#[test]
fn full_store_writes_are_read_back() {
    for_each_case(0x1004, |rng| {
        let n = 1 + rng.below(39) as usize;
        let mut s = FullStore::new(4, 0);
        for i in 0..n {
            let addr = rng.below(1 << 16) & !3;
            let mut e = MetadataEntry::from_bits(0);
            e.set_barrier_id((i % 256) as u8);
            e.set_modified(true);
            s.store(addr, e);
            let got = s.load(addr);
            assert!(!got.fresh);
            assert_eq!(got.entry.barrier_id(), (i % 256) as u8);
        }
    });
}

#[test]
fn cached_store_load_after_store_hits_same_address() {
    for_each_case(0x1005, |rng| {
        use scord_core::CachedStore;
        let n = 1 + rng.below(39) as usize;
        let mut s = CachedStore::new(16, 0);
        for _ in 0..n {
            let addr = rng.below(1 << 16) & !3;
            let mut e = MetadataEntry::from_bits(0);
            e.set_modified(true);
            s.store(addr, e);
            // Immediately after a store, the same address always hits.
            assert!(!s.load(addr).fresh);
        }
    });
}

// -----------------------------------------------------------------------
// Lock table properties
// -----------------------------------------------------------------------

#[test]
fn lock_table_bloom_empty_without_fence() {
    for_each_case(0x1006, |rng| {
        let n = rng.below(8) as usize;
        let mut t = LockTable::new(4);
        for _ in 0..n {
            t.on_cas(rng.below(1 << 12) & !3, Scope::Device);
        }
        assert_eq!(t.bloom(), 0, "no fence, no held lock");
    });
}

#[test]
fn lock_table_acquire_release_is_empty() {
    for_each_case(0x1007, |rng| {
        let n = 1 + rng.below(3) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(1 << 12) & !3).collect();
        let mut t = LockTable::new(4);
        for a in &addrs {
            t.on_cas(*a, Scope::Device);
        }
        t.on_fence(Scope::Device);
        for a in &addrs {
            t.on_exch(*a, Scope::Device);
        }
        assert_eq!(t.bloom(), 0, "all locks released");
    });
}

// -----------------------------------------------------------------------
// Detector soundness properties
// -----------------------------------------------------------------------

/// Any single-warp access sequence is race-free (program order).
#[test]
fn single_warp_never_races() {
    for_each_case(0x1008, |rng| {
        let ops = 1 + rng.below(119);
        let mut d = ScordDetector::new(DetectorConfig::paper_default(MEM));
        let who = accessor(0, 0);
        for pc in 0..ops {
            let addr = rng.below(64) * 4;
            let kind = match rng.below(4) {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                2 => AccessKind::Atomic {
                    kind: AtomKind::Other,
                    scope: Scope::Block,
                },
                _ => AccessKind::Atomic {
                    kind: AtomKind::Other,
                    scope: Scope::Device,
                },
            };
            let strong = rng.next_bool();
            d.on_access(&MemAccess {
                kind,
                addr,
                strong,
                pc: pc as u32,
                who,
            })
            .unwrap();
        }
        assert_eq!(d.races().unique_count(), 0);
    });
}

/// Warps touching disjoint addresses never interact.
#[test]
fn disjoint_addresses_never_race() {
    for_each_case(0x1009, |rng| {
        let ops = 1 + rng.below(119);
        // Base design (4-byte granularity, no aliasing): warp w owns the
        // address range [w*4KiB, w*4KiB + 64).
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        for pc in 0..ops {
            let w = rng.below(4) as u8;
            let slot = rng.below(16);
            let who = accessor(w * 8, 0); // distinct blocks on distinct SMs
            let addr = u64::from(w) * 4096 + slot * 4;
            let kind = if rng.next_bool() {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            d.on_access(&MemAccess {
                kind,
                addr,
                strong: false,
                pc: pc as u32,
                who,
            })
            .unwrap();
        }
        assert_eq!(d.races().unique_count(), 0);
    });
}

/// Bulk-synchronous execution: warps of one block access shared data only in
/// phases separated by barriers, each phase having a single writer per
/// location. No races must be reported.
#[test]
fn barrier_phased_execution_never_races() {
    for_each_case(0x100A, |rng| {
        let num_phases = 1 + rng.below(7);
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        let mut pc = 0u32;
        for _ in 0..num_phases {
            let phase_len = 1 + rng.below(11);
            for _ in 0..phase_len {
                let warp = rng.below(8) as u8;
                let slot = rng.below(8);
                let is_store = rng.next_bool();
                // In each phase, location `slot` is owned by warp (slot % 8)
                // for writing; everyone may read it only if they own it —
                // a strict owner-computes pattern.
                let owner = (slot % 8) as u8;
                let w = if is_store { owner } else { warp };
                let who = accessor(0, w);
                let kind = if is_store && w == owner {
                    AccessKind::Store
                } else {
                    // Non-owners only read values written in EARLIER phases;
                    // to keep the generator simple they read a per-warp slot.
                    AccessKind::Load
                };
                let addr = if kind == AccessKind::Store || w == owner {
                    slot * 4
                } else {
                    1024 + u64::from(w) * 4
                };
                d.on_access(&MemAccess {
                    kind,
                    addr,
                    strong: false,
                    pc,
                    who,
                })
                .unwrap();
                pc += 1;
            }
            d.on_barrier(0, 0).unwrap();
            pc += 1;
        }
        assert_eq!(d.races().unique_count(), 0, "{:?}", d.races().records());
    });
}

/// An unsynchronized cross-block write/read pair is ALWAYS caught by the
/// base design, wherever it lands in memory.
#[test]
fn base_design_always_catches_cross_block_conflict() {
    for_each_case(0x100B, |rng| {
        let addr = rng.below(1 << 18) & !3;
        let writer_block = rng.below(120) as u8;
        let reader_block = rng.below(120) as u8;
        if writer_block == reader_block {
            return;
        }
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        d.on_access(&MemAccess {
            kind: AccessKind::Store,
            addr,
            strong: true,
            pc: 1,
            who: accessor(writer_block, 0),
        })
        .unwrap();
        d.on_access(&MemAccess {
            kind: AccessKind::Load,
            addr,
            strong: true,
            pc: 2,
            who: accessor(reader_block, 0),
        })
        .unwrap();
        assert_eq!(d.races().unique_count(), 1);
    });
}

/// The cached store never reports MORE unique races than the base design on
/// the same stream (it can only lose information by aliasing, never invent
/// conflicts).
#[test]
fn caching_never_adds_false_positives() {
    for_each_case(0x100C, |rng| {
        let ops = 1 + rng.below(149);
        let mut base = ScordDetector::new(DetectorConfig::base_design(MEM));
        let mut cached = ScordDetector::new(DetectorConfig::paper_default(MEM));
        for pc in 0..ops {
            let block = rng.below(6) as u8;
            let slot = rng.below(32);
            let who = accessor(block * 16, 0);
            let addr = slot * 4;
            let kind = match rng.below(3) {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::Atomic {
                    kind: AtomKind::Other,
                    scope: Scope::Device,
                },
            };
            let a = MemAccess {
                kind,
                addr,
                strong: true,
                pc: pc as u32,
                who,
            };
            base.on_access(&a).unwrap();
            cached.on_access(&a).unwrap();
        }
        assert!(
            cached.races().unique_count() <= base.races().unique_count(),
            "cached {} > base {}",
            cached.races().unique_count(),
            base.races().unique_count()
        );
    });
}

// -----------------------------------------------------------------------
// Trace text format properties
// -----------------------------------------------------------------------

/// One random event covering every [`TraceEvent`] variant and every
/// sub-variant of [`AccessKind`] / [`AtomKind`] / [`Scope`].
fn arbitrary_event(rng: &mut SplitMix64) -> TraceEvent {
    let sm = rng.below(15) as u8;
    let block_slot = sm * 8 + rng.below(8) as u8;
    let warp_slot = rng.below(32) as u8;
    let who = Accessor {
        sm,
        block_slot,
        warp_slot,
    };
    let scope = if rng.next_bool() {
        Scope::Device
    } else {
        Scope::Block
    };
    match rng.below(8) {
        0 => TraceEvent::Barrier { sm, block_slot },
        1 => TraceEvent::Fence {
            sm,
            warp_slot,
            scope,
        },
        2 => TraceEvent::WarpAssigned { sm, warp_slot },
        3 => TraceEvent::KernelBoundary,
        n => {
            let kind = match n {
                4 => AccessKind::Load,
                5 => AccessKind::Store,
                _ => AccessKind::Atomic {
                    kind: match rng.below(3) {
                        0 => AtomKind::Cas,
                        1 => AtomKind::Exch,
                        _ => AtomKind::Other,
                    },
                    scope,
                },
            };
            // The text format does not carry a strength field for atomics
            // (they are strong by definition), so only plain accesses get
            // a random one.
            let strong = kind.is_atomic() || rng.next_bool();
            TraceEvent::Access(MemAccess {
                kind,
                addr: rng.below(1 << 30) * 4,
                strong,
                pc: rng.next_u32(),
                who,
            })
        }
    }
}

/// `from_text(to_text(t)) == t` for traces mixing every event variant.
#[test]
fn trace_text_roundtrip() {
    for_each_case(0x100D, |rng| {
        let mut t = Trace::new();
        let n = rng.below(60);
        for _ in 0..n {
            t.push(arbitrary_event(rng));
        }
        let text = t.to_text();
        let back = Trace::from_text(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        assert_eq!(back, t, "round-trip mismatch:\n{text}");
    });
}

/// Parsing skips comments and blank lines without shifting event content,
/// and reported error line numbers account for them.
#[test]
fn trace_text_ignores_comments_and_blanks() {
    for_each_case(0x100E, |rng| {
        let mut t = Trace::new();
        for _ in 0..1 + rng.below(20) {
            t.push(arbitrary_event(rng));
        }
        let mut text = String::from("# header comment\n\n");
        for line in t.to_text().lines() {
            text.push_str(line);
            text.push('\n');
            if rng.next_bool() {
                text.push_str("# interleaved\n\n");
            }
        }
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    });
}

/// Corrupting any single event line makes parsing fail and the error names
/// that exact (1-based) line.
#[test]
fn trace_text_corruption_is_located() {
    for_each_case(0x100F, |rng| {
        let mut t = Trace::new();
        let n = 1 + rng.below(30);
        for _ in 0..n {
            t.push(arbitrary_event(rng));
        }
        let mut lines: Vec<String> = t.to_text().lines().map(str::to_string).collect();
        let victim = rng.below(lines.len() as u64) as usize;
        lines[victim] = match rng.below(4) {
            0 => "Z bogus event".to_string(),           // unknown tag
            1 => "A L strong".to_string(),              // truncated access
            2 => format!("{} trailing", lines[victim]), // extra field
            _ => "F 0 0 q".to_string(),                 // bad scope letter
        };
        let err = Trace::from_text(&lines.join("\n")).expect_err("corrupted line must not parse");
        assert_eq!(err.line, victim + 1, "error must name the corrupted line");
    });
}

/// The malformed inputs of every [`ParseTraceError`] path are rejected with
/// the offending line number.
#[test]
fn trace_text_error_paths() {
    let bad = [
        ("X", 1),                                   // unknown event tag
        ("A L 0x10 strong 1 0 0", 1),               // missing field
        ("A L 0x10 strong 1 0 0 0 9", 1),           // extra field
        ("A Q 0x10 strong 1 0 0 0", 1),             // bad access kind
        ("A L 10q strong 1 0 0 0", 1),              // bad address
        ("A L 0x10 mild 1 0 0 0", 1),               // bad strength
        ("A C e 0x10 1 0 0 0", 1),                  // bad atomic scope
        ("F 0 0 x", 1),                             // bad fence scope
        ("B 0", 1),                                 // truncated barrier
        ("W 0 0 0", 1),                             // oversized warp event
        ("K extra", 1),                             // kernel boundary takes no fields
        ("# ok\nA L 0x10 strong 1 0 0 0\nnope", 3), // error past valid lines
    ];
    for (text, line) in bad {
        let err = Trace::from_text(text).expect_err("malformed input must not parse");
        assert_eq!(err.line, line, "wrong line for {text:?}: {err}");
    }
}
