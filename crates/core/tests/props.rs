//! Property-based tests for the detector's data structures and for
//! soundness invariants of the detection algorithm ("properly synchronized
//! executions report no races").

use proptest::prelude::*;

use scord_core::{
    bloom_bit, lock_hash, AccessKind, Accessor, AtomKind, Detector, DetectorConfig, FullStore,
    LockTable, MemAccess, MetadataEntry, MetadataStore, ScordDetector,
};
use scord_isa::Scope;

const MEM: u64 = 1 << 20;

fn accessor(block: u8, warp: u8) -> Accessor {
    Accessor {
        sm: block / 8,
        block_slot: block,
        warp_slot: warp,
    }
}

proptest! {
    // -------------------------------------------------------------------
    // Metadata entry bitfield properties
    // -------------------------------------------------------------------

    #[test]
    fn metadata_fields_roundtrip(
        tag in 0u8..16,
        block in 0u8..128,
        warp in 0u8..32,
        dev in 0u8..64,
        blk in 0u8..64,
        bar in 0u8..=255,
        bloom in any::<u16>(),
        modified: bool,
        blk_shared: bool,
        dev_shared: bool,
        is_atom: bool,
        strong: bool,
        device_scope: bool,
    ) {
        let mut e = MetadataEntry::from_bits(0);
        e.set_tag(tag);
        e.set_block_id(block);
        e.set_warp_id(warp);
        e.set_dev_fence_id(dev);
        e.set_blk_fence_id(blk);
        e.set_barrier_id(bar);
        e.set_lock_bloom(bloom);
        e.set_modified(modified);
        e.set_blk_shared(blk_shared);
        e.set_dev_shared(dev_shared);
        e.set_is_atom(is_atom);
        e.set_strong(strong);
        e.set_scope(if device_scope { Scope::Device } else { Scope::Block });

        prop_assert_eq!(e.tag(), tag);
        prop_assert_eq!(e.block_id(), block);
        prop_assert_eq!(e.warp_id(), warp);
        prop_assert_eq!(e.dev_fence_id(), dev);
        prop_assert_eq!(e.blk_fence_id(), blk);
        prop_assert_eq!(e.barrier_id(), bar);
        prop_assert_eq!(e.lock_bloom(), bloom);
        prop_assert_eq!(e.modified(), modified);
        prop_assert_eq!(e.blk_shared(), blk_shared);
        prop_assert_eq!(e.dev_shared(), dev_shared);
        prop_assert_eq!(e.is_atom(), is_atom);
        prop_assert_eq!(e.strong(), strong);
        prop_assert_eq!(e.scope() == Scope::Device, device_scope);
        // Serialization through raw bits is lossless.
        prop_assert_eq!(MetadataEntry::from_bits(e.to_bits()), e);
    }

    #[test]
    fn lock_hash_fits_six_bits_and_bloom_sets_one_bit(addr in any::<u64>()) {
        let h = lock_hash(addr & !3);
        prop_assert!(h < 64);
        for scope in [Scope::Block, Scope::Device] {
            prop_assert_eq!(bloom_bit(h, scope).count_ones(), 1);
        }
    }

    #[test]
    fn bloom_separates_scopes(addr in any::<u64>()) {
        let h = lock_hash(addr & !3);
        prop_assert_ne!(bloom_bit(h, Scope::Block), bloom_bit(h, Scope::Device));
    }

    // -------------------------------------------------------------------
    // Metadata store properties
    // -------------------------------------------------------------------

    #[test]
    fn full_store_writes_are_read_back(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..40),
    ) {
        let mut s = FullStore::new(4, 0);
        for (i, a) in addrs.iter().enumerate() {
            let addr = a & !3;
            let mut e = MetadataEntry::from_bits(0);
            e.set_barrier_id((i % 256) as u8);
            e.set_modified(true);
            s.store(addr, e);
            let got = s.load(addr);
            prop_assert!(!got.fresh);
            prop_assert_eq!(got.entry.barrier_id(), (i % 256) as u8);
        }
    }

    #[test]
    fn cached_store_load_after_store_hits_same_address(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..40),
    ) {
        use scord_core::CachedStore;
        let mut s = CachedStore::new(16, 0);
        for a in &addrs {
            let addr = a & !3;
            let mut e = MetadataEntry::from_bits(0);
            e.set_modified(true);
            s.store(addr, e);
            // Immediately after a store, the same address always hits.
            prop_assert!(!s.load(addr).fresh);
        }
    }

    // -------------------------------------------------------------------
    // Lock table properties
    // -------------------------------------------------------------------

    #[test]
    fn lock_table_bloom_empty_without_fence(
        addrs in proptest::collection::vec(0u64..(1 << 12), 0..8),
    ) {
        let mut t = LockTable::new(4);
        for a in &addrs {
            t.on_cas(a & !3, Scope::Device);
        }
        prop_assert_eq!(t.bloom(), 0, "no fence, no held lock");
    }

    #[test]
    fn lock_table_acquire_release_is_empty(
        addrs in proptest::collection::vec(0u64..(1 << 12), 1..4),
    ) {
        let mut t = LockTable::new(4);
        for a in &addrs {
            t.on_cas(a & !3, Scope::Device);
        }
        t.on_fence(Scope::Device);
        for a in &addrs {
            t.on_exch(a & !3, Scope::Device);
        }
        prop_assert_eq!(t.bloom(), 0, "all locks released");
    }

    // -------------------------------------------------------------------
    // Detector soundness properties
    // -------------------------------------------------------------------

    /// Any single-warp access sequence is race-free (program order).
    #[test]
    fn single_warp_never_races(
        ops in proptest::collection::vec(
            (0u64..64, 0usize..4, any::<bool>()), 1..120),
    ) {
        let mut d = ScordDetector::new(DetectorConfig::paper_default(MEM));
        let who = accessor(0, 0);
        for (pc, (slot, kind, strong)) in ops.iter().enumerate() {
            let addr = slot * 4;
            let kind = match kind {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                2 => AccessKind::Atomic { kind: AtomKind::Other, scope: Scope::Block },
                _ => AccessKind::Atomic { kind: AtomKind::Other, scope: Scope::Device },
            };
            d.on_access(&MemAccess { kind, addr, strong: *strong, pc: pc as u32, who });
        }
        prop_assert_eq!(d.races().unique_count(), 0);
    }

    /// Warps touching disjoint addresses never interact.
    #[test]
    fn disjoint_addresses_never_race(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..16, any::<bool>()), 1..120),
    ) {
        // Base design (4-byte granularity, no aliasing): warp w owns the
        // address range [w*4KiB, w*4KiB + 64).
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        for (pc, (w, slot, is_store)) in ops.iter().enumerate() {
            let who = accessor(*w * 8, 0); // distinct blocks on distinct SMs
            let addr = u64::from(*w) * 4096 + slot * 4;
            let kind = if *is_store { AccessKind::Store } else { AccessKind::Load };
            d.on_access(&MemAccess { kind, addr, strong: false, pc: pc as u32, who });
        }
        prop_assert_eq!(d.races().unique_count(), 0);
    }

    /// Bulk-synchronous execution: warps of one block access shared data
    /// only in phases separated by barriers, each phase having a single
    /// writer per location. No races must be reported.
    #[test]
    fn barrier_phased_execution_never_races(
        phases in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u64..8, any::<bool>()), 1..12),
            1..8,
        ),
    ) {
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        let mut pc = 0u32;
        for phase in &phases {
            for (warp, slot, is_store) in phase {
                // In each phase, location `slot` is owned by warp (slot % 8)
                // for writing; everyone may read it only if they own it —
                // a strict owner-computes pattern.
                let owner = (*slot % 8) as u8;
                let w = if *is_store { owner } else { *warp };
                let who = accessor(0, w);
                let kind = if *is_store && w == owner {
                    AccessKind::Store
                } else if w == owner {
                    AccessKind::Load
                } else {
                    // Non-owners only read values written in EARLIER phases;
                    // to keep the generator simple they read a per-warp slot.
                    AccessKind::Load
                };
                let addr = if kind == AccessKind::Store || w == owner {
                    slot * 4
                } else {
                    1024 + u64::from(w) * 4
                };
                d.on_access(&MemAccess { kind, addr, strong: false, pc, who });
                pc += 1;
            }
            d.on_barrier(0, 0);
            pc += 1;
        }
        prop_assert_eq!(d.races().unique_count(), 0, "{:?}", d.races().records());
    }

    /// An unsynchronized cross-block write/read pair is ALWAYS caught by the
    /// base design, wherever it lands in memory.
    #[test]
    fn base_design_always_catches_cross_block_conflict(
        addr in (0u64..(1 << 18)).prop_map(|a| a & !3),
        writer_block in 0u8..120,
        reader_block in 0u8..120,
    ) {
        prop_assume!(writer_block != reader_block);
        let mut d = ScordDetector::new(DetectorConfig::base_design(MEM));
        d.on_access(&MemAccess {
            kind: AccessKind::Store, addr, strong: true, pc: 1,
            who: accessor(writer_block, 0),
        });
        d.on_access(&MemAccess {
            kind: AccessKind::Load, addr, strong: true, pc: 2,
            who: accessor(reader_block, 0),
        });
        prop_assert_eq!(d.races().unique_count(), 1);
    }

    /// The cached store never reports MORE unique races than the base
    /// design on the same stream (it can only lose information by aliasing,
    /// never invent conflicts).
    #[test]
    fn caching_never_adds_false_positives(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..32, 0usize..3), 1..150),
    ) {
        let mut base = ScordDetector::new(DetectorConfig::base_design(MEM));
        let mut cached = ScordDetector::new(DetectorConfig::paper_default(MEM));
        for (pc, (block, slot, kind)) in ops.iter().enumerate() {
            let who = accessor(*block * 16, 0);
            let addr = slot * 4;
            let kind = match kind {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::Atomic { kind: AtomKind::Other, scope: Scope::Device },
            };
            let a = MemAccess { kind, addr, strong: true, pc: pc as u32, who };
            base.on_access(&a);
            cached.on_access(&a);
        }
        prop_assert!(
            cached.races().unique_count() <= base.races().unique_count(),
            "cached {} > base {}",
            cached.races().unique_count(),
            base.races().unique_count()
        );
    }
}
