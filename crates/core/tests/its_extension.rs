//! Tests for the §VI Independent-Thread-Scheduling extension: with ITS,
//! divergent threads of one warp can interleave, so same-warp accesses are
//! no longer automatically program-ordered — unless they come from the same
//! lane.

use scord_core::{
    AccessKind, Accessor, Detector, DetectorConfig, ItsAccess, MemAccess, RaceKind, ScordDetector,
};
use scord_isa::Scope;

const WHO: Accessor = Accessor {
    sm: 0,
    block_slot: 0,
    warp_slot: 0,
};

fn det() -> ScordDetector {
    ScordDetector::new(DetectorConfig::base_design(1 << 20))
}

fn its(kind: AccessKind, addr: u64, pc: u32, lane: u8, diverged: bool) -> ItsAccess {
    ItsAccess {
        access: MemAccess {
            kind,
            addr,
            strong: true,
            pc,
            who: WHO,
        },
        lane,
        diverged,
    }
}

#[test]
fn converged_warp_accesses_stay_program_ordered() {
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, false))
        .unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 5, false))
        .unwrap();
    assert_eq!(
        d.races().unique_count(),
        0,
        "without divergence the warp is SIMT-ordered as before: {:?}",
        d.races().records()
    );
}

#[test]
fn divergent_lanes_sharing_data_race() {
    // The new race class §VI describes: two lanes of one warp touch common
    // data while the warp is diverged — no intra-warp ordering exists.
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, true))
        .unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 5, true))
        .unwrap();
    assert_eq!(d.races().unique_count(), 1, "{:?}", d.races().records());
    let kinds: Vec<_> = d.races().unique_races().map(|(_, k)| k).collect();
    assert_eq!(kinds, vec![RaceKind::MissingBlockFence]);
}

#[test]
fn same_lane_during_divergence_is_still_ordered() {
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 3, true))
        .unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 3, true))
        .unwrap();
    d.on_access_its(&its(AccessKind::Store, 0x100, 3, 3, true))
        .unwrap();
    assert_eq!(
        d.races().unique_count(),
        0,
        "one lane is a single thread: {:?}",
        d.races().records()
    );
}

#[test]
fn divergence_marker_in_metadata_outlives_reconvergence() {
    // A store during divergence followed by another lane's access after
    // reconvergence: the stored hasDiverged marker keeps the pair
    // distinguishable.
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, true))
        .unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 7, false))
        .unwrap();
    assert_eq!(
        d.races().unique_count(),
        1,
        "the diverged store had no ordering with lane 7: {:?}",
        d.races().records()
    );
}

#[test]
fn fence_between_divergent_lanes_resolves_the_race() {
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, true))
        .unwrap();
    d.on_fence(WHO.sm, WHO.warp_slot, Scope::Block).unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 5, true))
        .unwrap();
    assert_eq!(
        d.races().unique_count(),
        0,
        "a block fence orders the warp's own strong accesses: {:?}",
        d.races().records()
    );
}

#[test]
fn its_and_plain_modes_agree_across_warps() {
    // Cross-warp detection is unchanged by ITS attribution.
    let other = Accessor {
        sm: 1,
        block_slot: 8,
        warp_slot: 0,
    };
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, false))
        .unwrap();
    d.on_access(&MemAccess {
        kind: AccessKind::Load,
        addr: 0x100,
        strong: true,
        pc: 2,
        who: other,
    })
    .unwrap();
    assert_eq!(d.races().unique_count(), 1);
}

#[test]
fn barrier_still_separates_divergent_epochs() {
    let mut d = det();
    d.on_access_its(&its(AccessKind::Store, 0x100, 1, 0, true))
        .unwrap();
    d.on_barrier(WHO.sm, WHO.block_slot).unwrap();
    d.on_access_its(&its(AccessKind::Load, 0x100, 2, 9, true))
        .unwrap();
    assert_eq!(
        d.races().unique_count(),
        0,
        "barriers reconverge and order the whole block: {:?}",
        d.races().records()
    );
}
