//! Brute-force property tests for the oracle's ordering relation and its
//! race report — the contract the schedule-space backends lean on.
//!
//! [`OracleDetector::ordered_pair`] re-derives ordering verdicts from the
//! vector-clock snapshots taken at access time; the predictive detector
//! ([`scord_core::predict`]) uses it to cut segments and the interleaving
//! explorer ([`scord_core::explore`]) uses it as the per-schedule judge.
//! These tests check the relation against its algebraic contract on fuzzed
//! traces, pair by pair and triple by triple:
//!
//! * **Antisymmetry** of the clock-derived verdicts: within an epoch the
//!   relation never claims the *later* access happens-before the earlier
//!   one via `Barrier` or `Fence`. (`AtomicScope` is deliberately
//!   direction-agnostic — an adequately scoped atomic orders at the point
//!   of coherence whichever side runs first — and `ProgramOrder` only
//!   fires for same-thread pairs, which are ordered by definition.)
//! * **Transitivity** on the fragments where the model promises it:
//!   barrier/program order composes at any strength, and the full verdict
//!   set composes on all-strong chains headed by a non-atomic access.
//!   The excluded fragments are *non-transitive by design* and each test
//!   names the counterexample idiom (weak accesses do not ride fences;
//!   inadequately scoped atomics are not repaired by later fences;
//!   atomic coherence edges carry no release history).
//! * **Exactness** of [`OracleDetector::detailed_races`]: an independent
//!   reimplementation of the documented checking discipline — each access
//!   against the last write, a write against every read since that write,
//!   the scoped-lockset rule against the last accessor — reproduces the
//!   oracle's report byte for byte, with [`ordered_pair`] as the only
//!   ordering test. This pins the race report to the snapshot-based
//!   relation: whatever `detailed_races` flags, a schedule backend can
//!   re-derive from `accesses()` alone.
//!
//! Driven by the in-tree deterministic generator ([`FuzzConfig`] +
//! [`SplitMix64`] seeds), so the suite builds offline and every run
//! explores exactly the same inputs; failures name the seed.
//!
//! [`OracleDetector::ordered_pair`]: scord_core::OracleDetector::ordered_pair
//! [`OracleDetector::detailed_races`]: scord_core::OracleDetector::detailed_races
//! [`ordered_pair`]: scord_core::OracleDetector::ordered_pair

use std::collections::HashMap;

use scord_core::{
    AccessKind, FuzzConfig, Geometry, OracleAccess, OracleDetector, OrderReason, RaceKind, Trace,
};
use scord_isa::Scope;

/// Seeds per property. Each seed gets its own mischief level, so the
/// corpus spans well-synchronised, mildly racy and chaotic traces.
const SEEDS: u64 = 24;

/// Generates the fuzzed trace for `seed` and replays it through a fresh
/// oracle, returning the oracle with its full access history.
fn replayed(seed: u64, events: u32) -> (Trace, OracleDetector) {
    let cfg = FuzzConfig {
        events,
        race_pct: ((seed * 17) % 101) as u32,
        ..FuzzConfig::default()
    };
    let trace = cfg.generate(seed);
    let mut oracle = OracleDetector::new(Geometry::paper_default());
    trace.replay(&mut oracle).expect("fuzzed trace replays");
    (trace, oracle)
}

fn is_clock_verdict(reason: Option<OrderReason>) -> bool {
    matches!(reason, Some(OrderReason::Barrier | OrderReason::Fence))
}

fn is_sync_verdict(reason: Option<OrderReason>) -> bool {
    matches!(
        reason,
        Some(OrderReason::ProgramOrder | OrderReason::Barrier)
    )
}

// -----------------------------------------------------------------------
// Antisymmetry
// -----------------------------------------------------------------------

/// Within one epoch, the clock-derived verdicts agree with stream order:
/// calling `ordered_pair` with the arguments swapped never yields `Barrier`
/// or `Fence`. The later access's clock is strictly newer than anything
/// the earlier access's snapshots can have recorded about that thread.
#[test]
fn ordered_pair_is_antisymmetric_on_clock_verdicts() {
    let mut cross_thread_pairs = 0usize;
    for seed in 0..SEEDS {
        let (_, oracle) = replayed(seed, 160);
        let accesses = oracle.accesses();
        for j in 1..accesses.len() {
            for i in 0..j {
                let (x, y) = (&accesses[i], &accesses[j]);
                if x.epoch != y.epoch || x.thread == y.thread {
                    continue;
                }
                cross_thread_pairs += 1;
                let swapped = OracleDetector::ordered_pair(y, x);
                assert!(
                    !is_clock_verdict(swapped),
                    "seed {seed}: events {} -> {} claim a backwards {swapped:?} order",
                    x.event,
                    y.event,
                );
            }
        }
    }
    assert!(
        cross_thread_pairs > 10_000,
        "corpus too small to mean anything: {cross_thread_pairs} pairs"
    );
}

// -----------------------------------------------------------------------
// Transitivity
// -----------------------------------------------------------------------

/// Barrier/program order composes at any strength: if `x -> y` and
/// `y -> z` both hold by `ProgramOrder` or `Barrier`, so does `x -> z`.
/// Barriers join full vector clocks (and the block legacy re-joins them
/// for late-mapping warps), so sync coverage is carried transitively.
#[test]
fn barrier_order_is_transitive_at_any_strength() {
    let mut chains = 0usize;
    for seed in 0..SEEDS {
        let (_, oracle) = replayed(seed, 96);
        let accesses = oracle.accesses();
        let n = accesses.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if !is_sync_verdict(OracleDetector::ordered_pair(&accesses[i], &accesses[j])) {
                    continue;
                }
                for k in (j + 1)..n {
                    if !is_sync_verdict(OracleDetector::ordered_pair(&accesses[j], &accesses[k])) {
                        continue;
                    }
                    chains += 1;
                    let closure = OracleDetector::ordered_pair(&accesses[i], &accesses[k]);
                    assert!(
                        is_sync_verdict(closure),
                        "seed {seed}: barrier chain {} -> {} -> {} closes as {closure:?}",
                        accesses[i].event,
                        accesses[j].event,
                        accesses[k].event,
                    );
                }
            }
        }
    }
    assert!(chains > 10_000, "corpus too small: {chains} chains");
}

/// On the strong fragment the full verdict set composes, provided the
/// chain is headed by a non-atomic access and both edges are clock-derived
/// (`ProgramOrder` / `Barrier` / `Fence`): every mechanism that propagates
/// sync coverage (barriers, legacy inheritance, first-map joins) carries
/// the fence-derived clock alongside, so the closure is always ordered.
///
/// The three restrictions are load-bearing, each with a by-design
/// counterexample the oracle's own unit tests pin:
///
/// * a *weak* endpoint breaks the chain (weak accesses do not ride
///   fences — Table IV (c)): weak-store, barrier, strong-store, fence,
///   strong-load composes two edges but leaves the weak store racing;
/// * an *atomic head* of inadequate scope is not repaired by later
///   fences (Table IV (d)), so `Barrier`+`Fence` chains from a
///   block-scoped atomic do not close cross-block;
/// * an `AtomicScope` *edge* orders only the same-location pair — it is
///   a coherence edge, not a release, and carries no prior history.
#[test]
fn strong_nonatomic_order_is_transitive() {
    let strong_edge = |x: &OracleAccess, y: &OracleAccess| {
        matches!(
            OracleDetector::ordered_pair(x, y),
            Some(OrderReason::ProgramOrder | OrderReason::Barrier | OrderReason::Fence)
        )
    };
    let mut chains = 0usize;
    for seed in 0..SEEDS {
        let (_, oracle) = replayed(seed, 96);
        let strong: Vec<&OracleAccess> = oracle.accesses().iter().filter(|a| a.strong).collect();
        let n = strong.len();
        for i in 0..n {
            if strong[i].access.kind.is_atomic() {
                continue;
            }
            for j in (i + 1)..n {
                if !strong_edge(strong[i], strong[j]) {
                    continue;
                }
                for k in (j + 1)..n {
                    if !strong_edge(strong[j], strong[k]) {
                        continue;
                    }
                    chains += 1;
                    assert!(
                        OracleDetector::ordered_pair(strong[i], strong[k]).is_some(),
                        "seed {seed}: strong chain {} -> {} -> {} does not close",
                        strong[i].event,
                        strong[j].event,
                        strong[k].event,
                    );
                }
            }
        }
    }
    assert!(chains > 10_000, "corpus too small: {chains} chains");
}

/// The documented counterexample for the weak fragment, pinned as a
/// concrete trace so the restriction in
/// [`strong_nonatomic_order_is_transitive`] is visibly necessary rather
/// than defensive: `ordered_pair` composes two edges yet leaves the
/// endpoints unordered when the head is weak.
#[test]
fn transitivity_fails_by_design_for_weak_heads() {
    use scord_core::{Accessor, MemAccess, TraceEvent};
    let who = |block: u8, warp: u8| Accessor {
        sm: block / 8,
        block_slot: block,
        warp_slot: warp,
    };
    let mem = |kind, addr, strong, pc, who| {
        TraceEvent::Access(MemAccess {
            kind,
            addr,
            strong,
            pc,
            who,
        })
    };
    // Weak store by (0,0); barrier orders it with (0,1); (0,1) strong-stores
    // and device-fences; (8,0) strong-loads. Both edges hold, the closure
    // does not: the weak store never rode the fence.
    let mut trace = Trace::new();
    for ev in [
        mem(AccessKind::Store, 0x100, false, 1, who(0, 0)),
        mem(AccessKind::Load, 0x40, false, 2, who(0, 1)),
        TraceEvent::Barrier {
            sm: 0,
            block_slot: 0,
        },
        mem(AccessKind::Store, 0x200, true, 3, who(0, 1)),
        TraceEvent::Fence {
            sm: 0,
            warp_slot: 1,
            scope: Scope::Device,
        },
        mem(AccessKind::Load, 0x200, true, 4, who(8, 0)),
    ] {
        trace.push(ev);
    }
    let mut oracle = OracleDetector::new(Geometry::paper_default());
    trace.replay(&mut oracle).unwrap();
    let a = oracle.accesses();
    let (x, y, z) = (&a[0], &a[2], &a[3]);
    assert_eq!(
        OracleDetector::ordered_pair(x, y),
        Some(OrderReason::Barrier)
    );
    assert_eq!(OracleDetector::ordered_pair(y, z), Some(OrderReason::Fence));
    assert_eq!(
        OracleDetector::ordered_pair(x, z),
        None,
        "the weak head must not close through the fence chain"
    );
}

// -----------------------------------------------------------------------
// detailed_races exactness
// -----------------------------------------------------------------------

/// The race kind the oracle assigns to an unordered conflicting pair,
/// reimplemented from the documented rules.
fn expected_kind(x: &OracleAccess, y: &OracleAccess) -> RaceKind {
    if let AccessKind::Atomic { scope, .. } = x.access.kind {
        if scope == Scope::Block && x.access.who.block_slot != y.access.who.block_slot {
            return RaceKind::ScopedAtomic;
        }
    }
    if !(x.strong && y.strong) {
        return RaceKind::NotStrong;
    }
    if x.access.who.block_slot == y.access.who.block_slot {
        RaceKind::MissingBlockFence
    } else {
        RaceKind::MissingDeviceFence
    }
}

/// Per-address checking window, per epoch (a kernel boundary drops all
/// pair history).
#[derive(Default)]
struct Window {
    last_write: Option<usize>,
    readers: Vec<usize>,
    last_access: Option<usize>,
}

/// Replays the oracle's documented checking discipline over `accesses`
/// using only [`OracleDetector::ordered_pair`] on the recorded snapshots,
/// producing `(earlier, later, kind)` triples in report order.
fn expected_races(accesses: &[OracleAccess]) -> Vec<(usize, usize, RaceKind)> {
    let mut windows: HashMap<(usize, u64), Window> = HashMap::new();
    let mut expected = Vec::new();
    for (y_idx, y) in accesses.iter().enumerate() {
        let w = windows.entry((y.epoch, y.access.addr)).or_default();
        let is_write = y.access.kind.is_write();
        let is_atomic = y.access.kind.is_atomic();

        // Happens-before family: the last write, plus every read since
        // that write when y itself writes.
        let mut partners: Vec<usize> = Vec::new();
        partners.extend(w.last_write);
        if is_write {
            partners.extend(w.readers.iter().copied());
        }
        for x_idx in partners {
            let x = &accesses[x_idx];
            if OracleDetector::ordered_pair(x, y).is_none() {
                expected.push((x_idx, y_idx, expected_kind(x, y)));
            }
        }

        // Scoped-lockset family on the last accessor (Table IV e/f).
        if let Some(z_idx) = w.last_access {
            let z = &accesses[z_idx];
            let conflicting = is_write || z.access.kind.is_write();
            if conflicting && !is_atomic && !z.access.kind.is_atomic() {
                let joint_nonempty = !z.locks.is_empty() || !y.locks.is_empty();
                let disjoint = !z.locks.iter().any(|l| y.locks.contains(l));
                if joint_nonempty
                    && disjoint
                    && !is_sync_verdict(OracleDetector::ordered_pair(z, y))
                {
                    let kind = if is_write {
                        RaceKind::MissingLockStore
                    } else {
                        RaceKind::MissingLockLoad
                    };
                    expected.push((z_idx, y_idx, kind));
                }
            }
        }

        if is_write {
            w.last_write = Some(y_idx);
            w.readers.clear();
        } else {
            w.readers.push(y_idx);
        }
        w.last_access = Some(y_idx);
    }
    expected
}

/// `detailed_races` is exactly the set of checked conflicting pairs with
/// no order either way, in report order — reproduced here from
/// `accesses()` and `ordered_pair` alone, kinds included. Racy and
/// well-synchronised corpora both participate (the latter pin the "no
/// expected races, none reported" half).
#[test]
fn detailed_races_match_the_documented_discipline_exactly() {
    let mut total = 0usize;
    let mut racy_traces = 0usize;
    for seed in 0..SEEDS {
        let (_, oracle) = replayed(seed, 240);
        let actual: Vec<(usize, usize, RaceKind)> = oracle
            .detailed_races()
            .iter()
            .map(|r| (r.earlier, r.later, r.kind))
            .collect();
        let expected = expected_races(oracle.accesses());
        assert_eq!(
            actual, expected,
            "seed {seed}: oracle report diverges from the documented discipline"
        );
        total += actual.len();
        racy_traces += usize::from(!actual.is_empty());
        // Every reported pair must itself be unordered and conflicting —
        // the property the schedule backends rely on.
        for (e, l, _) in &actual {
            let (x, y) = (&oracle.accesses()[*e], &oracle.accesses()[*l]);
            assert_eq!(x.access.addr, y.access.addr, "seed {seed}: pair addresses");
            assert!(
                x.access.kind.is_write() || y.access.kind.is_write(),
                "seed {seed}: reported pair does not conflict"
            );
        }
    }
    assert!(
        total > 100 && racy_traces > SEEDS as usize / 2,
        "corpus too tame: {total} races over {racy_traces} racy traces"
    );
}
