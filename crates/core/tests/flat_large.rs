//! Paper-scale capacity test for `FlatMap`: the full-store metadata map
//! for a 25.6M-element reduction materializes tens of millions of
//! entries, so correctness (and `clear()`'s no-realloc contract) must be
//! proven at that size, not extrapolated from the 10k-entry unit tests.
//!
//! The 16M-key growth loop is ~10× slower unoptimized, so the test is
//! ignored in debug builds; CI's `paper-scale-smoke` job runs it under
//! `--release` (where `#[ignore]` does not apply), and `cargo test
//! --release -p scord-core` runs it locally.

use scord_core::FlatMap;

/// Deterministic key stream: SplitMix64 over a sparse range so probe
/// chains cross slot boundaries the dense unit tests never reach.
fn key(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    // Stay clear of the u64::MAX sentinel.
    (z ^ (z >> 31)) & (u64::MAX >> 1)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "16M-key growth is ~10x slower in debug; run with --release (CI paper-scale-smoke does)"
)]
fn sixteen_million_keys_grow_lookup_delete_and_clear() {
    const N: u64 = 16 * 1024 * 1024 + 7; // ≥16M, off a power of two

    let mut m: FlatMap<u32> = FlatMap::new();
    for i in 0..N {
        assert_eq!(m.insert(key(i), i as u32), None, "key collision at {i}");
    }
    assert_eq!(m.len(), N as usize);
    assert!(m.capacity().is_power_of_two());
    assert!(m.len() * 8 <= m.capacity() * 7, "load bound holds at scale");
    assert_eq!(
        m.heap_bytes(),
        m.capacity() as u64 * (8 + std::mem::size_of::<u32>() as u64)
    );

    // Spot-check lookups across the whole range (every 4096th key plus
    // the boundaries).
    for i in (0..N).step_by(4096).chain([0, N / 2, N - 1]) {
        assert_eq!(m.get(key(i)), Some(&(i as u32)), "lookup of key {i}");
    }
    assert_eq!(m.get(key(N + 1)), None, "absent key stays absent at scale");

    // Delete a stride; survivors must remain reachable (backward-shift
    // deletion re-compacts probe chains that are now millions long).
    let mut removed = 0usize;
    for i in (0..N).step_by(16) {
        assert_eq!(m.remove(key(i)), Some(i as u32), "delete of key {i}");
        removed += 1;
    }
    assert_eq!(m.len(), N as usize - removed);
    for i in (0..N).step_by(4096) {
        let want = if i % 16 == 0 { None } else { Some(i as u32) };
        assert_eq!(m.get(key(i)).copied(), want, "post-delete key {i}");
    }

    // clear() must retain capacity: paper-scale runs reset the store at
    // every kernel boundary, and re-growing a 16M-entry table each time
    // would dominate the run.
    let cap = m.capacity();
    let bytes = m.heap_bytes();
    m.clear();
    assert!(m.is_empty());
    assert_eq!(m.capacity(), cap, "clear() must not shrink");
    assert_eq!(m.heap_bytes(), bytes);

    // Refill a slice without any growth (capacity was retained).
    for i in 0..1_000_000u64 {
        m.insert(key(i), (i as u32) ^ 1);
    }
    assert_eq!(m.capacity(), cap, "refill within capacity must not grow");
    assert_eq!(m.get(key(123_456)), Some(&(123_456u32 ^ 1)));
}
