//! Characterization tests pinning down ScoRD's *documented* accuracy
//! limits — the false-negative sources the paper accepts by design. Each
//! test demonstrates the limit with a concrete witness and a control
//! showing the detector catches the same bug once the limit is removed.
//!
//! These are regression tests for the documentation, not the code: if a
//! future change makes one fail, either the limit was fixed (update the
//! docs and the test) or detection regressed (the control catches that).

use scord_core::{
    bloom_bit, lock_hash, AccessKind, Accessor, AtomKind, Detector, DetectorConfig, FaultKind,
    FaultPlan, MemAccess, RaceKind, ScordDetector,
};
use scord_isa::Scope;

const MEM: u64 = 1 << 20;
const DATA: u64 = 0x500;

fn det() -> ScordDetector {
    ScordDetector::new(DetectorConfig::base_design(MEM))
}

fn accessor(sm: u8, block_slot: u8, warp_slot: u8) -> Accessor {
    Accessor {
        sm,
        block_slot,
        warp_slot,
    }
}

fn access(d: &mut ScordDetector, kind: AccessKind, addr: u64, who: Accessor, pc: u32) {
    d.on_access(&MemAccess {
        kind,
        addr,
        strong: true,
        pc,
        who,
    })
    .unwrap();
}

/// Runs a two-thread "different locks guard the same data" protocol and
/// returns the reported race kinds.
fn two_locks_protocol(lock_a: u64, lock_b: u64) -> Vec<RaceKind> {
    let w1 = accessor(0, 0, 0);
    let w2 = accessor(1, 8, 0);
    let mut d = det();
    for (w, lock, pc) in [(w1, lock_a, 10), (w2, lock_b, 20)] {
        access(
            &mut d,
            AccessKind::Atomic {
                kind: AtomKind::Cas,
                scope: Scope::Device,
            },
            lock,
            w,
            pc,
        );
        d.on_fence(w.sm, w.warp_slot, Scope::Device).unwrap();
        access(&mut d, AccessKind::Store, DATA, w, pc + 1);
        d.on_fence(w.sm, w.warp_slot, Scope::Device).unwrap();
        access(
            &mut d,
            AccessKind::Atomic {
                kind: AtomKind::Exch,
                scope: Scope::Device,
            },
            lock,
            w,
            pc + 2,
        );
    }
    let mut kinds: Vec<_> = d.races().unique_races().map(|(_, k)| k).collect();
    kinds.sort_by_key(|k| format!("{k}"));
    kinds
}

/// 64 lock hashes map into 16 bloom bits, so by pigeonhole distinct locks
/// must share filter bits — and a data race guarded by two *different*
/// locks whose bits collide is indistinguishable from a correctly locked
/// protocol (a designed-in false negative of the 16-bit filter).
#[test]
fn lock_bloom_collision_hides_a_distinct_lock_race() {
    // Pigeonhole, stated as a measurement: the 64 hash values land on at
    // most 16 distinct filter bits.
    let distinct: std::collections::HashSet<u16> =
        (0..64).map(|h| bloom_bit(h, Scope::Device)).collect();
    assert!(distinct.len() <= 16, "16-bit filter");

    // Concrete witness: 0x8 and 0x24 hash differently but share a bit.
    let (lock_a, lock_b) = (0x8, 0x24);
    assert_ne!(lock_hash(lock_a), lock_hash(lock_b), "different locks");
    assert_eq!(
        bloom_bit(lock_hash(lock_a), Scope::Device),
        bloom_bit(lock_hash(lock_b), Scope::Device),
        "colliding filter bits"
    );
    assert!(
        two_locks_protocol(lock_a, lock_b).is_empty(),
        "the collision makes the distinct-lock race invisible"
    );

    // Control: the same protocol with non-colliding locks is caught.
    let (lock_c, lock_d) = (0x400, 0x440);
    assert_ne!(
        bloom_bit(lock_hash(lock_c), Scope::Device),
        bloom_bit(lock_hash(lock_d), Scope::Device),
        "control locks must not collide"
    );
    assert!(
        two_locks_protocol(lock_c, lock_d).contains(&RaceKind::MissingLockStore),
        "without the collision the lockset check fires"
    );
}

/// Metadata names accessors by hardware slot, not logical thread: when a
/// finished block's slot is reused by a new block, the new block's accesses
/// alias the old block's metadata and pass the program-order check — a
/// slot-reuse false negative.
#[test]
fn block_slot_reuse_aliases_cross_block_conflicts_to_program_order() {
    // Two logically different blocks that happen to occupy the SAME
    // hardware slot (sequential residency): indistinguishable to ScoRD.
    let old_block = accessor(0, 0, 0);
    let new_block_same_slot = accessor(0, 0, 0);
    let mut d = det();
    access(&mut d, AccessKind::Store, 0x100, old_block, 1);
    access(&mut d, AccessKind::Load, 0x100, new_block_same_slot, 2);
    assert_eq!(
        d.races().unique_count(),
        0,
        "slot reuse aliases the pair into program order"
    );

    // Control: had the new block landed in any other slot, the same
    // unsynchronized pair is a device-fence race.
    let new_block_other_slot = accessor(1, 8, 0);
    let mut d = det();
    access(&mut d, AccessKind::Store, 0x100, old_block, 1);
    access(&mut d, AccessKind::Load, 0x100, new_block_other_slot, 2);
    assert_eq!(d.races().unique_count(), 1, "no aliasing, race caught");
}

/// Same limit one level down: a warp slot reused within a live block. The
/// lock table is cleared on reassignment (`on_warp_assigned`), but the
/// *metadata* still names the old warp, so a conflicting access from the
/// slot's new tenant is mistaken for program order.
#[test]
fn warp_slot_reuse_aliases_same_block_conflicts() {
    let slot = accessor(0, 0, 3);
    let mut d = det();
    access(&mut d, AccessKind::Store, 0x200, slot, 1);
    // The warp exits; a new warp of the same block takes slot 3.
    d.on_warp_assigned(slot.sm, slot.warp_slot).unwrap();
    access(&mut d, AccessKind::Load, 0x200, slot, 2);
    assert_eq!(
        d.races().unique_count(),
        0,
        "metadata still says warp 3: aliased to program order"
    );

    // Control: the new warp in a different slot races as it should.
    let other = accessor(0, 0, 4);
    let mut d = det();
    access(&mut d, AccessKind::Store, 0x200, slot, 1);
    d.on_warp_assigned(slot.sm, slot.warp_slot).unwrap();
    access(&mut d, AccessKind::Load, 0x200, other, 2);
    assert_eq!(d.races().unique_count(), 1);
}

/// Regression: metadata bit flips can fabricate out-of-range block/warp
/// ids inside stored entries; the detector must index its hardware state
/// like the real index wires would (truncation), never panic. Runs every
/// detector-level fault kind at a 100% rate over a busy cross-block
/// stream.
#[test]
fn saturated_fault_injection_never_panics() {
    for kind in [
        FaultKind::MetadataBitFlip,
        FaultKind::MetadataEvict,
        FaultKind::FenceCorrupt,
        FaultKind::LockInvalidate,
        FaultKind::BloomFlip,
    ] {
        let cfg =
            DetectorConfig::base_design(MEM).with_faults(FaultPlan::single(kind, 1_000_000, 99));
        let mut d = ScordDetector::new(cfg);
        for pc in 0..600u32 {
            let block = (pc % 120) as u8;
            let who = accessor(block / 8, block, (pc % 32) as u8);
            let addr = u64::from(pc % 32) * 4;
            let k = match pc % 3 {
                0 => AccessKind::Store,
                1 => AccessKind::Load,
                _ => AccessKind::Atomic {
                    kind: AtomKind::Cas,
                    scope: Scope::Device,
                },
            };
            access(&mut d, k, addr, who, pc);
            if pc % 7 == 0 {
                d.on_fence(who.sm, who.warp_slot, Scope::Device).unwrap();
            }
            if pc % 13 == 0 {
                d.on_barrier(who.sm, who.block_slot).unwrap();
            }
        }
        let stats = d.fault_stats().expect("plan armed");
        assert!(stats.total() > 0, "{kind:?} must have injected");
    }
}

/// Bloom false-positive *rate* at the paper geometry: the probability that
/// two distinct random lock addresses produce intersecting single-lock
/// Blooms (so the lockset check wrongly sees a common lock, hiding a
/// distinct-lock race).
///
/// With a 6-bit lock hash folded onto a 16-bit filter, a uniform mapping
/// would collide ~1/16 of the time (6.25%). The documented bound for the
/// implementation is **10%** over 1k random lock ids; the lower bound
/// guards against the test silently measuring nothing.
#[test]
fn lock_bloom_false_positive_rate_is_bounded() {
    use scord_core::SplitMix64;

    let mut rng = SplitMix64::new(0xB10C);
    // 1k random 4-byte-aligned lock addresses across a large heap.
    let locks: Vec<u64> = (0..1000).map(|_| rng.below(1 << 28) * 4).collect();

    let mut pairs = 0u64;
    let mut colliding = 0u64;
    for (i, &a) in locks.iter().enumerate() {
        for &b in &locks[i + 1..] {
            if a == b {
                continue; // identical ids share bits legitimately
            }
            pairs += 1;
            let ba = bloom_bit(lock_hash(a), Scope::Device);
            let bb = bloom_bit(lock_hash(b), Scope::Device);
            if ba & bb != 0 {
                colliding += 1;
            }
        }
    }
    let rate = colliding as f64 / pairs as f64;
    assert!(
        rate < 0.10,
        "bloom FP rate {rate:.4} exceeds the documented 10% bound \
         ({colliding}/{pairs} colliding pairs)"
    );
    assert!(
        rate > 0.01,
        "bloom FP rate {rate:.4} implausibly low — measurement broken?"
    );
}
