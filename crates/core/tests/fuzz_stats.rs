//! Statistical guarantees of the seeded trace fuzzer.
//!
//! The differential and schedule-space audits both lean on
//! [`FuzzConfig::generate`] for corpus supply, so its distribution is part
//! of the testing contract: a non-zero `race_pct` must actually inject
//! oracle-confirmed races (not just syntactic mischief), `race_pct = 0`
//! must stay clean, and distinct seeds must explore distinct programs.
//! These tests pin those properties over a 100-seed sample with bands wide
//! enough to survive benign generator evolution but tight enough to catch
//! a fuzzer that silently stopped producing (or started over-producing)
//! races. Everything is deterministic — same seeds, same traces, same
//! counts on every run.

use scord_core::{FuzzConfig, Geometry, OracleDetector, Trace};

const SAMPLE: u64 = 100;

/// Oracle-confirmed race count for one generated trace.
fn oracle_races(trace: &Trace) -> usize {
    let mut oracle = OracleDetector::new(Geometry::paper_default());
    trace.replay(&mut oracle).expect("fuzzed trace replays");
    oracle.detailed_races().len()
}

fn counts(cfg: &FuzzConfig) -> Vec<usize> {
    (0..SAMPLE)
        .map(|seed| oracle_races(&cfg.generate(seed)))
        .collect()
}

/// With `race_pct = 25` every seed in the sample produces at least one
/// oracle-confirmed race, and the per-trace counts sit in a sane band:
/// the injection knob works, and it is calibrated (neither homeopathic
/// nor saturating). Measured distribution at the time of writing:
/// min 1, median 15, max 38, total ≈ 1570 over the sample.
#[test]
fn nonzero_race_pct_injects_confirmed_races_across_100_seeds() {
    let cfg = FuzzConfig {
        race_pct: 25,
        ..FuzzConfig::default()
    };
    let counts = counts(&cfg);
    let racy = counts.iter().filter(|&&c| c > 0).count();
    let total: usize = counts.iter().sum();
    let max = counts.iter().copied().max().unwrap_or(0);
    assert_eq!(
        racy, SAMPLE as usize,
        "every seed should inject at least one oracle race, got {racy}/{SAMPLE}"
    );
    assert!(
        (500..=4_000).contains(&total),
        "sample total {total} outside the calibrated band [500, 4000]"
    );
    assert!(
        max <= 120,
        "per-trace maximum {max} suggests the generator saturated"
    );
}

/// The injection rate is monotone in expectation: doubling `race_pct`
/// produces clearly more oracle races over the sample.
#[test]
fn race_injection_scales_with_race_pct() {
    let at = |pct: u32| -> usize {
        counts(&FuzzConfig {
            race_pct: pct,
            ..FuzzConfig::default()
        })
        .iter()
        .sum()
    };
    let (low, high) = (at(25), at(50));
    assert!(
        high > low + low / 2,
        "race_pct 50 should out-produce race_pct 25 by a wide margin: {low} vs {high}"
    );
}

/// `race_pct = 0` generates only well-synchronised programs: the oracle
/// confirms zero races across the whole sample. This is the soundness
/// half the audits rely on when they treat fuzzed-clean traces as
/// negative controls.
#[test]
fn zero_race_pct_is_oracle_clean_across_100_seeds() {
    let cfg = FuzzConfig {
        race_pct: 0,
        ..FuzzConfig::default()
    };
    for (seed, races) in counts(&cfg).iter().enumerate() {
        assert_eq!(
            *races, 0,
            "seed {seed}: race_pct = 0 produced an oracle-confirmed race"
        );
    }
}

/// Distinct seeds explore distinct programs: no two of the 100 sampled
/// seeds generate the same event sequence, and generation is stable per
/// seed (same seed, same trace).
#[test]
fn distinct_seeds_generate_distinct_traces() {
    let cfg = FuzzConfig::default();
    let traces: Vec<Trace> = (0..SAMPLE).map(|seed| cfg.generate(seed)).collect();
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            assert_ne!(
                traces[i].events(),
                traces[j].events(),
                "seeds {i} and {j} generated identical traces"
            );
        }
    }
    let again = cfg.generate(7);
    assert_eq!(
        traces[7].events(),
        again.events(),
        "generation must be deterministic per seed"
    );
}
