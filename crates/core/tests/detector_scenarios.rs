//! Scenario tests for the ScoRD detection semantics (paper §IV-A,
//! Tables III and IV). Each test is a miniature two-or-three-thread protocol
//! driven directly into the detector, mirroring the reasoning in the paper's
//! running examples (Figures 3–5).

use scord_core::{
    AccessKind, Accessor, AtomKind, Detector, DetectorConfig, MemAccess, RaceKind, ScordDetector,
    StoreKind,
};
use scord_isa::Scope;

const MEM: u64 = 1 << 20;

/// Warp 0 of block slot 0 on SM 0.
const W1: Accessor = Accessor {
    sm: 0,
    block_slot: 0,
    warp_slot: 0,
};
/// Warp 1 of the same block.
const W1B: Accessor = Accessor {
    sm: 0,
    block_slot: 0,
    warp_slot: 1,
};
/// Warp 0 of block slot 8 on SM 1 (a different block on a different SM).
const W2: Accessor = Accessor {
    sm: 1,
    block_slot: 8,
    warp_slot: 0,
};
/// Warp 0 of block slot 16 on SM 2.
const W3: Accessor = Accessor {
    sm: 2,
    block_slot: 16,
    warp_slot: 0,
};

fn det() -> ScordDetector {
    ScordDetector::new(DetectorConfig::base_design(MEM))
}

fn cached_det() -> ScordDetector {
    ScordDetector::new(DetectorConfig::paper_default(MEM))
}

fn ld(det: &mut ScordDetector, addr: u64, who: Accessor, pc: u32) {
    det.on_access(&MemAccess {
        kind: AccessKind::Load,
        addr,
        strong: true,
        pc,
        who,
    })
    .unwrap();
}

fn ld_weak(det: &mut ScordDetector, addr: u64, who: Accessor, pc: u32) {
    det.on_access(&MemAccess {
        kind: AccessKind::Load,
        addr,
        strong: false,
        pc,
        who,
    })
    .unwrap();
}

fn st(det: &mut ScordDetector, addr: u64, who: Accessor, pc: u32) {
    det.on_access(&MemAccess {
        kind: AccessKind::Store,
        addr,
        strong: true,
        pc,
        who,
    })
    .unwrap();
}

fn st_weak(det: &mut ScordDetector, addr: u64, who: Accessor, pc: u32) {
    det.on_access(&MemAccess {
        kind: AccessKind::Store,
        addr,
        strong: false,
        pc,
        who,
    })
    .unwrap();
}

fn atom(det: &mut ScordDetector, addr: u64, who: Accessor, pc: u32, kind: AtomKind, scope: Scope) {
    det.on_access(&MemAccess {
        kind: AccessKind::Atomic { kind, scope },
        addr,
        strong: true,
        pc,
        who,
    })
    .unwrap();
}

fn kinds(det: &ScordDetector) -> Vec<RaceKind> {
    let mut v: Vec<_> = det.races().unique_races().map(|(_, k)| k).collect();
    v.sort_by_key(|k| format!("{k}"));
    v
}

// ---------------------------------------------------------------------------
// Preliminary checks (Table III)
// ---------------------------------------------------------------------------

#[test]
fn first_access_is_trivially_race_free() {
    let mut d = det();
    let eff = d
        .on_access(&MemAccess {
            kind: AccessKind::Store,
            addr: 0x100,
            strong: false,
            pc: 1,
            who: W1,
        })
        .unwrap();
    assert!(eff.prelim_pass, "condition (a): initialization");
    assert!(d.races().is_empty());
}

#[test]
fn program_order_is_race_free() {
    let mut d = det();
    st_weak(&mut d, 0x100, W1, 1);
    ld_weak(&mut d, 0x100, W1, 2);
    st_weak(&mut d, 0x100, W1, 3);
    assert!(d.races().is_empty(), "condition (b): same warp, no sharing");
}

#[test]
fn barrier_separates_same_block_conflicts() {
    let mut d = det();
    st_weak(&mut d, 0x100, W1, 1);
    d.on_barrier(0, 0).unwrap();
    ld_weak(&mut d, 0x100, W1B, 2);
    assert!(
        d.races().is_empty(),
        "condition (c): a barrier synchronizes even weak accesses in a block"
    );
}

#[test]
fn same_block_conflict_without_barrier_races() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    ld(&mut d, 0x100, W1B, 2);
    assert_eq!(kinds(&d), vec![RaceKind::MissingBlockFence]);
}

// ---------------------------------------------------------------------------
// Fence races (Table IV (a)/(b)) — including scoped-fence races
// ---------------------------------------------------------------------------

#[test]
fn block_fence_synchronizes_within_block() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Block).unwrap();
    ld(&mut d, 0x100, W1B, 2);
    assert!(d.races().is_empty());
}

#[test]
fn device_fence_synchronizes_across_blocks() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2);
    assert!(d.races().is_empty());
}

#[test]
fn block_fence_is_insufficient_across_blocks() {
    // The scoped-fence race of Figure 4: __threadfence_block where
    // __threadfence was needed.
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Block).unwrap();
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::MissingDeviceFence]);
}

#[test]
fn missing_fence_across_blocks_races() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::MissingDeviceFence]);
}

#[test]
fn many_readers_of_published_data_are_race_free() {
    // Produce once with a device fence, consume from several blocks: the
    // read-only epoch must not generate false positives.
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2);
    ld(&mut d, 0x100, W3, 3);
    ld(&mut d, 0x100, W1B, 4);
    assert!(d.races().is_empty(), "{:?}", d.races().records());
}

#[test]
fn write_after_unsynchronized_read_races() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2); // properly consumed
    st(&mut d, 0x100, W3, 3); // but nobody synchronized with the reader
    assert_eq!(kinds(&d), vec![RaceKind::MissingDeviceFence]);
}

#[test]
fn write_after_read_with_reader_fence_is_race_free() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2);
    d.on_fence(W2.sm, W2.warp_slot, Scope::Device).unwrap(); // reader hands back
    st(&mut d, 0x100, W3, 3);
    assert!(d.races().is_empty(), "{:?}", d.races().records());
}

#[test]
fn fence_counter_wrap_is_the_theoretical_false_positive() {
    // §IV-A: exactly 64 device fences between the accesses wrap the 6-bit
    // counter and produce a (practically non-existent) false race.
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    for _ in 0..64 {
        d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    }
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(
        kinds(&d),
        vec![RaceKind::MissingDeviceFence],
        "documented 6-bit overflow artifact"
    );
}

// ---------------------------------------------------------------------------
// Strong/weak races (Table IV (c))
// ---------------------------------------------------------------------------

#[test]
fn weak_store_published_by_fence_still_races() {
    // Fences only order strong operations (§II-B): a non-volatile store is
    // not made visible by a fence.
    let mut d = det();
    st_weak(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::NotStrong]);
}

#[test]
fn weak_read_of_fence_published_data_races() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld_weak(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::NotStrong]);
}

#[test]
fn strong_flag_re_arms_after_reinitialization() {
    let mut d = det();
    st_weak(&mut d, 0x100, W1, 1);
    d.reset();
    st(&mut d, 0x100, W1, 2);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 3);
    assert!(d.races().is_empty());
}

// ---------------------------------------------------------------------------
// Scoped atomics (Table IV (d))
// ---------------------------------------------------------------------------

#[test]
fn device_atomics_need_no_fences() {
    let mut d = det();
    atom(&mut d, 0x100, W1, 1, AtomKind::Other, Scope::Device);
    atom(&mut d, 0x100, W2, 2, AtomKind::Other, Scope::Device);
    ld(&mut d, 0x100, W3, 3);
    assert!(
        d.races().is_empty(),
        "device-scope atomics take effect at the shared cache: {:?}",
        d.races().records()
    );
}

#[test]
fn block_atomics_are_fine_within_a_block() {
    let mut d = det();
    atom(&mut d, 0x100, W1, 1, AtomKind::Other, Scope::Block);
    atom(&mut d, 0x100, W1B, 2, AtomKind::Other, Scope::Block);
    ld(&mut d, 0x100, W1B, 3);
    assert!(d.races().is_empty(), "{:?}", d.races().records());
}

#[test]
fn block_atomic_observed_across_blocks_is_a_scoped_race() {
    // The work-stealing bug of Figure 3b: atomicAdd_block on nextHead while
    // another block steals with a device atomic.
    let mut d = det();
    atom(&mut d, 0x100, W1, 1, AtomKind::Other, Scope::Block);
    atom(&mut d, 0x100, W2, 2, AtomKind::Other, Scope::Device);
    assert_eq!(kinds(&d), vec![RaceKind::ScopedAtomic]);
}

#[test]
fn load_of_block_scoped_atomic_from_other_block_races() {
    let mut d = det();
    atom(&mut d, 0x100, W1, 1, AtomKind::Other, Scope::Block);
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::ScopedAtomic]);
}

#[test]
fn atomic_after_plain_store_is_checked_as_store() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    atom(&mut d, 0x100, W2, 2, AtomKind::Other, Scope::Device);
    assert_eq!(
        kinds(&d),
        vec![RaceKind::MissingDeviceFence],
        "atomic vs earlier non-atomic store needs synchronization"
    );
}

// ---------------------------------------------------------------------------
// Lockset (Table IV (e)/(f)) — inferred scoped locks
// ---------------------------------------------------------------------------

const LOCK: u64 = 0x400;
const DATA: u64 = 0x500;

fn acquire(d: &mut ScordDetector, who: Accessor, scope: Scope, fence: bool, pc: u32) {
    atom(d, LOCK, who, pc, AtomKind::Cas, scope);
    if fence {
        d.on_fence(who.sm, who.warp_slot, scope).unwrap();
    }
}

fn release(d: &mut ScordDetector, who: Accessor, scope: Scope, fence: bool, pc: u32) {
    if fence {
        d.on_fence(who.sm, who.warp_slot, scope).unwrap();
    }
    atom(d, LOCK, who, pc, AtomKind::Exch, scope);
}

#[test]
fn correct_device_lock_protocol_is_race_free() {
    let mut d = det();
    for (i, w) in [W1, W2, W3].iter().enumerate() {
        let pc = 10 * (i as u32 + 1);
        acquire(&mut d, *w, Scope::Device, true, pc);
        ld(&mut d, DATA, *w, pc + 1);
        st(&mut d, DATA, *w, pc + 2);
        release(&mut d, *w, Scope::Device, true, pc + 3);
    }
    assert!(d.races().is_empty(), "{:?}", d.races().records());
}

#[test]
fn missing_acquire_fence_breaks_the_lock() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Device, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Device, true, 12);
    // Second thread "acquires" with CAS but no fence: the lock table entry
    // never activates, so its accesses carry an empty bloom filter.
    acquire(&mut d, W2, Scope::Device, false, 20);
    st(&mut d, DATA, W2, 21);
    release(&mut d, W2, Scope::Device, true, 22);
    assert!(
        kinds(&d).contains(&RaceKind::MissingLockStore),
        "{:?}",
        kinds(&d)
    );
}

#[test]
fn unlocked_store_to_locked_data_races() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Device, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Device, true, 12);
    st(&mut d, DATA, W2, 20);
    assert!(
        kinds(&d).contains(&RaceKind::MissingLockStore),
        "{:?}",
        kinds(&d)
    );
}

#[test]
fn unlocked_load_of_locked_data_races() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Device, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Device, true, 12);
    ld(&mut d, DATA, W2, 20);
    assert!(
        kinds(&d).contains(&RaceKind::MissingLockLoad),
        "{:?}",
        kinds(&d)
    );
}

#[test]
fn different_locks_do_not_protect() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Device, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Device, true, 12);

    // W2 holds a DIFFERENT lock while touching the same data.
    atom(&mut d, 0x440, W2, 20, AtomKind::Cas, Scope::Device);
    d.on_fence(W2.sm, W2.warp_slot, Scope::Device).unwrap();
    st(&mut d, DATA, W2, 21);
    d.on_fence(W2.sm, W2.warp_slot, Scope::Device).unwrap();
    atom(&mut d, 0x440, W2, 22, AtomKind::Exch, Scope::Device);

    assert!(
        kinds(&d).contains(&RaceKind::MissingLockStore),
        "{:?}",
        kinds(&d)
    );
}

#[test]
fn block_scoped_lock_across_blocks_is_a_scoped_race() {
    // The UTS bug (Figure 5): a block-scoped lock guarding globally shared
    // data. The lock word itself exposes the scoped-atomic race.
    let mut d = det();
    acquire(&mut d, W1, Scope::Block, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Block, true, 12);
    acquire(&mut d, W2, Scope::Block, true, 20);
    st(&mut d, DATA, W2, 21);
    release(&mut d, W2, Scope::Block, true, 22);
    let ks = kinds(&d);
    assert!(ks.contains(&RaceKind::ScopedAtomic), "{ks:?}");
    assert!(
        ks.contains(&RaceKind::MissingDeviceFence),
        "the data is also unsynchronized across blocks: {ks:?}"
    );
}

#[test]
fn block_scoped_lock_within_a_block_is_race_free() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Block, true, 10);
    st(&mut d, DATA, W1, 11);
    release(&mut d, W1, Scope::Block, true, 12);
    acquire(&mut d, W1B, Scope::Block, true, 20);
    ld(&mut d, DATA, W1B, 21);
    st(&mut d, DATA, W1B, 22);
    release(&mut d, W1B, Scope::Block, true, 23);
    assert!(d.races().is_empty(), "{:?}", d.races().records());
}

#[test]
fn warp_reassignment_clears_held_locks() {
    let mut d = det();
    acquire(&mut d, W1, Scope::Device, true, 10);
    st(&mut d, DATA, W1, 11);
    d.on_warp_assigned(W1.sm, W1.warp_slot).unwrap();
    // The new warp in the same slot writes without a lock: must race even
    // though the slot's table previously held the lock.
    st(&mut d, DATA, W2, 20);
    assert!(
        kinds(&d).contains(&RaceKind::MissingLockStore),
        "{:?}",
        kinds(&d)
    );
}

// ---------------------------------------------------------------------------
// Metadata stores: caching false negatives, granularity false positives
// ---------------------------------------------------------------------------

#[test]
fn cached_store_alias_eviction_can_hide_a_race() {
    // Table VI's single false negative: aliasing in the direct-mapped
    // metadata cache evicts the entry a racey access would have matched.
    let mut full = det();
    st(&mut full, 0x100, W1, 1);
    st(&mut full, 0x104, W2, 2); // neighbouring word, same cached slot
    ld(&mut full, 0x100, W3, 3);
    assert_eq!(full.races().unique_count(), 1, "base design sees the race");

    let mut cached = cached_det();
    st(&mut cached, 0x100, W1, 1);
    st(&mut cached, 0x104, W2, 2); // evicts 0x100's metadata
    ld(&mut cached, 0x100, W3, 3);
    assert_eq!(
        cached.races().unique_count(),
        0,
        "cached store misses both: 0x104's store found a tag mismatch and \
         0x100's load found the evicted slot"
    );
}

#[test]
fn cached_store_still_catches_temporally_local_races() {
    // The paper's justification: racey accesses are close in time, so the
    // entry is usually still resident.
    let mut d = cached_det();
    st(&mut d, 0x100, W1, 1);
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(kinds(&d), vec![RaceKind::MissingDeviceFence]);
}

#[test]
fn coarse_granularity_creates_false_positives() {
    // Table VII's mechanism: at 16-byte granularity two threads touching
    // *different* words appear to conflict.
    let mut d = ScordDetector::new(DetectorConfig::with_granularity(MEM, 16));
    st(&mut d, 0x100, W1, 1);
    st(&mut d, 0x10C, W2, 2); // disjoint word, same 16-byte granule
    assert_eq!(
        kinds(&d),
        vec![RaceKind::MissingDeviceFence],
        "false positive from metadata sharing"
    );

    // The same program at 4-byte granularity (and under the cached store)
    // is clean.
    let mut d4 = det();
    st(&mut d4, 0x100, W1, 1);
    st(&mut d4, 0x10C, W2, 2);
    assert!(d4.races().is_empty());
    let mut dc = cached_det();
    st(&mut dc, 0x100, W1, 1);
    st(&mut dc, 0x10C, W2, 2);
    assert!(
        dc.races().is_empty(),
        "ScoRD's cache aliases by *eviction*, never by sharing: no FPs"
    );
}

#[test]
fn hardware_state_overhead_is_under_3kb() {
    let d = det();
    let bits = d.hardware_state_bits();
    assert!(
        bits <= 3 * 1024 * 8,
        "§IV-C claims <3KB of hardware state, got {} bits",
        bits
    );
    assert!(bits >= (720 + 480 * 36 / 8) * 8 / 2, "sanity lower bound");
}

#[test]
fn metadata_footprints_match_claims() {
    assert_eq!(
        det().metadata_footprint_bytes(),
        2 * MEM,
        "base design: 200%"
    );
    assert_eq!(
        cached_det().metadata_footprint_bytes(),
        MEM / 8,
        "ScoRD: 12.5%"
    );
    let g16 = ScordDetector::new(DetectorConfig::with_granularity(MEM, 16));
    assert_eq!(g16.metadata_footprint_bytes(), MEM / 2, "16B: 50%");
}

#[test]
fn reset_gives_independent_runs() {
    let mut d = det();
    st(&mut d, 0x100, W1, 1);
    ld(&mut d, 0x100, W2, 2);
    assert_eq!(d.races().unique_count(), 1);
    d.reset();
    assert!(d.races().is_empty());
    st(&mut d, 0x100, W1, 1);
    d.on_fence(W1.sm, W1.warp_slot, Scope::Device).unwrap();
    ld(&mut d, 0x100, W2, 2);
    assert!(d.races().is_empty(), "stale metadata cleared by reset");
}

#[test]
fn store_kind_is_configurable_via_enum() {
    let cfg = DetectorConfig {
        store: StoreKind::Cached { ratio: 8 },
        ..DetectorConfig::paper_default(MEM)
    };
    let d = ScordDetector::new(cfg);
    assert_eq!(d.metadata_footprint_bytes(), MEM / 4);
}
