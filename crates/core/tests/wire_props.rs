//! Property tests for the binary wire codec (`scord_core::wire`): fuzzed
//! round-trip equivalence against the text trace format, and
//! corruption-resilience — random byte damage must surface as typed
//! [`WireError`]s, never a panic and never a silent misparse.

use scord_core::wire::{self, FrameAssembler, FrameType, WireError};
use scord_core::{FuzzConfig, SplitMix64, Trace, TraceEvent};

/// A spread of fuzz shapes: default mix, provably-clean, and race-heavy.
fn corpus() -> Vec<Trace> {
    let mut traces = Vec::new();
    for seed in 0..6u64 {
        for race_pct in [FuzzConfig::default().race_pct, 0, 80] {
            traces.push(
                FuzzConfig {
                    events: 700,
                    race_pct,
                    ..FuzzConfig::default()
                }
                .generate(0xC0DE ^ (seed * 31 + u64::from(race_pct))),
            );
        }
    }
    traces
}

/// Reassembles a full chunk stream and decodes every `Events` frame,
/// requiring the trailing `Finish` frame.
fn decode_all(chunks: &[Vec<u8>]) -> Result<Vec<TraceEvent>, WireError> {
    let mut asm = FrameAssembler::new();
    for c in chunks {
        asm.push(c);
    }
    let mut events = Vec::new();
    let mut finished = false;
    while let Some(frame) = asm.next_frame()? {
        match frame.ftype {
            FrameType::Events => events.extend(wire::decode_events(&frame.payload)?),
            FrameType::Finish => {
                finished = true;
                break;
            }
            other => {
                return Err(WireError::BadFrameType {
                    ftype: other.code(),
                })
            }
        }
    }
    asm.finish()?;
    if finished {
        Ok(events)
    } else {
        Err(WireError::Truncated { need: 1, have: 0 })
    }
}

/// binary ↔ struct ↔ text three-way equivalence: the packed-word encoding
/// and the line-oriented text format describe the identical event stream.
#[test]
fn binary_text_struct_roundtrips_agree() {
    for trace in corpus() {
        // struct → binary payload → struct
        let payload = wire::encode_events(trace.events());
        let decoded = wire::decode_events(&payload).expect("canonical encoding decodes");
        assert_eq!(&decoded, trace.events(), "binary round trip");

        // struct → framed stream → struct
        for events_per_frame in [1, 7, 64, 4096] {
            let frames = wire::trace_to_frames(&trace, events_per_frame);
            let from_frames = decode_all(&frames).expect("framed stream decodes");
            assert_eq!(&from_frames, trace.events(), "framed round trip");
        }

        // struct → text → struct, then text-decoded == binary-decoded
        let text = trace.to_text();
        let from_text = Trace::from_text(&text).expect("text round trip parses");
        assert_eq!(&from_text, &trace, "text round trip");
        assert_eq!(
            from_text.events(),
            &decoded[..],
            "text and binary describe the same events"
        );
    }
}

/// Every single-bit flip anywhere in a framed stream either still decodes
/// to the *exact* original events (flips in ignored header padding) or
/// surfaces as a typed error — never a panic, never silently different
/// events. This is the CRC's whole job.
#[test]
fn single_bit_flips_never_misparse() {
    let trace = FuzzConfig {
        events: 120,
        ..FuzzConfig::default()
    }
    .generate(0xB17F11B);
    let frames = wire::trace_to_frames(&trace, 16);
    let stream: Vec<u8> = frames.concat();
    let mut rng = SplitMix64::new(0x5EED);
    // Sample positions (the full cross product is large); always include
    // the header and the first/last frame bytes.
    let mut positions: Vec<usize> = vec![0, 5, wire::HEADER_BYTES, stream.len() - 1];
    for _ in 0..600 {
        positions.push(rng.below(stream.len() as u64) as usize);
    }
    for pos in positions {
        for bit in 0..8 {
            let mut damaged = stream.clone();
            damaged[pos] ^= 1 << bit;
            // A typed error is the expected outcome; a successful decode
            // must reproduce the original events exactly.
            if let Ok(events) = decode_all(&[damaged]) {
                assert_eq!(
                    &events,
                    trace.events(),
                    "flip at byte {pos} bit {bit} decoded successfully but \
                     changed the events — silent misparse"
                );
            }
        }
    }
}

/// Arbitrary multi-byte mutations (overwrites, truncations, duplications
/// of random spans) never panic the assembler/decoder; they produce typed
/// errors or valid prefixes only.
#[test]
fn random_mutations_never_panic() {
    let trace = FuzzConfig {
        events: 200,
        ..FuzzConfig::default()
    }
    .generate(0xFACE);
    let stream: Vec<u8> = wire::trace_to_frames(&trace, 24).concat();
    let mut rng = SplitMix64::new(0xDA_7A);
    for _ in 0..400 {
        let mut damaged = stream.clone();
        match rng.below(4) {
            // Overwrite a random span with random bytes.
            0 => {
                let start = rng.below(damaged.len() as u64) as usize;
                let len = 1 + rng.below(32) as usize;
                for b in damaged.iter_mut().skip(start).take(len) {
                    *b = (rng.next_u32() & 0xFF) as u8;
                }
            }
            // Truncate at a random point.
            1 => {
                let keep = rng.below(damaged.len() as u64) as usize;
                damaged.truncate(keep);
            }
            // Duplicate a random span in place.
            2 => {
                let start = rng.below(damaged.len() as u64) as usize;
                let len = (1 + rng.below(64) as usize).min(damaged.len() - start);
                let span: Vec<u8> = damaged[start..start + len].to_vec();
                let at = rng.below(damaged.len() as u64) as usize;
                for (i, b) in span.into_iter().enumerate() {
                    damaged.insert(at + i, b);
                }
            }
            // Pure garbage of a random length.
            _ => {
                let len = rng.below(512) as usize;
                damaged = (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
            }
        }
        // Must not panic; any Err is a typed WireError by construction.
        let _ = decode_all(&[damaged]);
    }
}

/// Feeding a canonical stream one byte at a time through the assembler is
/// identical to feeding it whole — no boundary-condition dependence.
#[test]
fn byte_at_a_time_assembly_matches_bulk() {
    let trace = FuzzConfig {
        events: 90,
        ..FuzzConfig::default()
    }
    .generate(0x0B17);
    let stream: Vec<u8> = wire::trace_to_frames(&trace, 8).concat();
    let bulk = decode_all(std::slice::from_ref(&stream)).expect("bulk decodes");

    let mut asm = FrameAssembler::new();
    let mut dribbled = Vec::new();
    let mut finished = false;
    for &b in &stream {
        asm.push(&[b]);
        while let Some(frame) = asm.next_frame().expect("canonical stream") {
            match frame.ftype {
                FrameType::Events => {
                    dribbled.extend(wire::decode_events(&frame.payload).expect("decodes"));
                }
                FrameType::Finish => finished = true,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    asm.finish().expect("nothing pending");
    assert!(finished, "finish frame seen");
    assert_eq!(dribbled, bulk, "byte-at-a-time equals bulk");
}
